"""The shared-memory array plane: pool, codec, failure modes, identity.

Three layers of pinning:

* :class:`repro.runtime.SharedArrayPool` — span allocation, refcounted
  leases, owner-pid crash reclaim, and segment teardown;
* :class:`repro.runtime.ArrayCodec` — the protocol-5 wire format and its
  *lossless* fallbacks (small payloads, exhausted pool, non-contiguous
  arrays), plus the serialize-once shared/post_all channels;
* transport equivalence — ``transport="shm"`` must be bit-identical to
  the ``"pipe"`` reference through training, evaluation, and the async
  actor path, and must never leak ``/dev/shm`` segments
  (``TestNoLeakedSegments``, the sibling of ``TestNoLeakedWorkers``).
"""

import multiprocessing
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import EnvConfig, TrainConfig, load_trace, train
from repro.config import EvalConfig, RuntimeConfig
from repro.api import evaluate
from repro.runtime import (
    ArrayCodec,
    ProcessPoolBackend,
    SharedArrayPool,
    WorkerError,
)
from repro.runtime import process_pool as process_pool_mod
from repro.schedulers import SJF


# ----------------------------------------------------------------------
# worker task functions (top-level so the process backend can pickle them)
# ----------------------------------------------------------------------
def echo_sum(state, arr):
    return float(np.asarray(arr).sum())


def make_array(state, n):
    return np.arange(n, dtype=np.float64)


def concat_shared(state, shared_arr, k):
    return float(shared_arr.sum()) + k


def mutate_result(state, n):
    # decoded arrays must be writable in the parent; return one to check
    return np.zeros(n, dtype=np.float64)


def lease_then_die(state, nbytes):
    pool = state["_shm_pool"]
    start = pool.put([b"x" * nbytes], refcount=1)
    assert start is not None
    os._exit(17)  # crash mid-lease: the parent must reclaim the span


@pytest.fixture
def pool():
    p = SharedArrayPool(n_slots=16, slot_bytes=1024)
    yield p
    p.destroy()


class TestSharedArrayPool:
    def test_put_read_release_roundtrip(self, pool):
        payload = os.urandom(3000)
        start = pool.put([payload])
        assert start is not None
        view = pool.read(start, len(payload))
        assert bytes(view) == payload
        view.release()
        assert pool.n_leases == 1 and pool.occupancy == 3 / 16
        pool.release(start)
        assert pool.n_leases == 0 and pool.occupancy == 0.0

    def test_multi_buffer_spans_are_consecutive(self, pool):
        bufs = [b"a" * 1500, b"b" * 700, b"c" * 100]
        start = pool.put(bufs)
        view = pool.read(start, 2300)
        assert bytes(view) == b"".join(bufs)
        view.release()
        pool.release(start)

    def test_refcount_frees_on_last_release(self, pool):
        start = pool.put([b"z" * 100], refcount=3)
        pool.release(start)
        pool.release(start)
        assert pool.n_leases == 1
        pool.release(start)
        assert pool.occupancy == 0.0
        # releasing a free span is a no-op, not an error
        pool.release(start)

    def test_exhaustion_returns_none(self, pool):
        # 16 slots x 1KiB: an 8KiB span fits twice, then never again
        starts = [pool.put([b"x" * 8192]) for _ in range(2)]
        assert None not in starts
        assert pool.put([b"x" * 8192]) is None
        assert pool.put([b"y" * (17 * 1024)]) is None  # bigger than the pool
        pool.release(starts[0])
        assert pool.put([b"x" * 8192]) is not None  # freed span is reusable

    def test_release_owner_reclaims_everything(self, pool):
        a = pool.put([b"a" * 100], refcount=5)
        b = pool.put([b"b" * 2000])
        assert a is not None and b is not None
        assert pool.release_owner(os.getpid()) == 2
        assert pool.occupancy == 0.0
        assert pool.release_owner(os.getpid()) == 0

    def test_state_roundtrip_attaches_without_ownership(self, pool):
        # __getstate__/__setstate__ back the spawn-context Process-args
        # path (the lock itself only pickles mid-spawn, so drive the
        # attach logic directly with the same lock object)
        start = pool.put([b"q" * 500])
        state = pool.__getstate__()
        clone = SharedArrayPool.__new__(SharedArrayPool)
        clone.__setstate__(state)
        view = clone.read(start, 500)
        assert bytes(view) == b"q" * 500
        view.release()
        assert clone._owner is False
        clone.close()  # must not unlink: the owner still reads fine
        view = pool.read(start, 500)
        assert bytes(view) == b"q" * 500
        view.release()

    def test_destroy_unlinks_segments(self):
        p = SharedArrayPool(n_slots=4, slot_bytes=1024)
        names = (p._ctl.name, p._data.name)
        p.destroy()
        p.destroy()  # idempotent
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestArrayCodec:
    def test_pipe_codec_is_plain_pickle(self):
        codec = ArrayCodec(None)
        obj = {"a": np.arange(10000.0), "b": "text"}
        wire, lease = codec.dumps(obj)
        assert wire[:1] == b"P" and lease is None
        out = codec.loads(wire)
        np.testing.assert_array_equal(out["a"], obj["a"])

    def test_shm_spills_large_arrays(self, pool):
        codec = ArrayCodec(pool)
        obj = {"big": np.arange(1000, dtype=np.float64), "s": 7}
        wire, lease = codec.dumps(obj)
        assert wire[:1] == b"S" and lease == (lease[0], 1)
        assert len(wire) < 1000  # descriptor, not 8KB of array bytes
        out = codec.loads(wire)
        np.testing.assert_array_equal(out["big"], obj["big"])
        assert out["s"] == 7
        assert pool.n_leases == 0  # decode consumed the lease

    def test_decoded_arrays_are_writable_copies(self, pool):
        codec = ArrayCodec(pool)
        src = np.arange(1000, dtype=np.float64)
        out = codec.loads(codec.dumps(src)[0])
        assert out.flags.writeable
        out += 1  # in-place ops must work (optimizer-state pattern)
        np.testing.assert_array_equal(out, src + 1)

    def test_small_payloads_stay_inline(self, pool):
        codec = ArrayCodec(pool)
        wire, lease = codec.dumps(np.arange(4, dtype=np.float64))
        assert wire[:1] == b"P" and lease is None and pool.n_leases == 0
        # above the buffer threshold but under the pool threshold: the
        # buffer rides the wire in-band (kind B), still no lease
        arr = np.arange(200, dtype=np.float64)  # 1600B
        wire, lease = codec.dumps(arr)
        assert wire[:1] == b"B" and lease is None and pool.n_leases == 0
        np.testing.assert_array_equal(codec.loads(wire), arr)

    def test_exhausted_pool_falls_back_inband_lossless(self, pool):
        codec = ArrayCodec(pool)
        hog = pool.put([b"x" * (16 * 1024)])  # fill the whole pool
        assert hog is not None
        arr = np.arange(2000, dtype=np.float64)
        wire, lease = codec.dumps(arr)
        assert wire[:1] == b"B" and lease is None
        np.testing.assert_array_equal(codec.loads(wire), arr)
        pool.release(hog)

    def test_dtype_shape_order_roundtrip(self, pool):
        codec = ArrayCodec(pool)
        cases = [
            np.arange(600, dtype=np.int32).reshape(20, 30),
            np.asfortranarray(np.arange(400.0).reshape(20, 20)),
            np.arange(300, dtype=np.float32)[::2],  # non-contiguous
            np.array([], dtype=np.float64),
            np.arange(500, dtype=np.uint8),
        ]
        out = codec.loads(codec.dumps(cases)[0])
        for got, want in zip(out, cases):
            np.testing.assert_array_equal(got, want)
            assert got.dtype == want.dtype and got.shape == want.shape
        assert pool.n_leases == 0

    def test_multi_receiver_lease_refcount(self, pool):
        codec = ArrayCodec(pool)
        wire, lease = codec.dumps(np.arange(1000.0), receivers=3)
        assert lease[1] == 3
        for expected in (1, 1, 0):
            codec.loads(wire)
            assert pool.n_leases == expected

    def test_discard_refunds_undelivered_receivers(self, pool):
        codec = ArrayCodec(pool)
        wire, lease = codec.dumps(np.arange(1000.0), receivers=3)
        codec.loads(wire)
        codec.discard(lease, 2)  # 2 receivers never got the wire
        assert pool.n_leases == 0

    def test_unpicklable_raises_without_leaking(self, pool):
        codec = ArrayCodec(pool)
        with pytest.raises(Exception):
            codec.dumps({"arr": np.arange(1000.0), "bad": lambda: None})
        assert pool.n_leases == 0


class TestShmBackendFailureModes:
    def test_pool_exhaustion_degrades_to_inline(self, monkeypatch):
        # A pool far too small for the payloads: every message falls back
        # to in-band transport; results stay correct, nothing deadlocks.
        monkeypatch.setattr(
            process_pool_mod, "SharedArrayPool",
            lambda: SharedArrayPool(n_slots=2, slot_bytes=1024),
        )
        with ProcessPoolBackend(2, transport="shm") as b:
            arrs = [np.arange(50_000, dtype=np.float64) for _ in range(2)]
            assert b.scatter(echo_sum, [(a,) for a in arrs]) == [
                float(a.sum()) for a in arrs
            ]
            got = b.map(make_array, [30_000, 40_000])
            np.testing.assert_array_equal(got[1], np.arange(40_000.0))
            assert b._pool.n_leases == 0

    def test_worker_crash_mid_lease_releases_segments(self):
        with ProcessPoolBackend(2, transport="shm") as b:
            b.post(0, lease_then_die, 8192)
            with pytest.raises(WorkerError, match="died"):
                b.next_result()
            assert b._pool.n_leases == 0  # crash reclaim freed the span

    def test_shared_scatter_serializes_once(self):
        with ProcessPoolBackend(2, transport="shm") as b:
            w = np.arange(10_000, dtype=np.float64)
            before = b._pool._n_puts
            out = b.scatter(concat_shared, [(1,), (2,)], shared=(w,))
            assert out == [w.sum() + 1, w.sum() + 2]
            assert b._pool._n_puts == before + 1  # one span, two workers
            assert b._pool.n_leases == 0

    def test_post_all_encodes_once(self):
        with ProcessPoolBackend(3, transport="shm") as b:
            w = np.arange(10_000, dtype=np.float64)
            before = b._pool._n_puts
            b.post_all(echo_sum, w)
            results = sorted(b.next_result()[1] for _ in range(3))
            assert results == [float(w.sum())] * 3
            assert b._pool._n_puts == before + 1
            assert b._pool.n_leases == 0

    def test_post_all_single_dumps_on_pipe(self, monkeypatch):
        # The serialize-once satellite holds on the pipe transport too:
        # one dumps() call per post_all, not one per worker.
        with ProcessPoolBackend(3, transport="pipe") as b:
            calls = []
            real_dumps = b._codec.dumps

            def counting_dumps(obj, receivers=1):
                calls.append(receivers)
                return real_dumps(obj, receivers)

            monkeypatch.setattr(b._codec, "dumps", counting_dumps)
            b.post_all(make_array, 5)
            assert calls == [3]
            for _ in range(3):
                b.next_result()


class TestNoLeakedSegments:
    """Sibling of TestNoLeakedWorkers: shm segments must never outlive
    the run — clean close, mid-training exception, or abnormal exit."""

    @staticmethod
    def _live_segments():
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # non-Linux: nothing to scan
            return set()
        return {n for n in os.listdir(shm_dir) if n.startswith("repro-")}

    def test_clean_close_removes_segments(self):
        b = ProcessPoolBackend(2, transport="shm")
        b.start()
        names = {b._pool._ctl.name, b._pool._data.name}
        assert names <= self._live_segments()
        b.close()
        assert not names & self._live_segments()

    def test_exception_mid_training_leaves_no_segments(self, tmp_path):
        trace = load_trace("Lublin-1", n_jobs=400, seed=3)
        cfg = TrainConfig(
            epochs=2, trajectories_per_epoch=2, trajectory_length=16,
            seed=0, vectorized=True, rollout_mode="async",
            runtime=RuntimeConfig.from_workers(2, transport="shm"),
        )
        before = self._live_segments()
        with pytest.raises(RuntimeError, match="sentinel"):
            from repro.rl.trainer import Trainer

            with Trainer(
                trace, env_config=EnvConfig(max_obsv_size=8),
                train_config=cfg,
            ) as t:
                t.run_epoch(0)
                raise RuntimeError("sentinel")
        for proc in multiprocessing.active_children():
            proc.join(timeout=10)
        assert self._live_segments() <= before

    def test_abnormal_parent_exit_unlinks_via_atexit(self, tmp_path):
        # A parent that dies on an uncaught exception never reaches
        # close(); the pool's atexit hook must still unlink the segments.
        script = tmp_path / "crash.py"
        script.write_text(
            "import sys\n"
            "from repro.runtime import SharedArrayPool\n"
            "p = SharedArrayPool(n_slots=4, slot_bytes=1024)\n"
            "p.put([b'x' * 2000])\n"
            "print(p._ctl.name, p._data.name)\n"
            "sys.stdout.flush()\n"
            "raise RuntimeError('abnormal exit')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            env=env, timeout=60,
        )
        assert proc.returncode != 0
        names = set(proc.stdout.split())
        assert len(names) == 2
        assert not names & self._live_segments()


class TestTransportEquivalence:
    """``transport="shm"`` is a pure bytes knob: training (locked and
    async), evaluation, and the weights they produce are bit-identical
    to the pipe reference."""

    @pytest.fixture(scope="class")
    def trace(self):
        return load_trace("Lublin-1", n_jobs=400, seed=3)

    def _train(self, trace, transport, rollout_mode):
        return train(
            trace,
            env_config=EnvConfig(max_obsv_size=8),
            train_config=TrainConfig(
                epochs=2, trajectories_per_epoch=2, trajectory_length=16,
                seed=0, vectorized=True, rollout_mode=rollout_mode,
                staleness=1 if rollout_mode == "async" else 0,
                runtime=RuntimeConfig.from_workers(2, transport=transport),
            ),
        )

    @pytest.mark.parametrize("rollout_mode", ["locked", "async"])
    def test_training_bit_identical(self, trace, rollout_mode):
        pipe = self._train(trace, "pipe", rollout_mode)
        shm = self._train(trace, "shm", rollout_mode)
        np.testing.assert_array_equal(shm.metric_curve(), pipe.metric_curve())
        for p_pipe, p_shm in zip(
            pipe.policy.parameters(), shm.policy.parameters()
        ):
            np.testing.assert_array_equal(p_shm.data, p_pipe.data)

    def test_evaluation_bit_identical(self, trace):
        def run(transport):
            return evaluate(
                SJF(), trace,
                config=EvalConfig(
                    n_sequences=2, sequence_length=24,
                    runtime=RuntimeConfig.from_workers(2, transport=transport),
                ),
            )

        pipe, shm = run("pipe"), run("shm")
        np.testing.assert_array_equal(shm.values, pipe.values)
