"""Unit tests for NN layers: Dense, Conv2d, pooling, persistence."""

import numpy as np
import pytest

from repro.nn import Conv2d, Dense, Flatten, Module, Parameter, Sequential, Tensor
from repro.nn.layers import conv2d, max_pool2d

from .test_tensor import numerical_grad


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 8, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 8)

    def test_identity_activation_is_affine(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        x = np.ones((1, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_relu_activation_nonnegative(self):
        layer = Dense(6, 6, activation="relu", rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(10, 6))))
        assert (out.numpy() >= 0).all()

    def test_unknown_activation(self):
        with pytest.raises(ValueError, match="unknown activation"):
            Dense(3, 3, activation="swish")

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_gradients_flow(self):
        layer = Dense(3, 2, activation="tanh", rng=np.random.default_rng(0))
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestModuleMechanics:
    def test_parameter_discovery(self):
        net = Sequential(Dense(3, 4), Dense(4, 2))
        assert len(net.parameters()) == 4  # 2 weights + 2 biases

    def test_num_parameters(self):
        net = Dense(3, 4)
        assert net.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        net = Dense(3, 2)
        net(Tensor(np.ones((1, 3)))).sum().backward()
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_round_trip(self):
        a = Dense(3, 2, rng=np.random.default_rng(0))
        b = Dense(3, 2, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_state_dict_shape_mismatch(self):
        a, b = Dense(3, 2), Dense(3, 5)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_save_load_file(self, tmp_path):
        a = Dense(3, 2, rng=np.random.default_rng(0))
        path = tmp_path / "w.npz"
        a.save(path)
        b = Dense(3, 2, rng=np.random.default_rng(5))
        b.load(path)
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_shared_parameter_counted_once(self):
        class Tied(Module):
            def __init__(self):
                self.p = Parameter(np.ones(3))
                self.alias = self.p

        assert len(Tied().parameters()) == 1


class TestConv2d:
    def test_forward_shape(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 8, 6)))
        layer = Conv2d(1, 3, kernel_size=3, pad=1, rng=np.random.default_rng(0))
        assert layer(x).shape == (2, 3, 8, 6)

    def test_forward_matches_manual(self):
        """3x3 conv with identity-ish kernel checked against direct compute."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 1, 5, 5))
        w = Parameter(rng.normal(size=(1, 1, 3, 3)))
        b = Parameter(np.zeros(1))
        out = conv2d(Tensor(x), w, b, pad=0).numpy()
        # direct correlation
        expected = np.zeros((1, 1, 3, 3))
        for i in range(3):
            for j in range(3):
                expected[0, 0, i, j] = (x[0, 0, i : i + 3, j : j + 3] * w.data[0, 0]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_gradients_numerical(self):
        rng = np.random.default_rng(3)
        x_val = rng.normal(size=(2, 2, 5, 4))
        w = Parameter(rng.normal(size=(3, 2, 3, 3)) * 0.1)
        b = Parameter(rng.normal(size=3) * 0.1)
        x = Parameter(x_val.copy())
        conv2d(x, w, b, pad=1).sum().backward()

        def f_w(arr):
            return float(conv2d(Tensor(x_val), Tensor(arr), Tensor(b.data), pad=1).sum().numpy())

        num_w = numerical_grad(f_w, w.data.copy())
        np.testing.assert_allclose(w.grad, num_w, rtol=1e-4, atol=1e-6)

        def f_x(arr):
            return float(conv2d(Tensor(arr), Tensor(w.data), Tensor(b.data), pad=1).sum().numpy())

        num_x = numerical_grad(f_x, x_val.copy())
        np.testing.assert_allclose(x.grad, num_x, rtol=1e-4, atol=1e-6)

    def test_incompatible_channels(self):
        x = Tensor(np.ones((1, 2, 4, 4)))
        w = Parameter(np.ones((1, 3, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w, Parameter(np.zeros(1)))


class TestMaxPool:
    def test_forward(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.numpy()[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_winners(self):
        x = Parameter(np.arange(16.0).reshape(1, 1, 4, 4))
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        for i, j in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[i, j] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_trailing_rows_dropped(self):
        x = Tensor(np.ones((1, 1, 5, 5)))
        assert max_pool2d(x, 2).shape == (1, 1, 2, 2)

    def test_too_small_input(self):
        with pytest.raises(ValueError):
            max_pool2d(Tensor(np.ones((1, 1, 1, 4))), 2)


class TestFlatten:
    def test_shape(self):
        out = Flatten()(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 12)
