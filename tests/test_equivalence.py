"""Golden equivalence tests for the vectorised rollout subsystem.

Three layers of guarantees, each pinned exactly (no tolerances):

1. the NumPy observation builder matches the per-job reference loop
   bit-for-bit, with and without a :class:`FeatureCache`;
2. :func:`discount_cumsum` matches the naive reversed Python recurrence
   bit-for-bit;
3. a vectorised training epoch reproduces the sequential epoch exactly —
   same rewards, same update statistics, same post-update weights.
"""

import numpy as np
import pytest

from repro.config import EnvConfig, PPOConfig, TrainConfig
from repro.rl import Trainer, discount_cumsum
from repro.sim import FeatureCache, build_observation, build_observation_loop
from repro.sim.env import stable_user_hash
from repro.workloads import Job, load_trace


def random_jobs(rng, n, n_procs=64):
    jobs = []
    for i in range(n):
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=float(rng.uniform(0, 1e5)),
                run_time=float(rng.uniform(1, 1e5)),
                requested_procs=int(rng.integers(1, n_procs + 1)),
                requested_time=float(rng.uniform(1, 4e5)),
                user_id=int(rng.integers(0, 500)),
            )
        )
    return jobs


class TestStableUserHash:
    def test_pinned_values(self):
        """Regression pin: CRC-32 based hash must never drift (a drift would
        silently invalidate every saved model)."""
        assert stable_user_hash(0) == 0.7822265625
        assert stable_user_hash(1) == 0.9287109375
        assert stable_user_hash(42) == 0.1328125
        assert stable_user_hash(-1) == 0.041015625
        assert stable_user_hash(1023) == 0.0458984375

    def test_range_and_determinism(self):
        for u in range(-5, 200, 7):
            h = stable_user_hash(u)
            assert 0.0 <= h < 1.0
            assert h == stable_user_hash(u)

    def test_observation_uses_stable_hash(self):
        cfg = EnvConfig(max_obsv_size=4)
        j = Job(job_id=1, submit_time=0.0, run_time=10.0, requested_procs=2,
                requested_time=10.0, user_id=42)
        obs, _, _ = build_observation([j], 0.0, 8, 8, cfg)
        assert obs[0, 5] == np.float32(stable_user_hash(42))


class TestObservationBuilderGolden:
    @pytest.mark.parametrize("seed", range(5))
    def test_vectorized_matches_loop_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        cfg = EnvConfig(max_obsv_size=int(rng.integers(4, 64)))
        jobs = random_jobs(rng, int(rng.integers(1, 120)))
        now = float(rng.uniform(0, 2e5))
        free = int(rng.integers(0, 65))
        ref = build_observation_loop(jobs, now, free, 64, cfg)
        fast = build_observation(jobs, now, free, 64, cfg)
        np.testing.assert_array_equal(fast[0], ref[0])
        np.testing.assert_array_equal(fast[1], ref[1])
        assert fast[2] == ref[2]

    @pytest.mark.parametrize("seed", range(5))
    def test_cached_matches_loop_bitwise(self, seed):
        rng = np.random.default_rng(100 + seed)
        cfg = EnvConfig(max_obsv_size=32)
        jobs = random_jobs(rng, 80)
        cache = FeatureCache(jobs, 64, cfg)
        # random pending subsets, as removals during an episode produce
        subset = [j for j in jobs if rng.random() < 0.5] or jobs[:1]
        now = float(rng.uniform(0, 2e5))
        free = int(rng.integers(0, 65))
        ref = build_observation_loop(subset, now, free, 64, cfg)
        fast = build_observation(subset, now, free, 64, cfg, cache=cache)
        np.testing.assert_array_equal(fast[0], ref[0])
        np.testing.assert_array_equal(fast[1], ref[1])

    def test_presorted_input_skips_sort_safely(self):
        rng = np.random.default_rng(7)
        cfg = EnvConfig(max_obsv_size=16)
        jobs = sorted(random_jobs(rng, 30), key=lambda j: (j.submit_time, j.job_id))
        ref = build_observation_loop(jobs, 5e4, 10, 64, cfg)
        fast = build_observation(jobs, 5e4, 10, 64, cfg, assume_sorted=True)
        np.testing.assert_array_equal(fast[0], ref[0])

    def test_empty_queue(self):
        cfg = EnvConfig(max_obsv_size=8)
        obs, mask, visible = build_observation([], 0.0, 8, 8, cfg)
        assert (obs == 0).all() and not mask.any() and visible == []


class TestDiscountCumsumGolden:
    @pytest.mark.parametrize("discount", [0.0, 0.5, 0.97, 1.0])
    def test_matches_reversed_loop_bitwise(self, discount):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(257) * rng.uniform(0.1, 100)
        out = discount_cumsum(x, discount)
        ref = np.empty_like(x)
        acc = 0.0
        for t in range(len(x) - 1, -1, -1):
            acc = x[t] + discount * acc
            ref[t] = acc
        np.testing.assert_array_equal(out, ref)


@pytest.fixture(scope="module")
def trace():
    return load_trace("Lublin-1", n_jobs=600, seed=5)


def run_one_epoch(trace, vectorized, backfill=False, epochs=1):
    t = Trainer(
        trace,
        env_config=EnvConfig(max_obsv_size=16, backfill=backfill),
        ppo_config=PPOConfig(train_pi_iters=8, train_v_iters=8),
        train_config=TrainConfig(
            epochs=epochs,
            trajectories_per_epoch=6,
            trajectory_length=18,
            seed=0,
            vectorized=vectorized,
            n_envs=4,  # 6 trajectories over 4 envs: exercises auto-reset
        ),
    )
    records = [t.run_epoch(e) for e in range(epochs)]
    return t, records


class TestTrainerEquivalenceGolden:
    """The acceptance-criterion test: vec epoch == sequential epoch, exactly."""

    def assert_identical(self, seq, vec):
        t_seq, rec_seq = seq
        t_vec, rec_vec = vec
        for rs, rv in zip(rec_seq, rec_vec):
            assert rs.mean_reward == rv.mean_reward
            assert rs.mean_metric == rv.mean_metric
            assert rs.n_rejected == rv.n_rejected
            assert rs.stats.policy_loss == rv.stats.policy_loss
            assert rs.stats.value_loss == rv.stats.value_loss
            assert rs.stats.kl == rv.stats.kl
            assert rs.stats.entropy == rv.stats.entropy
            assert rs.stats.pi_iters_run == rv.stats.pi_iters_run
            assert rs.val_reward == rv.val_reward
        for key, w in t_seq.policy.state_dict().items():
            np.testing.assert_array_equal(w, t_vec.policy.state_dict()[key])
        for key, w in t_seq.value.state_dict().items():
            np.testing.assert_array_equal(w, t_vec.value.state_dict()[key])

    def test_two_epochs_identical(self, trace):
        self.assert_identical(
            run_one_epoch(trace, vectorized=False, epochs=2),
            run_one_epoch(trace, vectorized=True, epochs=2),
        )

    def test_identical_with_backfill_ragged_episodes(self, trace):
        """Backfilling makes episode lengths ragged, so vec episodes finish
        out of trajectory order — slot ordering must still restore the
        sequential batch layout exactly."""
        self.assert_identical(
            run_one_epoch(trace, vectorized=False, backfill=True),
            run_one_epoch(trace, vectorized=True, backfill=True),
        )

    def test_n_envs_does_not_change_results(self, trace):
        """Batch width is a pure performance knob."""
        t1, rec1 = run_one_epoch(trace, vectorized=True)

        t8 = Trainer(
            trace,
            env_config=EnvConfig(max_obsv_size=16),
            ppo_config=PPOConfig(train_pi_iters=8, train_v_iters=8),
            train_config=TrainConfig(
                epochs=1, trajectories_per_epoch=6, trajectory_length=18,
                seed=0, vectorized=True, n_envs=2,
            ),
        )
        rec2 = [t8.run_epoch(0)]
        assert rec1[0].mean_reward == rec2[0].mean_reward
        assert rec1[0].stats.kl == rec2[0].stats.kl
        for key, w in t1.policy.state_dict().items():
            np.testing.assert_array_equal(w, t8.policy.state_dict()[key])
