"""Unit tests for the event queue ordering semantics."""

import pytest

from repro.sim import EventKind, EventQueue
from repro.workloads import Job


def job(jid=1):
    return Job(job_id=jid, submit_time=0.0, run_time=10.0, requested_procs=1)


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, job(1))
        q.push(2.0, EventKind.ARRIVAL, job(2))
        q.push(9.0, EventKind.ARRIVAL, job(3))
        assert [q.pop().time for _ in range(3)] == [2.0, 5.0, 9.0]

    def test_finish_before_arrival_on_tie(self):
        """Resources freed at t must be visible to a job arriving at t."""
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, job(1))
        q.push(5.0, EventKind.FINISH, job(2))
        assert q.pop().kind is EventKind.FINISH
        assert q.pop().kind is EventKind.ARRIVAL

    def test_job_id_breaks_remaining_ties(self):
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, job(7))
        q.push(5.0, EventKind.ARRIVAL, job(3))
        assert q.pop().job_id == 3

    def test_peek_does_not_pop(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, job())
        assert q.peek().time == 1.0
        assert len(q) == 1

    def test_next_time(self):
        q = EventQueue()
        assert q.next_time is None
        q.push(3.0, EventKind.FINISH, job())
        assert q.next_time == 3.0

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.ARRIVAL, job())

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(0.0, EventKind.ARRIVAL, job())
        assert q and len(q) == 1
