"""Unit tests for workload characterisation and sequence sampling."""

import numpy as np
import pytest

from repro.workloads import (
    Job,
    SequenceSampler,
    characterize,
    interarrival_times,
    rebase_jobs,
    sample_sequence,
    user_job_counts,
)

from .conftest import make_trace


def simple_trace(n=10, n_procs=8):
    jobs = [
        Job(job_id=i + 1, submit_time=10.0 * i, run_time=5.0 + i,
            requested_procs=1 + i % 4, user_id=i % 3)
        for i in range(n)
    ]
    return make_trace(jobs, n_procs)


class TestCharacterize:
    def test_basic_moments(self):
        stats = characterize(simple_trace())
        assert stats.n_jobs == 10
        assert stats.mean_interarrival == pytest.approx(10.0)
        assert stats.mean_runtime == pytest.approx(np.mean([5 + i for i in range(10)]))
        assert stats.n_users == 3

    def test_needs_two_jobs(self):
        with pytest.raises(ValueError):
            characterize(simple_trace(n=1))

    def test_interarrival_times(self):
        gaps = interarrival_times(simple_trace(n=5))
        assert gaps.tolist() == [10.0, 10.0, 10.0, 10.0]

    def test_user_counts_exclude_unknown(self):
        jobs = [
            Job(job_id=1, submit_time=0, run_time=1, requested_procs=1, user_id=-1),
            Job(job_id=2, submit_time=1, run_time=1, requested_procs=1, user_id=4),
        ]
        counts = user_job_counts(make_trace(jobs, 4))
        assert counts == {4: 1}

    def test_table_row_format(self):
        row = characterize(simple_trace()).table_row()
        assert "test" in row

    def test_poisson_burstiness_near_zero(self):
        rng = np.random.default_rng(0)
        t = np.cumsum(rng.exponential(100.0, size=5000))
        jobs = [
            Job(job_id=i + 1, submit_time=float(ti), run_time=10.0, requested_procs=1)
            for i, ti in enumerate(t)
        ]
        stats = characterize(make_trace(jobs, 4))
        assert abs(stats.burstiness) < 0.05


class TestRebase:
    def test_rebase_shifts_to_zero(self):
        jobs = simple_trace().jobs[3:6]
        rebased = rebase_jobs(jobs)
        assert min(j.submit_time for j in rebased) == 0.0
        # gaps preserved
        assert rebased[1].submit_time - rebased[0].submit_time == 10.0

    def test_rebase_clears_schedule_state(self):
        jobs = simple_trace().jobs[:2]
        jobs[0].start_time = 99.0
        rebased = rebase_jobs(jobs)
        assert not rebased[0].scheduled

    def test_rebase_empty(self):
        assert rebase_jobs([]) == []


class TestSampleSequence:
    def test_length_and_rebasing(self, rng):
        trace = simple_trace(n=20)
        seq = sample_sequence(trace, 5, rng)
        assert len(seq) == 5
        assert seq[0].submit_time == 0.0

    def test_pinned_start(self, rng):
        trace = simple_trace(n=20)
        seq = sample_sequence(trace, 3, rng, start=4)
        assert [j.job_id for j in seq] == [5, 6, 7]

    def test_rejects_bad_lengths(self, rng):
        trace = simple_trace(n=10)
        with pytest.raises(ValueError):
            sample_sequence(trace, 0, rng)
        with pytest.raises(ValueError):
            sample_sequence(trace, 11, rng)
        with pytest.raises(ValueError):
            sample_sequence(trace, 5, rng, start=8)


class TestSequenceSampler:
    def test_reproducible_across_instances(self):
        trace = simple_trace(n=50)
        a = SequenceSampler(trace, 5, seed=3).sample_many(4)
        b = SequenceSampler(trace, 5, seed=3).sample_many(4)
        for sa, sb in zip(a, b):
            assert [j.job_id for j in sa] == [j.job_id for j in sb]

    def test_reset_rewinds(self):
        trace = simple_trace(n=50)
        s = SequenceSampler(trace, 5, seed=3)
        first = [j.job_id for j in s.sample()]
        s.reset()
        again = [j.job_id for j in s.sample()]
        assert first == again

    def test_samples_vary(self):
        trace = simple_trace(n=200)
        s = SequenceSampler(trace, 5, seed=3)
        starts = {tuple(j.job_id for j in s.sample()) for _ in range(20)}
        assert len(starts) > 1
