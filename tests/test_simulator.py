"""Unit + integration tests for the discrete-event scheduling engine."""

import pytest

from repro.schedulers import FCFS, SJF
from repro.sim import SchedulingEngine, run_scheduler
from repro.sim.metrics import average_waiting_time
from repro.workloads import Job


def job(jid, submit, run, procs, req_time=None, user=0):
    return Job(
        job_id=jid, submit_time=submit, run_time=run, requested_procs=procs,
        requested_time=req_time if req_time is not None else run, user_id=user,
    )


class TestEngineBasics:
    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            SchedulingEngine([], 4)

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="cluster has 4"):
            SchedulingEngine([job(1, 0, 10, 8)], 4)

    def test_single_job_runs_immediately(self):
        engine = SchedulingEngine([job(1, 0, 100, 2)], 4)
        assert engine.advance_until_decision()
        engine.commit(engine.pending[0])
        assert not engine.advance_until_decision()
        assert engine.done
        done = engine.completed[0]
        assert done.start_time == 0.0
        assert done.end_time == 100.0

    def test_commit_requires_pending_job(self):
        engine = SchedulingEngine([job(1, 0, 10, 2), job(2, 500, 10, 2)], 4)
        engine.advance_until_decision()
        with pytest.raises(ValueError, match="not pending"):
            engine.commit(job(99, 0, 1, 1))

    def test_trace_jobs_not_mutated(self):
        original = [job(1, 0, 100, 2)]
        engine = SchedulingEngine(original, 4)
        engine.advance_until_decision()
        engine.commit(engine.pending[0])
        engine.advance_until_decision()
        assert not original[0].scheduled  # engine worked on copies

    def test_commit_waits_for_resources(self):
        jobs = [job(1, 0, 100, 4), job(2, 0, 50, 4)]
        engine = SchedulingEngine(jobs, 4)
        engine.advance_until_decision()
        j1 = next(j for j in engine.pending if j.job_id == 1)
        engine.commit(j1)
        engine.advance_until_decision()
        j2 = next(j for j in engine.pending if j.job_id == 2)
        engine.commit(j2)  # must wait until t=100
        assert j2.start_time == 100.0

    def test_arrivals_join_queue_while_waiting(self):
        jobs = [job(1, 0, 100, 4), job(2, 0, 50, 4), job(3, 10, 5, 1)]
        engine = SchedulingEngine(jobs, 4)
        engine.advance_until_decision()
        engine.commit(next(j for j in engine.pending if j.job_id == 1))
        engine.advance_until_decision()
        engine.commit(next(j for j in engine.pending if j.job_id == 2))
        # job 3 arrived at t=10 while job 2 waited until t=100
        assert {j.job_id for j in engine.pending} == {3}


class TestRunScheduler:
    def test_fcfs_order(self):
        jobs = [job(1, 0, 100, 4), job(2, 1, 10, 4), job(3, 2, 10, 4)]
        done = run_scheduler(jobs, 4, FCFS())
        starts = {j.job_id: j.start_time for j in done}
        assert starts[1] == 0.0
        assert starts[2] == 100.0
        assert starts[3] == 110.0

    def test_sjf_reorders(self):
        jobs = [job(1, 0, 100, 4), job(2, 1, 10, 4), job(3, 2, 50, 4)]
        done = run_scheduler(jobs, 4, SJF())
        starts = {j.job_id: j.start_time for j in done}
        # job1 starts first (alone at t=0); then SJF picks job2 before job3
        assert starts[2] == 100.0
        assert starts[3] == 110.0

    def test_accepts_bare_score_function(self):
        jobs = [job(1, 0, 10, 2), job(2, 0, 10, 2)]
        done = run_scheduler(jobs, 4, lambda j, now, c: -j.job_id)
        assert len(done) == 2

    def test_all_jobs_complete(self, lublin_trace):
        seq = [j.copy() for j in lublin_trace.jobs[:80]]
        done = run_scheduler(seq, lublin_trace.max_procs, SJF())
        assert len(done) == 80
        assert all(j.scheduled for j in done)

    def test_start_never_before_submit(self, lublin_trace):
        seq = [j.copy() for j in lublin_trace.jobs[:80]]
        done = run_scheduler(seq, lublin_trace.max_procs, FCFS())
        assert all(j.start_time >= j.submit_time for j in done)


class TestBackfilling:
    def test_backfill_reduces_waiting(self, sdsc_trace):
        seq = [j.copy() for j in sdsc_trace.jobs[200:500]]
        plain = run_scheduler(seq, sdsc_trace.max_procs, FCFS(), backfill=False)
        filled = run_scheduler(seq, sdsc_trace.max_procs, FCFS(), backfill=True)
        assert average_waiting_time(filled) <= average_waiting_time(plain)

    def test_backfill_textbook_case(self):
        """Classic EASY example: a short narrow job jumps a blocked wide one."""
        jobs = [
            job(1, 0, 100, 3),            # runs immediately, holds 3/4
            job(2, 1, 50, 4),             # must wait for all 4 procs (t=100)
            job(3, 2, 50, 1, req_time=50) # fits the hole, ends at t<=100
        ]
        done = run_scheduler(jobs, 4, FCFS(), backfill=True)
        starts = {j.job_id: j.start_time for j in done}
        assert starts[3] < starts[2]          # backfilled ahead
        assert starts[2] == 100.0             # head job NOT delayed

    def test_backfill_never_delays_head_job(self):
        """A long candidate that would push the head job back must not run."""
        jobs = [
            job(1, 0, 100, 3),
            job(2, 1, 50, 4),
            job(3, 2, 500, 1, req_time=500),  # would overrun shadow, extra=0
        ]
        done = run_scheduler(jobs, 4, FCFS(), backfill=True)
        starts = {j.job_id: j.start_time for j in done}
        assert starts[2] == 100.0
        assert starts[3] >= 100.0

    def test_completion_count_with_backfill(self, lublin_trace):
        seq = [j.copy() for j in lublin_trace.jobs[:120]]
        done = run_scheduler(seq, lublin_trace.max_procs, SJF(), backfill=True)
        assert len(done) == 120


class TestDeterminism:
    def test_same_inputs_same_schedule(self, lublin_trace):
        seq = [j.copy() for j in lublin_trace.jobs[:60]]
        d1 = run_scheduler(seq, lublin_trace.max_procs, SJF(), backfill=True)
        d2 = run_scheduler(seq, lublin_trace.max_procs, SJF(), backfill=True)
        s1 = sorted((j.job_id, j.start_time) for j in d1)
        s2 = sorted((j.job_id, j.start_time) for j in d2)
        assert s1 == s2


class TestHotPathInvariants:
    """The vectorised observation path relies on these engine properties."""

    def test_pending_always_fcfs_sorted(self, lublin_trace):
        from repro.sim import SchedulingEngine

        seq = [j.copy() for j in lublin_trace.jobs[:80]]
        engine = SchedulingEngine(seq, lublin_trace.max_procs, backfill=True)
        while engine.advance_until_decision():
            keys = [(j.submit_time, j.job_id) for j in engine.pending]
            assert keys == sorted(keys)
            # SJF-style pick from the middle exercises mid-list removal
            engine.commit(min(engine.pending, key=lambda j: j.requested_time))
        assert engine.done

    def test_commit_foreign_job_raises(self, tiny_jobs):
        from repro.sim import SchedulingEngine
        from repro.workloads import Job

        engine = SchedulingEngine(tiny_jobs, 4)
        engine.advance_until_decision()
        foreign = Job(job_id=99, submit_time=0.0, run_time=5.0, requested_procs=1)
        with pytest.raises(ValueError, match="not pending"):
            engine.commit(foreign)

    def test_running_property_in_start_order(self, tiny_jobs):
        from repro.sim import SchedulingEngine

        engine = SchedulingEngine(tiny_jobs, 4)
        engine.advance_until_decision()
        engine.commit(next(j for j in engine.pending if j.job_id == 1))
        engine.advance_until_decision()
        engine.commit(next(j for j in engine.pending if j.job_id == 2))
        assert [j.job_id for j in engine.running] == [1, 2]
        # job 3 needs the full machine: committing it drains 1 and 2 first
        engine.advance_until_decision()
        engine.commit(next(j for j in engine.pending if j.job_id == 3))
        assert [j.job_id for j in engine.running] == [3]
