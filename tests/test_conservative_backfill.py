"""Unit tests for conservative backfilling and the engine's backfill modes."""

import pytest

from repro.schedulers import FCFS
from repro.sim import (
    Cluster,
    SchedulingEngine,
    conservative_backfill_candidates,
    run_scheduler,
)
from repro.sim.metrics import average_waiting_time
from repro.workloads import Job


def job(jid, submit, run, procs, req_time=None):
    return Job(job_id=jid, submit_time=submit, run_time=run,
               requested_procs=procs,
               requested_time=req_time if req_time is not None else run)


def running_job(jid, procs, req_time, start):
    j = job(jid, 0.0, req_time, procs, req_time)
    j.start_time = start
    return j


class TestConservativeCandidates:
    def _setup(self):
        c = Cluster(8)
        r = running_job(1, 6, req_time=100, start=0.0)
        c.allocate(r)
        return c, r

    def test_accepts_jobs_ending_before_shadow(self):
        c, r = self._setup()
        head = job(2, 1.0, 50, 8)
        cand = job(3, 2.0, 90, 2)  # ends at 90 < shadow 100
        chosen = conservative_backfill_candidates(head, [head, cand], [r], c, 0.0)
        assert chosen == [cand]

    def test_rejects_jobs_using_extra_allowance(self):
        """The EASY 'extra procs' rule must NOT apply: overrunning the
        shadow time is forbidden even if processors would be spare."""
        c = Cluster(8)
        r = running_job(1, 6, req_time=100, start=0.0)
        c.allocate(r)
        head = job(2, 1.0, 50, 4)              # extra=4 at shadow under EASY
        cand = job(3, 2.0, 1000, 2)            # overruns shadow
        from repro.sim import backfill_candidates

        assert backfill_candidates(head, [head, cand], [r], c, 0.0) == [cand]
        assert conservative_backfill_candidates(
            head, [head, cand], [r], c, 0.0) == []


class TestEngineModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="backfill must be one of"):
            SchedulingEngine([job(1, 0, 10, 2)], 4, backfill="aggressive")

    def test_true_is_easy_alias(self):
        jobs = [job(1, 0, 100, 3), job(2, 1, 50, 4), job(3, 2, 50, 1)]
        easy = run_scheduler([j.copy() for j in jobs], 4, FCFS(), backfill=True)
        named = run_scheduler([j.copy() for j in jobs], 4, FCFS(), backfill="easy")
        assert sorted((j.job_id, j.start_time) for j in easy) == sorted(
            (j.job_id, j.start_time) for j in named
        )

    def test_conservative_never_beats_easy_on_opportunities(self, lublin_trace):
        """EASY backfills a superset of candidates, so its waiting time is
        at most conservative's on identical input (ties allowed)."""
        seq = [j.copy() for j in lublin_trace.jobs[300:500]]
        easy = run_scheduler(seq, lublin_trace.max_procs, FCFS(), backfill="easy")
        cons = run_scheduler(seq, lublin_trace.max_procs, FCFS(),
                             backfill="conservative")
        plain = run_scheduler(seq, lublin_trace.max_procs, FCFS(), backfill=False)
        # both modes complete everything
        assert len(easy) == len(cons) == len(seq)
        # and both improve on no backfilling
        assert average_waiting_time(easy) <= average_waiting_time(plain) + 1e-9
        assert average_waiting_time(cons) <= average_waiting_time(plain) + 1e-9

    def test_conservative_head_job_not_delayed(self):
        jobs = [
            job(1, 0, 100, 3),
            job(2, 1, 50, 4),
            job(3, 2, 500, 1, req_time=500),
        ]
        done = run_scheduler(jobs, 4, FCFS(), backfill="conservative")
        starts = {j.job_id: j.start_time for j in done}
        assert starts[2] == 100.0
