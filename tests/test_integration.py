"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

import repro
from repro.rl import combine_rewards
from repro.schedulers import FCFS, SJF, RLSchedulerPolicy
from repro.sim import SchedGym, run_scheduler
from repro.sim.metrics import average_bounded_slowdown
from repro.workloads import SequenceSampler, write_swf


TINY_ENV = repro.EnvConfig(max_obsv_size=16)
TINY_PPO = repro.PPOConfig(train_pi_iters=20, train_v_iters=20)
TINY_TRAIN = repro.TrainConfig(epochs=2, trajectories_per_epoch=4,
                               trajectory_length=24, seed=0)


class TestTrainDeployRoundTrip:
    def test_full_pipeline(self, tmp_path, lublin_trace):
        """train -> save -> load -> schedule -> metrics, one pass."""
        result = repro.train(lublin_trace, metric="bsld", env_config=TINY_ENV,
                             ppo_config=TINY_PPO, train_config=TINY_TRAIN)
        sched = result.as_scheduler()
        path = tmp_path / "model.npz"
        sched.save(path)
        loaded = RLSchedulerPolicy.load(path)

        seq = [j.copy() for j in lublin_trace.jobs[:40]]
        done_orig = run_scheduler(seq, lublin_trace.max_procs, sched)
        done_load = run_scheduler(seq, lublin_trace.max_procs, loaded)
        assert sorted((j.job_id, j.start_time) for j in done_orig) == sorted(
            (j.job_id, j.start_time) for j in done_load
        )

    def test_best_epoch_checkpoint_used(self, lublin_trace):
        result = repro.train(lublin_trace, metric="bsld", env_config=TINY_ENV,
                             ppo_config=TINY_PPO, train_config=TINY_TRAIN)
        assert result.best_epoch >= 0
        assert result.best_policy_state is not None


class TestTraceFileToTraining:
    def test_swf_file_feeds_training(self, tmp_path, lublin_trace):
        """A trace written to disk trains exactly like the in-memory one."""
        path = tmp_path / "Custom.swf"
        write_swf(lublin_trace.head(500), path)
        trace = repro.load_trace("Custom", n_jobs=400, swf_dir=tmp_path)
        assert trace.max_procs == lublin_trace.max_procs
        result = repro.train(trace, metric="bsld", env_config=TINY_ENV,
                             ppo_config=TINY_PPO, train_config=TINY_TRAIN)
        assert len(result.curve) == TINY_TRAIN.epochs


class TestCombinedRewardTraining:
    def test_combined_reward_in_env(self, lublin_trace):
        """§V-F: a weighted multi-metric reward trains without special
        handling anywhere else in the stack."""
        reward = combine_rewards({"bsld": 1.0, "util": 100.0})
        env = SchedGym(lublin_trace.max_procs, reward, TINY_ENV)
        sampler = SequenceSampler(lublin_trace, 16, seed=0)
        obs, mask = env.reset(sampler.sample())
        done = False
        while not done:
            action = int(np.flatnonzero(mask)[0])
            result = env.step(action)
            mask, done = result.action_mask, result.done
        assert np.isfinite(result.reward)


class TestEnvAgainstReference:
    def test_greedy_sjf_policy_equals_sjf_heuristic(self, lublin_trace):
        """Driving SchedGym with 'pick the shortest requested time among
        visible jobs' must equal run_scheduler(SJF) when the queue never
        overflows the observation window."""
        seq = [j.copy() for j in lublin_trace.jobs[100:160]]
        env = SchedGym(lublin_trace.max_procs,
                       lambda jobs, n: -average_bounded_slowdown(jobs),
                       repro.EnvConfig(max_obsv_size=128))
        obs, mask = env.reset([j.copy() for j in seq])
        done = False
        while not done:
            visible = env._visible
            action = min(range(len(visible)),
                         key=lambda i: (visible[i].requested_time,
                                        visible[i].job_id))
            result = env.step(action)
            mask, done = result.action_mask, result.done
        ref = run_scheduler(seq, lublin_trace.max_procs, SJF())
        assert -result.reward == pytest.approx(average_bounded_slowdown(ref))


class TestEverythingOnEveryTrace:
    @pytest.mark.parametrize("name", ["Lublin-2", "HPC2N", "PIK-IPLEX"])
    def test_heuristics_complete_on_trace(self, name):
        trace = repro.load_trace(name, n_jobs=600, seed=2)
        seq = [j.copy() for j in trace.jobs[:100]]
        for sched in (FCFS(), SJF()):
            for bf in (False, True):
                done = run_scheduler(seq, trace.max_procs, sched, backfill=bf)
                assert len(done) == 100
