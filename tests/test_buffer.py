"""Unit tests for the GAE trajectory buffer."""

import numpy as np
import pytest

from repro.rl import TrajectoryBuffer

OBS_SHAPE = (4, 3)


def fill_episode(buf, n_steps, values=None, terminal=10.0):
    values = values if values is not None else [0.0] * n_steps
    for t in range(n_steps):
        buf.store(np.zeros(OBS_SHAPE), np.ones(4, bool), t % 4, -1.0, values[t])
    buf.end_episode(terminal)


class TestMechanics:
    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            TrajectoryBuffer(gamma=1.5)

    def test_end_episode_without_steps(self):
        with pytest.raises(RuntimeError):
            TrajectoryBuffer().end_episode(1.0)

    def test_get_with_open_episode(self):
        buf = TrajectoryBuffer()
        buf.store(np.zeros(OBS_SHAPE), np.ones(4, bool), 0, -1.0, 0.0)
        with pytest.raises(RuntimeError, match="still open"):
            buf.get()

    def test_get_empty(self):
        with pytest.raises(RuntimeError, match="empty"):
            TrajectoryBuffer().get()

    def test_counts(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 3)
        fill_episode(buf, 5)
        assert buf.n_steps == 8
        assert buf.n_episodes == 2
        assert buf.episode_rewards == [10.0, 10.0]

    def test_clear(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 3)
        buf.clear()
        assert buf.n_steps == 0

    def test_clear_keeps_hyperparams_and_is_reusable(self):
        buf = TrajectoryBuffer(gamma=0.5, lam=1.0)
        fill_episode(buf, 3)
        buf.clear()
        assert buf.gamma == 0.5 and buf.n_episodes == 0
        fill_episode(buf, 3, terminal=8.0)
        np.testing.assert_allclose(
            buf.get(normalize_advantages=False)["returns"], [2.0, 4.0, 8.0]
        )


class TestReturns:
    def test_terminal_reward_propagates_with_gamma_one(self):
        """Paper setting: zero intermediate rewards, terminal metric reward,
        gamma=1 — every step's return equals the terminal reward."""
        buf = TrajectoryBuffer(gamma=1.0, lam=0.95)
        fill_episode(buf, 4, terminal=-42.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["returns"], [-42.0] * 4)

    def test_discounted_returns(self):
        buf = TrajectoryBuffer(gamma=0.5, lam=1.0)
        fill_episode(buf, 3, terminal=8.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["returns"], [2.0, 4.0, 8.0])

    def test_gae_with_zero_values_equals_returns(self):
        buf = TrajectoryBuffer(gamma=1.0, lam=1.0)
        fill_episode(buf, 4, values=[0.0] * 4, terminal=6.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["advantages"], data["returns"])

    def test_gae_baseline_reduces_advantage(self):
        """A value baseline equal to the reward zeroes the advantage."""
        buf = TrajectoryBuffer(gamma=1.0, lam=1.0)
        fill_episode(buf, 3, values=[6.0, 6.0, 6.0], terminal=6.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["advantages"], 0.0, atol=1e-12)

    def test_episodes_isolated(self):
        """GAE must not leak across episode boundaries."""
        buf = TrajectoryBuffer(gamma=1.0, lam=1.0)
        fill_episode(buf, 2, terminal=100.0)
        fill_episode(buf, 2, terminal=-100.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["returns"], [100, 100, -100, -100])


class TestBatchedPath:
    """store_batch/end_slot — the vectorised-rollout ingestion path."""

    def test_equals_scalar_path(self):
        """The same steps through both paths produce identical arrays."""
        scalar = TrajectoryBuffer(gamma=1.0, lam=0.97)
        for _ in range(2):
            fill_episode(scalar, 4, values=[1.0, 2.0, 3.0, 4.0], terminal=10.0)
        batched = TrajectoryBuffer(gamma=1.0, lam=0.97)
        vals = np.array([[1.0, 2.0, 3.0, 4.0]] * 2)
        for t in range(4):
            batched.store_batch(
                np.zeros((2, *OBS_SHAPE), np.float32),
                np.ones((2, 4), bool),
                np.full(2, t % 4),
                -np.ones(2),
                slots=[0, 1],
            )
        for slot in range(2):
            batched.end_slot(slot, 10.0, values=vals[slot])
        a = scalar.get(normalize_advantages=False)
        b = batched.get(normalize_advantages=False)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_deferred_values_required_at_end(self):
        buf = TrajectoryBuffer()
        buf.store_batch(
            np.zeros((1, *OBS_SHAPE), np.float32), np.ones((1, 4), bool),
            [0], [-1.0], slots=[7],
        )
        with pytest.raises(RuntimeError, match="deferred value"):
            buf.end_slot(7, 1.0)

    def test_end_unknown_slot(self):
        with pytest.raises(RuntimeError, match="no stored steps"):
            TrajectoryBuffer().end_slot(3, 0.0)

    def test_staged_obs_shape(self):
        buf = TrajectoryBuffer()
        for _ in range(5):
            buf.store_batch(
                np.zeros((2, *OBS_SHAPE), np.float32), np.ones((2, 4), bool),
                [0, 1], [-1.0, -1.0], slots=[0, 1],
            )
        assert buf.staged_obs(1).shape == (5, *OBS_SHAPE)

    def test_out_of_order_slots_sorted_in_get(self):
        """Episodes closed out of slot order still concatenate by slot id."""
        buf = TrajectoryBuffer(gamma=1.0, lam=1.0)
        for slot, steps in [(0, 2), (1, 3)]:
            for _ in range(steps):
                buf.store_batch(
                    np.zeros((1, *OBS_SHAPE), np.float32),
                    np.ones((1, 4), bool), [slot], [-1.0], slots=[slot],
                )
        buf.end_slot(1, terminal_reward=-1.0, values=np.zeros(3))
        buf.end_slot(0, terminal_reward=1.0, values=np.zeros(2))
        data = buf.get(normalize_advantages=False)
        np.testing.assert_array_equal(data["actions"], [0, 0, 1, 1, 1])
        np.testing.assert_array_equal(data["returns"], [1, 1, -1, -1, -1])

    def test_open_slot_blocks_get(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 2)
        buf.store_batch(
            np.zeros((1, *OBS_SHAPE), np.float32), np.ones((1, 4), bool),
            [0], [-1.0], slots=[0],
        )
        with pytest.raises(RuntimeError, match="still open"):
            buf.get()


class TestGetArrays:
    def test_shapes_and_dtypes(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 5)
        data = buf.get()
        assert data["obs"].shape == (5, *OBS_SHAPE)
        assert data["masks"].shape == (5, 4)
        assert data["masks"].dtype == bool
        assert data["actions"].dtype == np.int64
        assert data["advantages"].shape == (5,)

    def test_advantage_normalisation(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 4, values=[1.0, 2.0, 3.0, 4.0], terminal=5.0)
        adv = buf.get(normalize_advantages=True)["advantages"]
        assert adv.mean() == pytest.approx(0.0, abs=1e-9)
        assert adv.std() == pytest.approx(1.0, rel=1e-6)
