"""Unit tests for the GAE trajectory buffer."""

import numpy as np
import pytest

from repro.rl import TrajectoryBuffer

OBS_SHAPE = (4, 3)


def fill_episode(buf, n_steps, values=None, terminal=10.0):
    values = values if values is not None else [0.0] * n_steps
    for t in range(n_steps):
        buf.store(np.zeros(OBS_SHAPE), np.ones(4, bool), t % 4, -1.0, values[t])
    buf.end_episode(terminal)


class TestMechanics:
    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            TrajectoryBuffer(gamma=1.5)

    def test_end_episode_without_steps(self):
        with pytest.raises(RuntimeError):
            TrajectoryBuffer().end_episode(1.0)

    def test_get_with_open_episode(self):
        buf = TrajectoryBuffer()
        buf.store(np.zeros(OBS_SHAPE), np.ones(4, bool), 0, -1.0, 0.0)
        with pytest.raises(RuntimeError, match="still open"):
            buf.get()

    def test_get_empty(self):
        with pytest.raises(RuntimeError, match="empty"):
            TrajectoryBuffer().get()

    def test_counts(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 3)
        fill_episode(buf, 5)
        assert buf.n_steps == 8
        assert buf.n_episodes == 2
        assert buf.episode_rewards == [10.0, 10.0]

    def test_clear(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 3)
        buf.clear()
        assert buf.n_steps == 0


class TestReturns:
    def test_terminal_reward_propagates_with_gamma_one(self):
        """Paper setting: zero intermediate rewards, terminal metric reward,
        gamma=1 — every step's return equals the terminal reward."""
        buf = TrajectoryBuffer(gamma=1.0, lam=0.95)
        fill_episode(buf, 4, terminal=-42.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["returns"], [-42.0] * 4)

    def test_discounted_returns(self):
        buf = TrajectoryBuffer(gamma=0.5, lam=1.0)
        fill_episode(buf, 3, terminal=8.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["returns"], [2.0, 4.0, 8.0])

    def test_gae_with_zero_values_equals_returns(self):
        buf = TrajectoryBuffer(gamma=1.0, lam=1.0)
        fill_episode(buf, 4, values=[0.0] * 4, terminal=6.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["advantages"], data["returns"])

    def test_gae_baseline_reduces_advantage(self):
        """A value baseline equal to the reward zeroes the advantage."""
        buf = TrajectoryBuffer(gamma=1.0, lam=1.0)
        fill_episode(buf, 3, values=[6.0, 6.0, 6.0], terminal=6.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["advantages"], 0.0, atol=1e-12)

    def test_episodes_isolated(self):
        """GAE must not leak across episode boundaries."""
        buf = TrajectoryBuffer(gamma=1.0, lam=1.0)
        fill_episode(buf, 2, terminal=100.0)
        fill_episode(buf, 2, terminal=-100.0)
        data = buf.get(normalize_advantages=False)
        np.testing.assert_allclose(data["returns"], [100, 100, -100, -100])


class TestGetArrays:
    def test_shapes_and_dtypes(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 5)
        data = buf.get()
        assert data["obs"].shape == (5, *OBS_SHAPE)
        assert data["masks"].shape == (5, 4)
        assert data["masks"].dtype == bool
        assert data["actions"].dtype == np.int64
        assert data["advantages"].shape == (5,)

    def test_advantage_normalisation(self):
        buf = TrajectoryBuffer()
        fill_episode(buf, 4, values=[1.0, 2.0, 3.0, 4.0], terminal=5.0)
        adv = buf.get(normalize_advantages=True)["advantages"]
        assert adv.mean() == pytest.approx(0.0, abs=1e-9)
        assert adv.std() == pytest.approx(1.0, rel=1e-6)
