"""Telemetry subsystem tests: core algebra, spans, transport, sink, goldens.

Covers the contracts everything else leans on: snapshot merges are
associative and commutative (so worker deltas can arrive in any order),
spans nest and survive exceptions, histogram quantiles are accurate
within a bucket, the disabled path is a true no-op (shared null
singletons), worker snapshots ride the ProcessPoolBackend result
protocol, the JSONL sink round-trips through its validator — and,
the headline guarantee, results are bit-identical with telemetry on
vs off.
"""

import json
import math

import numpy as np
import pytest

from repro.config import EnvConfig, EvalConfig, PPOConfig, TelemetryConfig, TrainConfig
from repro.rl import Trainer
from repro.rl.trainer import EpochRecord, UpdateStats
from repro.telemetry import core
from repro.telemetry.core import (
    INT_BOUNDS,
    Telemetry,
    TelemetrySnapshot,
    histogram_quantile,
    strip_labels,
)
from repro.telemetry.sink import (
    SCHEMA,
    TelemetrySink,
    render_summary,
    telemetry_run,
    validate_jsonl,
)
from repro.workloads import load_trace


@pytest.fixture(scope="module")
def trace():
    return load_trace("Lublin-1", n_jobs=800, seed=3)


def make_snapshot(seed: int) -> TelemetrySnapshot:
    """A registry exercised with seed-dependent values, snapshotted."""
    rng = np.random.default_rng(seed)
    reg = Telemetry(enabled=True)
    reg.counter("jobs").add(int(rng.integers(1, 50)))
    reg.counter(f"only.{seed}").add(seed + 1)
    for _ in range(int(rng.integers(2, 10))):
        reg.gauge("kl").set(float(rng.uniform(0, 0.1)))
        reg.histogram("depth", bounds=INT_BOUNDS).record(int(rng.integers(0, 64)))
    reg.add_span_time("epoch/rollout", float(rng.uniform(0.1, 2.0)), count=3)
    return reg.snapshot()


class TestSnapshotMerge:
    def test_associative(self):
        a, b, c = make_snapshot(1), make_snapshot(2), make_snapshot(3)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    def test_commutative(self):
        a, b = make_snapshot(4), make_snapshot(5)
        assert a.merge(b).to_dict() == b.merge(a).to_dict()

    def test_merge_with_empty_is_identity(self):
        a = make_snapshot(6)
        assert a.merge(TelemetrySnapshot()).to_dict() == a.to_dict()
        assert TelemetrySnapshot().merge(a).to_dict() == a.to_dict()

    def test_counters_add_and_disjoint_keys_survive(self):
        a, b = make_snapshot(1), make_snapshot(2)
        merged = a.merge(b)
        assert merged.counters["jobs"] == a.counters["jobs"] + b.counters["jobs"]
        assert merged.counters["only.1"] == a.counters["only.1"]
        assert merged.counters["only.2"] == b.counters["only.2"]

    def test_gauge_last_degrades_to_none_on_ambiguity(self):
        # Two workers both set the gauge; no cross-worker ordering exists,
        # so the merged "last" must not invent one.
        a, b = Telemetry(enabled=True), Telemetry(enabled=True)
        a.gauge("kl").set(0.1)
        b.gauge("kl").set(0.2)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.gauges["kl"]["last"] is None
        assert merged.gauges["kl"]["count"] == 2
        assert merged.gauges["kl"]["min"] == 0.1
        assert merged.gauges["kl"]["max"] == 0.2

    def test_gauge_last_survives_unambiguous_merges(self):
        a, b = Telemetry(enabled=True), Telemetry(enabled=True)
        a.gauge("kl").set(0.3)
        b.gauge("kl").set(0.3)  # equal values: unambiguous
        assert a.snapshot().merge(b.snapshot()).gauges["kl"]["last"] == 0.3
        empty = Telemetry(enabled=True)
        empty.gauge("kl")  # registered but never set
        assert a.snapshot().merge(empty.snapshot()).gauges["kl"]["last"] == 0.3

    def test_histogram_bounds_mismatch_refuses(self):
        a, b = Telemetry(enabled=True), Telemetry(enabled=True)
        a.histogram("h", bounds=(1, 2, 3)).record(1)
        b.histogram("h", bounds=(1, 2, 4)).record(1)
        with pytest.raises(ValueError, match="bounds"):
            a.snapshot().merge(b.snapshot())

    def test_labelled_then_aggregated_recovers_totals(self):
        workers = [make_snapshot(s) for s in (7, 8, 9)]
        combined = TelemetrySnapshot()
        for i, snap in enumerate(workers):
            combined = combined.merge(snap.labelled(worker=i))
        assert "jobs{worker=0}" in combined.counters
        agg = combined.aggregated()
        plain = TelemetrySnapshot()
        for snap in workers:
            plain = plain.merge(snap)
        assert agg.to_dict() == plain.to_dict()

    def test_strip_labels(self):
        assert strip_labels("a.b{worker=1}") == "a.b"
        assert strip_labels("a.b") == "a.b"

    def test_snapshot_dict_roundtrip(self):
        a = make_snapshot(10)
        assert TelemetrySnapshot.from_dict(a.to_dict()).to_dict() == a.to_dict()


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        reg = Telemetry(enabled=True)
        with reg.span("epoch"):
            with reg.span("rollout"):
                with reg.span("env_step"):
                    pass
            with reg.span("update"):
                pass
        snap = reg.snapshot()
        assert set(snap.spans) == {
            "epoch", "epoch/rollout", "epoch/rollout/env_step", "epoch/update",
        }
        # a parent span's time includes its children's
        assert snap.spans["epoch"]["sum"] >= snap.spans["epoch/rollout"]["sum"]

    def test_exception_still_records_and_unwinds(self):
        reg = Telemetry(enabled=True)
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                with reg.span("inner"):
                    raise RuntimeError("boom")
        snap = reg.snapshot()
        assert snap.spans["outer"]["count"] == 1
        assert snap.spans["outer/inner"]["count"] == 1
        assert reg._span_stack == []  # fully unwound
        with reg.span("after"):
            pass
        assert "after" in reg.snapshot().spans  # not "outer/after"

    def test_elapsed_exposed_on_exit(self):
        reg = Telemetry(enabled=True)
        with reg.span("t") as sp:
            pass
        assert sp.elapsed >= 0.0
        assert reg.span_seconds("t") == pytest.approx(sp.elapsed)

    def test_add_span_time_batches(self):
        reg = Telemetry(enabled=True)
        reg.add_span_time("hot", 0.5, count=5)
        reg.add_span_time("hot", 0.3, count=3)
        entry = reg.snapshot().spans["hot"]
        assert entry["count"] == 8
        assert entry["sum"] == pytest.approx(0.8)
        assert reg.span_seconds("hot") == pytest.approx(0.8)
        assert reg.span_seconds("missing") == 0.0


class TestHistogram:
    def test_quantiles_within_bucket_resolution(self):
        reg = Telemetry(enabled=True)
        h = reg.histogram("lat")  # DURATION_BOUNDS_SEC, log-spaced
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-5.0, sigma=1.0, size=5000)
        for v in values:
            h.record(v)
        entry = reg.snapshot().histograms["lat"]
        for q in (0.5, 0.9, 0.99):
            est = histogram_quantile(entry, q)
            lo, hi = np.quantile(values, [max(0, q - 0.04), min(1, q + 0.04)])
            # the estimate must land within the neighbouring-quantile band
            # widened by one log-bucket (edges are 2.5x apart)
            assert lo / 2.5 <= est <= hi * 2.5, (q, est, lo, hi)

    def test_exact_on_single_bucket_edges(self):
        reg = Telemetry(enabled=True)
        h = reg.histogram("d", bounds=INT_BOUNDS)
        for v in [2, 2, 2, 2]:
            h.record(v)
        entry = reg.snapshot().histograms["d"]
        assert histogram_quantile(entry, 0.5) == pytest.approx(2.0)
        assert entry["min"] == 2 and entry["max"] == 2

    def test_upper_inclusive_edges_and_overflow(self):
        h = core.Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.record(v)
        assert h.counts == [2, 2, 1]  # <=1, (1,2], >2 overflow
        assert h.count == 5

    def test_empty_quantile_is_nan(self):
        h = core.Histogram()
        entry = Telemetry(enabled=True).snapshot()  # unused; build dict directly
        d = {"bounds": list(h.bounds), "counts": list(h.counts),
             "count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf}
        assert math.isnan(histogram_quantile(d, 0.5))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            core.Histogram(bounds=(3, 2, 1))
        with pytest.raises(ValueError):
            core.Histogram(bounds=())
        with pytest.raises(ValueError):
            histogram_quantile({"count": 1}, 1.5)


class TestDisabledNoOp:
    def test_disabled_registry_hands_out_shared_nulls(self):
        reg = Telemetry(enabled=False)
        assert reg.counter("a") is reg.counter("b")
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a") is reg.histogram("b")
        assert reg.span("a") is reg.span("b")

    def test_disabled_records_nothing(self):
        reg = Telemetry(enabled=False)
        reg.counter("c").add(5)
        reg.gauge("g").set(1.0)
        reg.histogram("h").record(0.1)
        with reg.span("s"):
            pass
        reg.add_span_time("t", 1.0)
        assert reg.snapshot().empty
        assert not reg.has_data()

    def test_null_span_is_reentrant(self):
        reg = Telemetry(enabled=False)
        sp = reg.span("x")
        with sp:
            with sp:
                pass
        assert sp.elapsed == 0.0

    def test_module_default_is_disabled(self):
        assert core.current().enabled is False or core.current().enabled is True
        # session() restores whatever was active before
        before = core.current()
        with core.session() as reg:
            assert core.current() is reg
            assert reg.enabled
        assert core.current() is before


def _worker_records(state: dict, i: int) -> int:
    """Module-level (picklable) task that records telemetry in the worker."""
    reg = core.current()
    reg.counter("test.tasks").add(1)
    with reg.span("test.work"):
        pass
    reg.histogram("test.size", bounds=INT_BOUNDS).record(i)
    return i * i


class TestCrossProcessTransport:
    def test_worker_snapshots_ride_result_messages(self):
        from repro.runtime.process_pool import ProcessPoolBackend

        with core.session() as reg:
            with ProcessPoolBackend(2) as backend:
                out = backend.map(_worker_records, list(range(8)), chunksize=1)
            assert sorted(out) == [i * i for i in range(8)]
            snap = reg.snapshot()
        # per-worker labelled entries, aggregating to the full totals
        agg = snap.aggregated()
        assert agg.counters["test.tasks"] == 8
        assert agg.spans["test.work"]["count"] == 8
        assert agg.histograms["test.size"]["count"] == 8
        workers = {name for name in snap.counters
                   if strip_labels(name) == "test.tasks"}
        assert workers <= {"test.tasks{worker=0}", "test.tasks{worker=1}"}
        assert len(workers) >= 1  # at least one worker did work
        # the runtime's own IPC instrumentation came along for free
        ipc = [n for n in snap.histograms
               if strip_labels(n) == "runtime.ipc.queue_wait_sec"]
        assert ipc, sorted(snap.histograms)

    def test_disabled_parent_means_dark_workers(self):
        from repro.runtime.process_pool import ProcessPoolBackend

        assert not core.enabled()
        with ProcessPoolBackend(2) as backend:
            out = backend.map(_worker_records, list(range(4)), chunksize=1)
        assert sorted(out) == [i * i for i in range(4)]
        assert not core.current().has_data()


class TestSink:
    def test_roundtrip_validates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetrySink(str(path), meta={"command": "test"}) as sink:
            sink.write_event("epoch", epoch=0, kl=0.01, phases=None)
            sink.write_event("heartbeat", cell="lublin-64", seconds=1.0)
            sink.write_snapshot(make_snapshot(11))
        stats = validate_jsonl(str(path))
        assert stats["lines"] == 4
        assert stats["events"] == {"run": 1, "epoch": 1, "heartbeat": 1,
                                   "snapshot": 1}
        restored = TelemetrySnapshot.from_dict(stats["snapshot"])
        assert restored.to_dict() == make_snapshot(11).to_dict()

    def test_first_line_is_run_event_with_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TelemetrySink(str(path)).close()
        first = json.loads(path.read_text().splitlines()[0])
        assert first["event"] == "run"
        assert first["schema"] == SCHEMA

    def test_nonfinite_floats_serialize_as_null(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetrySink(str(path)) as sink:
            sink.write_event("epoch", epoch=0, val_reward=float("nan"))
            sink.write_snapshot(make_snapshot(12))
        line = json.loads(path.read_text().splitlines()[1])
        assert line["val_reward"] is None
        validate_jsonl(str(path))  # histogram inf min/max handled too

    @pytest.mark.parametrize("mutate, match", [
        (lambda lines: [], "empty"),
        (lambda lines: ["not json"], "not JSON"),
        (lambda lines: lines[1:], "first line must be a run"),
        (lambda lines: lines[:1], "no snapshot"),
        (lambda lines: lines + [json.dumps({"event": "nope", "ts": 0})],
         "unknown event"),
    ])
    def test_rejects_malformed(self, tmp_path, mutate, match):
        path = tmp_path / "t.jsonl"
        with TelemetrySink(str(path)) as sink:
            sink.write_snapshot(make_snapshot(13))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(mutate(lines)) + "\n" if mutate(lines) else "")
        with pytest.raises(ValueError, match=match):
            validate_jsonl(str(path))

    def test_rejects_corrupt_histogram(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetrySink(str(path)) as sink:
            sink.write_snapshot(make_snapshot(14))
        lines = path.read_text().splitlines()
        snap_line = json.loads(lines[-1])
        hist = next(iter(snap_line["data"]["histograms"].values()))
        hist["counts"][0] += 1  # bucket counts no longer sum to count
        lines[-1] = json.dumps(snap_line)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="do not sum"):
            validate_jsonl(str(path))

    def test_unknown_event_refused_at_write_time(self, tmp_path):
        sink = TelemetrySink(str(tmp_path / "t.jsonl"))
        with pytest.raises(ValueError, match="unknown event"):
            sink.write_event("custom")
        sink.close()

    def test_render_summary_aggregates_workers(self):
        snap = make_snapshot(15).labelled(worker=0).merge(
            make_snapshot(16).labelled(worker=1)
        )
        text = render_summary(snap)
        assert "telemetry summary" in text
        assert "{worker=" not in text  # summary is the aggregated view
        assert "jobs" in text and "depth" in text


class TestTelemetryRun:
    def test_disabled_config_yields_none(self):
        with telemetry_run(None) as sink:
            assert sink is None
        with telemetry_run(TelemetryConfig(enabled=False)) as sink:
            assert sink is None
        assert not core.enabled()

    def test_enabled_config_activates_and_restores(self, tmp_path):
        path = tmp_path / "t.jsonl"
        cfg = TelemetryConfig(enabled=True, path=str(path), summary=False)
        with telemetry_run(cfg, meta={"command": "test"}) as sink:
            assert sink is not None
            assert core.enabled()
            core.current().counter("x").add(1)
        assert not core.enabled()
        stats = validate_jsonl(str(path))
        assert stats["snapshot"]["counters"]["x"] == 1

    def test_nested_run_is_noop(self, tmp_path):
        # A study owns the registry; a trainer's own telemetry_run inside
        # it must record into the study's registry, not open a second sink.
        outer = TelemetryConfig(enabled=True, summary=False)
        inner = TelemetryConfig(
            enabled=True, path=str(tmp_path / "inner.jsonl"), summary=False
        )
        with telemetry_run(outer):
            outer_reg = core.current()
            with telemetry_run(inner) as sink:
                assert sink is None
                assert core.current() is outer_reg
        assert not (tmp_path / "inner.jsonl").exists()


TINY_ENV = EnvConfig(max_obsv_size=16)
TINY_PPO = PPOConfig(train_pi_iters=5, train_v_iters=5)


def _tiny_train(trace, telemetry=None, path=None):
    cfg = TrainConfig(
        epochs=2, trajectories_per_epoch=2, trajectory_length=16, seed=0,
        telemetry=telemetry if telemetry is not None else (
            TelemetryConfig(enabled=True, path=path, summary=False)
            if path is not None else None
        ),
    )
    with Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                 train_config=cfg) as t:
        return t.train()


class TestGoldenBitIdentity:
    """The headline guarantee: telemetry never changes a result bit."""

    def test_train_identical_on_vs_off(self, trace, tmp_path):
        off = _tiny_train(trace)
        on = _tiny_train(trace, path=str(tmp_path / "t.jsonl"))
        np.testing.assert_array_equal(on.metric_curve(), off.metric_curve())
        for rec_on, rec_off in zip(on.curve, off.curve):
            assert rec_on.mean_reward == rec_off.mean_reward
            assert rec_on.val_reward == rec_off.val_reward
            assert rec_on.stats.kl == rec_off.stats.kl
        for key, w_off in off.policy.state_dict().items():
            np.testing.assert_array_equal(on.policy.state_dict()[key], w_off)
        # and the trace it wrote is valid with per-epoch phase breakdowns
        stats = validate_jsonl(str(tmp_path / "t.jsonl"))
        assert stats["events"]["epoch"] == 2
        assert core.enabled() is False  # trainer restored the registry

    def test_evaluate_identical_on_vs_off(self, trace, tmp_path):
        from repro.api import evaluate
        from repro.schedulers import SJF

        def run(telemetry):
            return evaluate(
                SJF(), trace, metric="bsld",
                config=EvalConfig(n_sequences=2, sequence_length=16,
                                  seed=1, telemetry=telemetry),
            )

        off = run(None)
        on = run(TelemetryConfig(
            enabled=True, path=str(tmp_path / "e.jsonl"), summary=False
        ))
        np.testing.assert_array_equal(on.values, off.values)
        snap = TelemetrySnapshot.from_dict(
            validate_jsonl(str(tmp_path / "e.jsonl"))["snapshot"]
        )
        assert snap.histograms["eval.cell_latency_sec"]["count"] > 0
        assert snap.counters["engine.decisions"] > 0


class TestEpochRecordPhaseTimes:
    def test_roundtrip_with_phase_times(self):
        rec = EpochRecord(
            epoch=3, mean_metric=2.5, mean_reward=-2.5,
            stats=UpdateStats(policy_loss=0.1, value_loss=0.2, kl=0.01,
                              entropy=1.0, pi_iters_run=5,
                              early_stopped=False),
            n_rejected=0, wall_time=1.0, filtered_phase=False,
            phase_times={"rollout": 0.5, "update": 0.3,
                         "broadcast": 0.01, "validate": 0.1},
        )
        restored = EpochRecord.from_dict(rec.to_dict())
        assert restored == rec
        assert restored.phase_times["rollout"] == 0.5

    def test_old_records_without_phase_times_still_load(self):
        # archives written before telemetry existed have no phase_times key
        rec = EpochRecord(
            epoch=0, mean_metric=2.0, mean_reward=-2.0,
            stats=UpdateStats(policy_loss=0.1, value_loss=0.2, kl=0.01,
                              entropy=1.0, pi_iters_run=5,
                              early_stopped=False),
            n_rejected=0, wall_time=1.0, filtered_phase=False,
        )
        old = rec.to_dict()
        del old["phase_times"]
        restored = EpochRecord.from_dict(old)
        assert restored.phase_times is None
        assert restored.epoch == 0

    def test_phase_times_populated_only_when_enabled(self, trace):
        off = _tiny_train(trace)
        assert all(rec.phase_times is None for rec in off.curve)
        on = _tiny_train(trace, telemetry=TelemetryConfig(enabled=True,
                                                          summary=False))
        for rec in on.curve:
            assert set(rec.phase_times) == {
                "rollout", "update", "broadcast", "validate",
            }
            assert all(v >= 0 for v in rec.phase_times.values())


class TestPerfBreakdownFromSpans:
    """Satellite 2: the bench phase breakdown is the telemetry spans."""

    def test_fractions_sum_to_one(self, trace, monkeypatch):
        import importlib.util
        from pathlib import Path

        script = (Path(__file__).resolve().parents[1]
                  / "benchmarks" / "perf" / "run_perf.py")
        monkeypatch.syspath_prepend(str(script.parent))  # its legacy sibling
        spec = importlib.util.spec_from_file_location("run_perf", script)
        run_perf = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(run_perf)

        rng = np.random.default_rng(0)
        sampler = run_perf.SequenceSampler(trace, 16, seed=0)
        sequences = sampler.sample_many(2)
        out = run_perf.rollout_phase_breakdown(
            TINY_ENV, trace, sequences, n_envs=2, rng=rng
        )
        fracs = [out["policy_forward_frac"], out["env_step_frac"],
                 out["buffer_frac"]]
        assert sum(fracs) == pytest.approx(1.0)
        assert all(0.0 <= f <= 1.0 for f in fracs)
        assert out["policy_forward_sec"] > 0
        assert out["env_step_sec"] > 0
        assert not core.enabled()  # bench session restored the registry
