"""Unit tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SGD, Tensor, clip_grad_norm


def quadratic_loss(p: Parameter):
    """(p - 3)^2 summed — minimum at 3."""
    return ((p - 3.0) ** 2.0).sum()


class TestSGD:
    def test_descends(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_descends(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_skips_params_without_grad(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.ones(1))
        opt = Adam([a, b], lr=0.1)
        quadratic_loss(a).backward()
        opt.step()
        np.testing.assert_allclose(b.data, 1.0)  # untouched
        assert a.data[0] != 0.0

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.999))


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
