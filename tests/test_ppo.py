"""Unit tests for the PPO agent: acting, update mechanics, clip behaviour."""

import numpy as np
import pytest

from repro.config import PPOConfig
from repro.nn import KernelPolicy, ValueMLP
from repro.rl import PPOAgent, TrajectoryBuffer

M, F = 8, 7


def make_agent(seed=0, **ppo_kwargs):
    policy = KernelPolicy(F, hidden=(8, 8), seed=seed)
    value = ValueMLP(M, F, hidden=(16, 16), seed=seed + 1)
    return PPOAgent(policy, value, PPOConfig(**ppo_kwargs), seed=seed)


def synthetic_batch(agent, n_episodes=6, steps=5, seed=0):
    """Synthetic contextual-bandit task: picking the slot whose first
    feature is largest yields +1, anything else -1.  (A *feature*-based
    rule — a positional rule would be unlearnable for the kernel policy,
    which is order-equivariant by construction.)"""
    rng = np.random.default_rng(seed)
    buf = TrajectoryBuffer(gamma=1.0, lam=0.97)
    for _ in range(n_episodes):
        for _ in range(steps):
            obs = rng.random((M, F)).astype(np.float32)
            mask = np.ones(M, bool)
            best = int(obs[:, 0].argmax())
            action, logp, value = agent.act(obs, mask)
            reward = 1.0 if action == best else -1.0
            buf.store(obs, mask, action, logp, value, reward=reward)
        buf.end_episode(0.0)
    return buf.get()


class TestActing:
    def test_act_returns_valid_tuple(self):
        agent = make_agent()
        obs = np.random.default_rng(0).random((M, F))
        action, logp, value = agent.act(obs, np.ones(M, bool))
        assert 0 <= action < M
        assert logp <= 0.0
        assert isinstance(value, float)

    def test_act_respects_mask(self):
        agent = make_agent()
        obs = np.random.default_rng(0).random((M, F))
        mask = np.zeros(M, bool)
        mask[3] = True
        actions = {agent.act(obs, mask)[0] for _ in range(20)}
        assert actions == {3}

    def test_act_greedy_deterministic(self):
        agent = make_agent()
        obs = np.random.default_rng(0).random((M, F))
        mask = np.ones(M, bool)
        choices = {agent.act_greedy(obs, mask) for _ in range(5)}
        assert len(choices) == 1

    def test_act_stochastic_explores(self):
        agent = make_agent()
        obs = np.random.default_rng(0).random((M, F))
        actions = {agent.act(obs, np.ones(M, bool))[0] for _ in range(60)}
        assert len(actions) > 1


class TestUpdate:
    def test_update_returns_stats(self):
        agent = make_agent(train_pi_iters=5, train_v_iters=5)
        stats = agent.update(synthetic_batch(agent))
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)
        assert stats.pi_iters_run >= 1

    def test_update_rejects_empty(self):
        agent = make_agent()
        with pytest.raises(ValueError):
            agent.update({"actions": np.array([], dtype=np.int64)})

    def test_update_improves_synthetic_task(self):
        """After PPO updates, the agent should prefer the rewarded rule
        (pick the slot with the largest first feature)."""
        agent = make_agent(
            train_pi_iters=40, train_v_iters=10, target_kl=1e9, pi_lr=5e-3
        )
        for i in range(6):
            data = synthetic_batch(agent, n_episodes=15, steps=6, seed=i)
            agent.update(data)
        rng = np.random.default_rng(99)
        hits = []
        for _ in range(40):
            obs = rng.random((M, F))
            best = int(obs[:, 0].argmax())
            hits.append(agent.act_greedy(obs, np.ones(M, bool)) == best)
        assert np.mean(hits) > 0.4  # chance level is 1/16

    def test_kl_early_stopping(self):
        agent = make_agent(train_pi_iters=80, target_kl=1e-8, pi_lr=0.05)
        stats = agent.update(synthetic_batch(agent))
        assert stats.early_stopped
        assert stats.pi_iters_run < 80

    def test_value_regression_converges(self):
        agent = make_agent(train_v_iters=200, vf_lr=1e-2, train_pi_iters=1)
        data = synthetic_batch(agent, n_episodes=4, steps=4)
        first = agent.update(data).value_loss
        second = agent.update(data).value_loss
        assert second < first

    def test_minibatching_caps_batch(self):
        agent = make_agent(minibatch_size=4, train_pi_iters=3, train_v_iters=3)
        stats = agent.update(synthetic_batch(agent, n_episodes=10, steps=4))
        assert stats.pi_iters_run >= 1  # runs without error on minibatches

    def test_update_changes_parameters(self):
        agent = make_agent(train_pi_iters=10, train_v_iters=10)
        before = [p.data.copy() for p in agent.policy.parameters()]
        agent.update(synthetic_batch(agent))
        after = agent.policy.parameters()
        assert any(not np.allclose(b, a.data) for b, a in zip(before, after))
