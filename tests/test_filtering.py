"""Unit tests for trajectory filtering (§IV-C): probe distribution, range R."""

import numpy as np
import pytest

from repro.rl import FilterRange, TrajectoryFilter, probe_distribution
from repro.workloads import load_trace


@pytest.fixture(scope="module")
def pik_trace():
    # paper scale (first 10K jobs) so the trace contains its burst episode
    return load_trace("PIK-IPLEX", n_jobs=10_000, seed=11)


class TestFilterRange:
    def test_accepts_open_closed_interval(self):
        r = FilterRange(low=1.0, high=10.0, median=1.0, mean=5.0, skewness=2.0)
        assert not r.accepts(1.0)   # easy sequences (<= median) dropped
        assert r.accepts(5.0)
        assert r.accepts(10.0)
        assert not r.accepts(10.5)  # extreme tail dropped


class TestProbeDistribution:
    def test_shape_and_positivity(self, lublin_trace):
        values = probe_distribution(
            lublin_trace, n_samples=10, sequence_length=64, seed=0
        )
        assert values.shape == (10,)
        assert (values >= 1.0).all()  # bsld floor

    def test_rejects_zero_samples(self, lublin_trace):
        with pytest.raises(ValueError):
            probe_distribution(lublin_trace, n_samples=0)

    def test_seeded_reproducibility(self, lublin_trace):
        a = probe_distribution(lublin_trace, n_samples=5, sequence_length=64, seed=3)
        b = probe_distribution(lublin_trace, n_samples=5, sequence_length=64, seed=3)
        np.testing.assert_allclose(a, b)

    def test_pik_distribution_heavily_skewed(self, pik_trace):
        """The Fig. 7 phenomenon: median ~1, mean far larger."""
        values = probe_distribution(pik_trace, n_samples=40, sequence_length=128, seed=0)
        assert np.median(values) < 0.2 * values.mean()


class TestTrajectoryFilter:
    def test_fit_builds_paper_range(self, pik_trace):
        f = TrajectoryFilter(metric="bsld")
        r = f.fit(pik_trace, n_samples=40, sequence_length=128, seed=0)
        assert r.low == pytest.approx(r.median)
        assert r.high == pytest.approx(2.0 * r.mean)
        assert r.skewness > 1.0  # heavy right skew on PIK

    def test_accepts_requires_fit(self, pik_trace):
        f = TrajectoryFilter()
        with pytest.raises(RuntimeError, match="fit"):
            f.accepts(pik_trace.jobs[:16], pik_trace.max_procs)

    def test_filter_rejects_easy_and_extreme(self, pik_trace):
        """Accepted sequences must have SJF metric inside (median, 2*mean]."""
        f = TrajectoryFilter(metric="bsld")
        r = f.fit(pik_trace, n_samples=40, sequence_length=128, seed=0)
        from repro.workloads import SequenceSampler

        sampler = SequenceSampler(pik_trace, 128, seed=5)
        for _ in range(10):
            jobs = sampler.sample()
            value = f.sequence_value(jobs, pik_trace.max_procs)
            assert f.accepts(jobs, pik_trace.max_procs) == r.accepts(value)

    def test_filter_passes_everything_on_uniform_metric(self, lublin_trace):
        """On a low-variance trace most mass sits inside the range — the
        paper's observation that stable traces don't need filtering."""
        f = TrajectoryFilter(metric="util")
        f.fit(lublin_trace, n_samples=20, sequence_length=64, seed=0)
        assert f.range.high > f.range.low
