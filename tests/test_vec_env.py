"""Unit tests for VecSchedGym: lock-step semantics, auto-reset, padding."""

import numpy as np
import pytest

from repro.config import EnvConfig
from repro.rl import make_reward
from repro.sim import SchedGym, VecSchedGym
from repro.workloads import Job


CFG = EnvConfig(max_obsv_size=4)


def job(jid, submit, run, procs, user=0):
    return Job(job_id=jid, submit_time=submit, run_time=run,
               requested_procs=procs, requested_time=run, user_id=user)


def sequence(seed, n=5):
    rng = np.random.default_rng(seed)
    return [
        job(i + 1, submit=float(i), run=float(rng.integers(5, 50)),
            procs=int(rng.integers(1, 4)))
        for i in range(n)
    ]


def make_vec(n_envs=3):
    return VecSchedGym(n_envs, 8, make_reward("bsld"), config=CFG)


class TestReset:
    def test_shapes(self):
        vec = make_vec(3)
        obs, masks = vec.reset([sequence(0), sequence(1), sequence(2)])
        assert obs.shape == (3, 4, CFG.job_features)
        assert masks.shape == (3, 4)
        assert vec.active.all()

    def test_partial_fill_pads_with_inactive(self):
        vec = make_vec(3)
        obs, masks = vec.reset([sequence(0)])
        assert vec.active.tolist() == [True, False, False]
        assert (obs[1:] == 0).all()
        assert not masks[1:].any()

    def test_too_many_sequences_rejected(self):
        vec = make_vec(2)
        with pytest.raises(ValueError, match="queue the"):
            vec.reset([sequence(i) for i in range(3)])

    def test_empty_reset_rejected(self):
        with pytest.raises(ValueError):
            make_vec().reset([])


class TestStep:
    def test_matches_single_env_in_lockstep(self):
        """Each vec slot must evolve exactly like a lone SchedGym."""
        seqs = [sequence(10), sequence(11)]
        vec = make_vec(2)
        v_obs, v_masks = vec.reset([[j.copy() for j in s] for s in seqs])

        refs = [SchedGym(8, make_reward("bsld"), CFG) for _ in seqs]
        r_states = [ref.reset([j.copy() for j in s]) for ref, s in zip(refs, seqs)]

        for i in range(2):
            np.testing.assert_array_equal(v_obs[i], r_states[i][0])
            np.testing.assert_array_equal(v_masks[i], r_states[i][1])

        done = [False, False]
        while not all(done):
            actions = np.full(2, -1)
            for i in range(2):
                if not done[i]:
                    actions[i] = int(np.flatnonzero(v_masks[i])[0])
            result = vec.step(actions)
            for i in range(2):
                if done[i]:
                    continue
                ref_result = refs[i].step(int(actions[i]))
                np.testing.assert_array_equal(
                    result.observations[i], ref_result.observation
                )
                assert result.rewards[i] == ref_result.reward
                assert bool(result.dones[i]) == ref_result.done
                done[i] = ref_result.done
            v_masks = result.action_masks

    def test_wrong_action_shape(self):
        vec = make_vec(2)
        vec.reset([sequence(0), sequence(1)])
        with pytest.raises(ValueError, match="expected 2 actions"):
            vec.step(np.zeros(3, dtype=int))

    def test_step_when_all_done(self):
        vec = make_vec(1)
        vec.reset([[job(1, 0, 10, 2)]])
        result = vec.step(np.array([0]))
        assert result.dones[0] and vec.all_done
        with pytest.raises(RuntimeError, match="all environments are done"):
            vec.step(np.array([-1]))


class TestAutoReset:
    def test_backlog_streams_through_envs(self):
        """5 one-job sequences through 2 envs: 5 terminal rewards total."""
        vec = make_vec(2)
        seqs = [[job(i + 1, 0, 10 * (i + 1), 2)] for i in range(5)]
        vec.reset(seqs[:2])
        vec.queue_sequences(seqs[2:])
        assert vec.n_queued == 3

        finished = 0
        auto_resets = 0
        while not vec.all_done:
            result = vec.step(np.zeros(2, dtype=int))
            finished += int(result.dones.sum())
            auto_resets += sum(
                1 for info in result.infos if info.get("auto_reset")
            )
        assert finished == 5
        assert auto_resets == 3
        assert vec.n_queued == 0

    def test_auto_reset_obs_is_new_episode_start(self):
        vec = make_vec(1)
        first = [job(1, 0, 10, 2)]
        second = [job(7, 5.0, 20, 3)]
        vec.reset([first])
        vec.queue_sequences([second])
        result = vec.step(np.array([0]))
        assert result.dones[0] and result.infos[0]["auto_reset"]
        ref = SchedGym(8, make_reward("bsld"), CFG)
        ref_obs, ref_mask = ref.reset([j.copy() for j in second])
        np.testing.assert_array_equal(result.observations[0], ref_obs)
        np.testing.assert_array_equal(result.action_masks[0], ref_mask)

    def test_deactivates_without_backlog(self):
        vec = make_vec(2)
        vec.reset([[job(1, 0, 10, 2)], [job(2, 0, 10, 2)]])
        result = vec.step(np.zeros(2, dtype=int))
        assert result.dones.all()
        assert vec.all_done
        assert (result.observations == 0).all()
        assert not result.action_masks.any()
