"""Unit tests for configuration dataclasses (paper defaults + validation)."""

import dataclasses

import pytest

from repro.config import EnvConfig, EvalConfig, PPOConfig, TrainConfig


class TestEnvConfig:
    def test_paper_defaults(self):
        cfg = EnvConfig()
        assert cfg.max_obsv_size == 128  # MAX_OBSV_SIZE (§IV-B3)
        assert cfg.observation_shape == (128, cfg.job_features)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EnvConfig().max_obsv_size = 5

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvConfig(max_obsv_size=0)
        with pytest.raises(ValueError):
            EnvConfig(job_features=2)


class TestPPOConfig:
    def test_paper_defaults(self):
        cfg = PPOConfig()
        assert cfg.pi_lr == 1e-3          # "the learning rate is 1e-3"
        assert cfg.train_pi_iters == 80   # "80 iterations to update"
        assert cfg.train_v_iters == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            PPOConfig(clip_ratio=0.0)
        with pytest.raises(ValueError):
            PPOConfig(gamma=1.5)


class TestTrainConfig:
    def test_paper_defaults(self):
        cfg = TrainConfig()
        assert cfg.epochs == 100
        assert cfg.trajectories_per_epoch == 100
        assert cfg.trajectory_length == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)


class TestEvalConfig:
    def test_paper_defaults(self):
        cfg = EvalConfig()
        assert cfg.n_sequences == 10       # "repeated 10 times"
        assert cfg.sequence_length == 1024  # "1,024 continuous jobs"
