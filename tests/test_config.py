"""Unit tests for configuration dataclasses (paper defaults + validation)."""

import dataclasses

import pytest

from repro.config import (
    EnvConfig,
    EvalConfig,
    PPOConfig,
    RuntimeConfig,
    TrainConfig,
)


class TestEnvConfig:
    def test_paper_defaults(self):
        cfg = EnvConfig()
        assert cfg.max_obsv_size == 128  # MAX_OBSV_SIZE (§IV-B3)
        assert cfg.observation_shape == (128, cfg.job_features)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            EnvConfig().max_obsv_size = 5

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvConfig(max_obsv_size=0)
        with pytest.raises(ValueError):
            EnvConfig(job_features=2)


class TestPPOConfig:
    def test_paper_defaults(self):
        cfg = PPOConfig()
        assert cfg.pi_lr == 1e-3          # "the learning rate is 1e-3"
        assert cfg.train_pi_iters == 80   # "80 iterations to update"
        assert cfg.train_v_iters == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            PPOConfig(clip_ratio=0.0)
        with pytest.raises(ValueError):
            PPOConfig(gamma=1.5)


class TestTrainConfig:
    def test_paper_defaults(self):
        cfg = TrainConfig()
        assert cfg.epochs == 100
        assert cfg.trajectories_per_epoch == 100
        assert cfg.trajectory_length == 256
        # async rollouts are opt-in; the default is the lock-step path
        assert cfg.rollout_mode == "locked"
        assert cfg.staleness == 0
        assert cfg.stale_mode == "drop"

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)

    def test_rollout_mode_validation(self):
        assert TrainConfig(rollout_mode="async", staleness=2).staleness == 2
        with pytest.raises(ValueError):
            TrainConfig(rollout_mode="sync")
        with pytest.raises(ValueError):
            TrainConfig(staleness=-1)
        with pytest.raises(ValueError):
            TrainConfig(stale_mode="discard")


class TestEvalConfig:
    def test_paper_defaults(self):
        cfg = EvalConfig()
        assert cfg.n_sequences == 10       # "repeated 10 times"
        assert cfg.sequence_length == 1024  # "1,024 continuous jobs"
        assert cfg.runtime == RuntimeConfig()  # serial unless asked

    def test_validation(self):
        with pytest.raises(ValueError):
            EvalConfig(n_sequences=0)
        with pytest.raises(ValueError):
            EvalConfig(sequence_length=-1)
        with pytest.raises(TypeError):
            EvalConfig(runtime="process")


class TestRuntimeConfig:
    def test_defaults_are_serial(self):
        cfg = RuntimeConfig()
        assert cfg.backend == "serial"
        assert cfg.workers == 1
        assert cfg.chunksize is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(backend="threads")
        with pytest.raises(ValueError):
            RuntimeConfig(workers=0)
        with pytest.raises(ValueError):
            RuntimeConfig(chunksize=0)

    def test_from_workers_cli_convention(self):
        assert RuntimeConfig.from_workers(1) == RuntimeConfig()
        multi = RuntimeConfig.from_workers(4)
        assert multi.backend == "process" and multi.workers == 4
        with pytest.raises(ValueError):
            RuntimeConfig.from_workers(0)

    def test_threads_through_train_config(self):
        cfg = TrainConfig(runtime=RuntimeConfig.from_workers(2))
        assert cfg.runtime.backend == "process"
        with pytest.raises(TypeError):
            TrainConfig(runtime=2)


class TestFeatureCompat:
    def seven(self):
        from repro.config import EnvConfig

        return EnvConfig()

    def nine(self):
        from repro.config import EnvConfig

        return EnvConfig(job_features=9, memory_features=True)

    def test_same_layout_is_native(self):
        assert self.seven().feature_compat(self.seven()) == "native"
        assert self.nine().feature_compat(self.nine()) == "native"

    def test_plain_policy_on_memory_env_is_blind(self):
        assert self.seven().feature_compat(self.nine()) == "memory-blind"

    def test_memory_policy_on_plain_env_is_neutral(self):
        assert self.nine().feature_compat(self.seven()) == "memory-neutral"
