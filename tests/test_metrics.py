"""Unit tests for scheduling metrics (paper §II-A3 definitions)."""

import pytest

from repro.sim.metrics import (
    BSLD_THRESHOLD,
    METRICS,
    average_bounded_slowdown,
    average_response_time,
    average_slowdown,
    average_waiting_time,
    fairness_aggregate,
    job_bounded_slowdown,
    job_response_time,
    job_slowdown,
    job_waiting_time,
    makespan,
    metric_by_name,
    per_user_metric,
    resource_utilization,
)
from repro.workloads import Job


def done_job(jid=1, submit=0.0, start=10.0, run=100.0, procs=2, user=1):
    j = Job(job_id=jid, submit_time=submit, run_time=run, requested_procs=procs,
            user_id=user)
    j.start_time = start
    return j


class TestPerJob:
    def test_waiting_time(self):
        assert job_waiting_time(done_job(submit=5.0, start=25.0)) == 20.0

    def test_response_time(self):
        assert job_response_time(done_job(submit=0, start=10, run=100)) == 110.0

    def test_slowdown(self):
        assert job_slowdown(done_job(submit=0, start=50, run=100)) == 1.5

    def test_bounded_slowdown_long_job(self):
        # runtime 100 > threshold: bsld == slowdown
        j = done_job(submit=0, start=50, run=100)
        assert job_bounded_slowdown(j) == pytest.approx(1.5)

    def test_bounded_slowdown_short_job_uses_threshold(self):
        # runtime 1s, waited 9s: raw slowdown = 10, bounded = (9+1)/10 = 1
        j = done_job(submit=0, start=9, run=1)
        assert job_slowdown(j) == pytest.approx(10.0)
        assert job_bounded_slowdown(j) == pytest.approx(1.0)

    def test_bounded_slowdown_floor_is_one(self):
        j = done_job(submit=0, start=0, run=1)  # no wait at all
        assert job_bounded_slowdown(j) == 1.0

    def test_custom_threshold(self):
        j = done_job(submit=0, start=60, run=30)
        assert job_bounded_slowdown(j, threshold=60.0) == pytest.approx(1.5)


class TestAverages:
    def test_average_waiting_time(self):
        jobs = [done_job(1, 0, 10), done_job(2, 0, 30)]
        assert average_waiting_time(jobs) == 20.0

    def test_average_response_time(self):
        jobs = [done_job(1, 0, 10, run=10), done_job(2, 0, 30, run=10)]
        assert average_response_time(jobs) == 30.0

    def test_averages_reject_unscheduled(self):
        j = Job(job_id=1, submit_time=0, run_time=10, requested_procs=1)
        with pytest.raises(ValueError, match="never scheduled"):
            average_waiting_time([j])

    def test_bsld_always_at_least_one(self):
        jobs = [done_job(i, 0, 0, run=1) for i in range(5)]
        assert average_bounded_slowdown(jobs) == 1.0

    def test_slowdown_at_least_bsld(self):
        jobs = [done_job(1, 0, 100, run=2), done_job(2, 0, 5, run=50)]
        assert average_slowdown(jobs) >= average_bounded_slowdown(jobs)


class TestUtilization:
    def test_perfect_utilization(self):
        # 2 jobs × 2 procs × 100s back-to-back on a 4-proc cluster
        jobs = [
            done_job(1, submit=0, start=0, run=100, procs=4),
        ]
        assert resource_utilization(jobs, 4) == pytest.approx(1.0)

    def test_half_utilization(self):
        jobs = [done_job(1, submit=0, start=0, run=100, procs=2)]
        assert resource_utilization(jobs, 4) == pytest.approx(0.5)

    def test_makespan(self):
        jobs = [done_job(1, 0, 0, run=50), done_job(2, 10, 60, run=40)]
        assert makespan(jobs) == 100.0

    def test_util_rejects_bad_procs(self):
        with pytest.raises(ValueError):
            resource_utilization([done_job()], 0)


class TestFairness:
    def test_per_user_split(self):
        jobs = [
            done_job(1, 0, 0, run=100, user=1),      # bsld 1
            done_job(2, 0, 900, run=100, user=2),    # bsld 10
        ]
        per_user = per_user_metric(jobs)
        assert per_user[1] == pytest.approx(1.0)
        assert per_user[2] == pytest.approx(10.0)

    def test_max_aggregator(self):
        jobs = [
            done_job(1, 0, 0, run=100, user=1),
            done_job(2, 0, 900, run=100, user=2),
        ]
        assert fairness_aggregate(jobs, aggregator="max") == pytest.approx(10.0)
        assert fairness_aggregate(jobs, aggregator="mean") == pytest.approx(5.5)

    def test_unknown_aggregator(self):
        with pytest.raises(ValueError):
            fairness_aggregate([done_job()], aggregator="median")


class TestRegistry:
    def test_all_paper_metrics_present(self):
        for name in ["bsld", "slowdown", "wait", "resp", "util"]:
            assert name in METRICS

    def test_direction_flags(self):
        assert metric_by_name("util")[1] is True      # maximise
        assert metric_by_name("bsld")[1] is False     # minimise

    def test_unknown_metric(self):
        with pytest.raises(KeyError, match="unknown metric"):
            metric_by_name("nope")

    def test_registry_functions_run(self):
        jobs = [done_job(1, 0, 10, run=100, procs=2)]
        for name, (fn, _) in METRICS.items():
            value = fn(jobs, 4)
            assert isinstance(value, float)
