"""Unit tests for the Table III heuristic schedulers."""

import math

import pytest

from repro.schedulers import (
    F1,
    FCFS,
    HEURISTICS,
    LJF,
    SJF,
    UNICEP,
    WFP3,
    SmallestFirst,
    make_scheduler,
)
from repro.sim import Cluster
from repro.workloads import Job


def job(jid=1, submit=0.0, req_time=100.0, procs=4):
    return Job(
        job_id=jid, submit_time=submit, run_time=req_time,
        requested_procs=procs, requested_time=req_time,
    )


@pytest.fixture()
def cluster():
    return Cluster(64)


class TestFCFS:
    def test_scores_by_submit_time(self, cluster):
        assert FCFS().score(job(submit=5.0), 10.0, cluster) == 5.0

    def test_selects_earliest(self, cluster):
        jobs = [job(1, submit=9.0), job(2, submit=3.0)]
        assert FCFS().select(jobs, 10.0, cluster).job_id == 2


class TestSJF:
    def test_scores_by_requested_time(self, cluster):
        assert SJF().score(job(req_time=42.0), 0.0, cluster) == 42.0

    def test_uses_estimate_not_actual(self, cluster):
        j = job(req_time=100.0)
        j.run_time = 1.0  # actual runtime invisible to the scheduler
        assert SJF().score(j, 0.0, cluster) == 100.0

    def test_ljf_is_opposite(self, cluster):
        jobs = [job(1, req_time=10), job(2, req_time=99)]
        assert SJF().select(jobs, 0.0, cluster).job_id == 1
        assert LJF().select(jobs, 0.0, cluster).job_id == 2


class TestWFP3:
    def test_formula(self, cluster):
        j = job(submit=0.0, req_time=100.0, procs=4)
        # wait = 200 => -(200/100)^3 * 4 = -32
        assert WFP3().score(j, 200.0, cluster) == pytest.approx(-32.0)

    def test_prefers_long_waiters(self, cluster):
        fresh = job(1, submit=90.0)
        stale = job(2, submit=0.0)
        assert WFP3().select([fresh, stale], 100.0, cluster).job_id == 2

    def test_zero_wait_is_zero(self, cluster):
        assert WFP3().score(job(submit=50.0), 50.0, cluster) == 0.0


class TestUNICEP:
    def test_formula(self, cluster):
        j = job(submit=0.0, req_time=100.0, procs=4)
        expected = -200.0 / (math.log2(4) * 100.0)
        assert UNICEP().score(j, 200.0, cluster) == pytest.approx(expected)

    def test_serial_job_guard(self, cluster):
        """log2(1) = 0 must not divide by zero: guard uses max(n, 2)."""
        j = job(procs=1)
        score = UNICEP().score(j, 100.0, cluster)
        assert math.isfinite(score)


class TestF1:
    def test_formula(self, cluster):
        j = job(submit=1000.0, req_time=100.0, procs=4)
        expected = math.log10(100.0) * 4 + 870.0 * math.log10(1000.0)
        assert F1().score(j, 0.0, cluster) == pytest.approx(expected)

    def test_zero_submit_guard(self, cluster):
        """Sequences re-based to t=0 must not hit log10(0)."""
        score = F1().score(job(submit=0.0), 0.0, cluster)
        assert math.isfinite(score)

    def test_prefers_short_narrow_early(self, cluster):
        good = job(1, submit=1.0, req_time=10.0, procs=1)
        bad = job(2, submit=1.0, req_time=10_000.0, procs=32)
        assert F1().select([good, bad], 0.0, cluster).job_id == 1


class TestSmallest:
    def test_by_procs(self, cluster):
        jobs = [job(1, procs=16), job(2, procs=2)]
        assert SmallestFirst().select(jobs, 0.0, cluster).job_id == 2


class TestRegistry:
    def test_all_paper_schedulers(self):
        assert set(HEURISTICS) == {"FCFS", "SJF", "WFP3", "UNICEP", "F1"}

    def test_make_scheduler(self):
        assert make_scheduler("SJF").name == "SJF"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("XYZ")

    def test_select_empty_queue_raises(self, cluster):
        with pytest.raises(ValueError):
            FCFS().select([], 0.0, cluster)

    def test_tie_breaks_by_job_id(self, cluster):
        jobs = [job(5, submit=1.0), job(2, submit=1.0)]
        assert FCFS().select(jobs, 0.0, cluster).job_id == 2
