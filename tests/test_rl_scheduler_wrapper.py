"""Unit tests for deploying trained policies as schedulers (save/load,
greedy selection, run_scheduler interop)."""

import numpy as np
import pytest

from repro.config import EnvConfig
from repro.nn import KernelPolicy
from repro.schedulers import RLSchedulerPolicy
from repro.sim import Cluster, run_scheduler
from repro.workloads import Job


@pytest.fixture()
def policy_scheduler():
    env_config = EnvConfig(max_obsv_size=16)
    policy = KernelPolicy(env_config.job_features, seed=0)
    return RLSchedulerPolicy(policy, n_procs=8, env_config=env_config)


def job(jid, submit=0.0, run=10.0, procs=2):
    return Job(job_id=jid, submit_time=submit, run_time=run, requested_procs=procs)


class TestSelect:
    def test_selects_from_pending(self, policy_scheduler):
        pending = [job(1), job(2), job(3)]
        cluster = Cluster(8)
        chosen = policy_scheduler.select(pending, 0.0, cluster)
        assert chosen in pending

    def test_deterministic(self, policy_scheduler):
        pending = [job(1), job(2, run=99.0), job(3, procs=4)]
        cluster = Cluster(8)
        picks = {policy_scheduler.select(pending, 0.0, cluster).job_id
                 for _ in range(5)}
        assert len(picks) == 1

    def test_empty_queue_raises(self, policy_scheduler):
        with pytest.raises(ValueError):
            policy_scheduler.select([], 0.0, Cluster(8))

    def test_score_not_supported(self, policy_scheduler):
        with pytest.raises(RuntimeError, match="whole queue"):
            policy_scheduler.score(job(1), 0.0, Cluster(8))

    def test_queue_overflow_handled(self, policy_scheduler):
        """More pending jobs than MAX_OBSV_SIZE: cut-off must not crash."""
        pending = [job(i, submit=float(i)) for i in range(1, 40)]
        chosen = policy_scheduler.select(pending, 50.0, Cluster(8))
        # cut-off keeps the 16 earliest-submitted jobs
        assert chosen.job_id <= 16

    def test_works_inside_run_scheduler(self, policy_scheduler):
        jobs = [job(i, submit=i * 5.0) for i in range(1, 20)]
        done = run_scheduler(jobs, 8, policy_scheduler)
        assert len(done) == 19


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, policy_scheduler):
        path = tmp_path / "model.npz"
        policy_scheduler.save(path)
        loaded = RLSchedulerPolicy.load(path)
        assert loaded.n_procs == 8
        assert loaded.env_config.max_obsv_size == 16
        pending = [job(1), job(2, run=99.0), job(3, procs=4)]
        cluster = Cluster(8)
        assert (
            loaded.select(pending, 0.0, cluster).job_id
            == policy_scheduler.select(pending, 0.0, cluster).job_id
        )

    def test_loaded_weights_identical(self, tmp_path, policy_scheduler):
        path = tmp_path / "model.npz"
        policy_scheduler.save(path)
        loaded = RLSchedulerPolicy.load(path)
        for a, b in zip(
            policy_scheduler.policy.parameters(), loaded.policy.parameters()
        ):
            np.testing.assert_allclose(a.data, b.data)

    def test_name_preserved(self, tmp_path):
        env_config = EnvConfig(max_obsv_size=16)
        policy = KernelPolicy(env_config.job_features, seed=0)
        s = RLSchedulerPolicy(policy, 8, env_config, name="RL-Lublin-1")
        path = tmp_path / "m.npz"
        s.save(path)
        assert RLSchedulerPolicy.load(path).name == "RL-Lublin-1"
