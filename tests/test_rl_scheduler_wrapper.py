"""Unit tests for deploying trained policies as schedulers (save/load,
greedy selection, run_scheduler interop, sparse hot path)."""

import pickle

import numpy as np
import pytest

from repro.config import EnvConfig
from repro.nn import KernelPolicy, make_policy, masked_log_softmax, no_grad
from repro.schedulers import RLSchedulerPolicy
from repro.schedulers.rl_scheduler import DeployFeatureCache
from repro.sim import Cluster, build_observation, run_scheduler
from repro.workloads import Job


@pytest.fixture()
def policy_scheduler():
    env_config = EnvConfig(max_obsv_size=16)
    policy = KernelPolicy(env_config.job_features, seed=0)
    return RLSchedulerPolicy(policy, n_procs=8, env_config=env_config)


def job(jid, submit=0.0, run=10.0, procs=2):
    return Job(job_id=jid, submit_time=submit, run_time=run, requested_procs=procs)


class TestSelect:
    def test_selects_from_pending(self, policy_scheduler):
        pending = [job(1), job(2), job(3)]
        cluster = Cluster(8)
        chosen = policy_scheduler.select(pending, 0.0, cluster)
        assert chosen in pending

    def test_deterministic(self, policy_scheduler):
        pending = [job(1), job(2, run=99.0), job(3, procs=4)]
        cluster = Cluster(8)
        picks = {policy_scheduler.select(pending, 0.0, cluster).job_id
                 for _ in range(5)}
        assert len(picks) == 1

    def test_empty_queue_raises(self, policy_scheduler):
        with pytest.raises(ValueError):
            policy_scheduler.select([], 0.0, Cluster(8))

    def test_score_not_supported(self, policy_scheduler):
        with pytest.raises(RuntimeError, match="whole queue"):
            policy_scheduler.score(job(1), 0.0, Cluster(8))

    def test_queue_overflow_handled(self, policy_scheduler):
        """More pending jobs than MAX_OBSV_SIZE: cut-off must not crash."""
        pending = [job(i, submit=float(i)) for i in range(1, 40)]
        chosen = policy_scheduler.select(pending, 50.0, Cluster(8))
        # cut-off keeps the 16 earliest-submitted jobs
        assert chosen.job_id <= 16

    def test_works_inside_run_scheduler(self, policy_scheduler):
        jobs = [job(i, submit=i * 5.0) for i in range(1, 20)]
        done = run_scheduler(jobs, 8, policy_scheduler)
        assert len(done) == 19


def random_pending(rng, n, n_procs=64):
    return [
        Job(
            job_id=int(rng.integers(1, 50_000)) * 64 + i,
            submit_time=float(rng.uniform(0, 1e5)),
            run_time=10.0,
            requested_procs=int(rng.integers(1, n_procs + 1)),
            requested_time=float(rng.uniform(1, 4e5)),
            user_id=int(rng.integers(0, 200)),
        )
        for i in range(n)
    ]


def cluster_with_free(n_procs, free):
    cluster = Cluster(n_procs)
    if free < n_procs:
        cluster.allocate(Job(job_id=10**9, submit_time=0.0, run_time=1.0,
                             requested_procs=n_procs - free,
                             requested_time=1.0))
    return cluster


class TestSparseSelectGolden:
    """The deployment hot path (score_rows + persistent DeployFeatureCache)
    must pick the same job as the reference dense batch-1 forward."""

    def dense_reference(self, policy, cfg, pending, now, cluster, n_procs):
        obs, mask, visible = build_observation(
            pending, now, cluster.free_procs, n_procs, cfg
        )
        with no_grad():
            logits = policy(obs[None], mask[None])
            log_probs = masked_log_softmax(logits, mask[None]).numpy()[0]
        return visible[int(np.argmax(log_probs))]

    @pytest.mark.parametrize("seed", range(3))
    def test_argmax_equivalent_to_dense(self, seed):
        rng = np.random.default_rng(seed)
        cfg = EnvConfig(max_obsv_size=16)
        policy = KernelPolicy(cfg.job_features, seed=0)
        sched = RLSchedulerPolicy(policy, n_procs=64, env_config=cfg)
        for _ in range(60):
            pending = random_pending(rng, int(rng.integers(1, 40)))
            now = max(j.submit_time for j in pending) + float(
                rng.uniform(0, 1e4)
            )
            cluster = cluster_with_free(64, int(rng.integers(0, 65)))
            assert (
                sched.select(pending, now, cluster).job_id
                == self.dense_reference(
                    policy, cfg, pending, now, cluster, 64
                ).job_id
            )

    def test_cache_persists_and_grows_across_calls(self):
        rng = np.random.default_rng(9)
        cfg = EnvConfig(max_obsv_size=16)
        sched = RLSchedulerPolicy(
            KernelPolicy(cfg.job_features, seed=0), n_procs=64, env_config=cfg
        )
        first = random_pending(rng, 10)
        sched.select(first, 2e5, Cluster(64))
        cache = sched._cache
        assert cache is not None and cache.size == 10
        sched.select(first + random_pending(rng, 3), 2e5, Cluster(64))
        assert sched._cache is cache  # same cache, grown in place
        assert cache.size == 13

    def test_cache_self_heals_on_reused_job_ids(self):
        """The same job ids with different attributes (a different trace)
        must not leak stale features into the decision."""
        cfg = EnvConfig(max_obsv_size=16)
        policy = KernelPolicy(cfg.job_features, seed=0)
        sched = RLSchedulerPolicy(policy, n_procs=64, env_config=cfg)
        rng = np.random.default_rng(2)
        old = random_pending(rng, 8)
        sched.select(old, 2e5, Cluster(64))
        # same ids, different submit/procs — as a new trace would produce
        renewed = [
            Job(job_id=j.job_id, submit_time=j.submit_time + 7.0,
                run_time=j.run_time, requested_procs=(j.requested_procs % 64) + 1,
                requested_time=j.requested_time * 2.0, user_id=j.user_id)
            for j in old
        ]
        now = max(j.submit_time for j in renewed) + 10.0
        cluster = cluster_with_free(64, 33)
        assert (
            sched.select(renewed, now, cluster).job_id
            == self.dense_reference(
                policy, cfg, renewed, now, cluster, 64
            ).job_id
        )

    def test_cache_self_heals_on_requested_time_only_change(self):
        """Staleness validation must cover every feature-bearing attribute,
        including ones (requested_time, user) that do not change submit or
        processor request."""
        cfg = EnvConfig(max_obsv_size=16)
        policy = KernelPolicy(cfg.job_features, seed=0)
        sched = RLSchedulerPolicy(policy, n_procs=64, env_config=cfg)
        rng = np.random.default_rng(11)
        old = random_pending(rng, 6)
        sched.select(old, 2e5, Cluster(64))
        renewed = [
            Job(job_id=j.job_id, submit_time=j.submit_time,
                run_time=j.run_time, requested_procs=j.requested_procs,
                requested_time=j.requested_time * 3.0, user_id=j.user_id + 1)
            for j in old
        ]
        cluster = cluster_with_free(64, 20)
        assert (
            sched.select(renewed, 2e5, cluster).job_id
            == self.dense_reference(
                policy, cfg, renewed, 2e5, cluster, 64
            ).job_id
        )

    def test_duplicate_ids_in_one_queue_do_not_recurse(self):
        """Conflicting duplicate job ids are pathological but must degrade
        to uncached per-call rows, not infinite rebuild recursion."""
        cfg = EnvConfig(max_obsv_size=16)
        policy = KernelPolicy(cfg.job_features, seed=0)
        sched = RLSchedulerPolicy(policy, n_procs=64, env_config=cfg)
        dup = [
            Job(job_id=7, submit_time=1.0, run_time=5.0, requested_procs=2,
                requested_time=50.0, user_id=1),
            Job(job_id=7, submit_time=2.0, run_time=5.0, requested_procs=9,
                requested_time=80.0, user_id=2),
        ]
        cluster = cluster_with_free(64, 30)
        for _ in range(3):  # revalidates (and rebuilds) every call
            got = sched.select(dup, 10.0, cluster)
            want = self.dense_reference(policy, cfg, dup, 10.0, cluster, 64)
            # ids collide by construction, so compare the distinguishing field
            assert got.requested_procs == want.requested_procs

    def test_mlp_fallback_uses_dense_path(self):
        cfg = EnvConfig(max_obsv_size=16)
        mlp = make_policy("mlp_v1", 16, cfg.job_features, seed=0)
        sched = RLSchedulerPolicy(mlp, n_procs=64, env_config=cfg,
                                  preset="mlp_v1")
        rng = np.random.default_rng(4)
        for _ in range(10):
            pending = random_pending(rng, 12)
            now = max(j.submit_time for j in pending)
            cluster = cluster_with_free(64, int(rng.integers(0, 65)))
            assert (
                sched.select(pending, now, cluster).job_id
                == self.dense_reference(
                    mlp, cfg, pending, now, cluster, 64
                ).job_id
            )


class TestDeployFeatureCache:
    def test_capacity_doubles(self):
        cfg = EnvConfig(max_obsv_size=8)
        cache = DeployFeatureCache(64, cfg)
        rng = np.random.default_rng(0)
        cache.rows(random_pending(rng, 70))
        assert cache.size == 70
        assert len(cache.submit) >= 70  # grown past the 64-row floor
        assert cache.static.shape[1] == cfg.job_features

    def test_evict_remaps_surviving_rows(self):
        cfg = EnvConfig(max_obsv_size=8)
        cache = DeployFeatureCache(64, cfg)
        rng = np.random.default_rng(3)
        jobs = random_pending(rng, 12)
        cache.rows(jobs)
        gone = [j.job_id for j in jobs[::2]]
        assert cache.evict(gone) == len(gone)
        assert cache.size == 12 - len(gone)
        # surviving rows must still validate — rows() rebuilds (and resets
        # size) on any identity mismatch, so an unchanged size proves the
        # compaction kept every feature column aligned
        survivors = jobs[1::2]
        rows = cache.rows(survivors)
        assert cache.size == len(survivors)
        np.testing.assert_array_equal(
            cache.submit[rows], [j.submit_time for j in survivors]
        )
        # evicting unknown ids is a no-op
        assert cache.evict(gone) == 0

    def test_evict_bounds_long_lived_stream(self):
        """Regression: a daemon's unbounded job stream must not grow the
        cache without bound once departed jobs are evicted."""
        cfg = EnvConfig(max_obsv_size=8)
        cache = DeployFeatureCache(64, cfg)
        rng = np.random.default_rng(5)
        leaked = DeployFeatureCache(64, cfg)
        for _ in range(40):
            batch = random_pending(rng, 25)
            cache.rows(batch)
            leaked.rows(batch)
            cache.evict([j.job_id for j in batch])  # all depart
        assert leaked.size == 40 * 25  # the old behaviour: unbounded
        assert cache.size == 0
        assert len(cache.submit) == 64  # capacity shrank back to the floor

    def test_evict_all_then_reuse(self):
        cfg = EnvConfig(max_obsv_size=8)
        cache = DeployFeatureCache(64, cfg)
        rng = np.random.default_rng(8)
        jobs = random_pending(rng, 5)
        cache.rows(jobs)
        cache.evict([j.job_id for j in jobs])
        assert cache.size == 0 and cache.index == {}
        fresh = random_pending(rng, 3)
        rows = cache.rows(fresh)
        np.testing.assert_array_equal(rows, [0, 1, 2])


class TestForgetJobs:
    def test_policy_forgets_departed_jobs(self, policy_scheduler):
        pending = [job(i, submit=float(i)) for i in range(1, 7)]
        policy_scheduler.select(pending, 10.0, Cluster(8))
        assert policy_scheduler._cache.size == 6
        assert policy_scheduler.forget_jobs([1, 2, 3]) == 3
        assert policy_scheduler._cache.size == 3
        # selection over the survivors still works after compaction
        chosen = policy_scheduler.select(pending[3:], 10.0, Cluster(8))
        assert chosen in pending[3:]

    def test_forget_before_any_select_is_noop(self, policy_scheduler):
        assert policy_scheduler.forget_jobs([1, 2]) == 0


class TestCheckedNProcs:
    def test_constructor_validates(self):
        cfg = EnvConfig(max_obsv_size=8)
        policy = KernelPolicy(cfg.job_features, seed=0)
        with pytest.raises(ValueError):
            RLSchedulerPolicy(policy, n_procs=0, env_config=cfg)
        with pytest.raises(ValueError):
            RLSchedulerPolicy(policy, n_procs=-8, env_config=cfg)
        with pytest.raises(TypeError):
            RLSchedulerPolicy(policy, n_procs=8.5, env_config=cfg)
        with pytest.raises(TypeError):
            RLSchedulerPolicy(policy, n_procs=True, env_config=cfg)

    def test_setter_validates_and_resets_cache(self, policy_scheduler):
        pending = [job(1), job(2)]
        policy_scheduler.select(pending, 0.0, Cluster(8))
        assert policy_scheduler._cache is not None
        policy_scheduler.n_procs = 16  # retarget: fractions change
        assert policy_scheduler._cache is None
        assert policy_scheduler.n_procs == 16
        with pytest.raises(ValueError):
            policy_scheduler.n_procs = 0
        with pytest.raises(TypeError):
            policy_scheduler.n_procs = "8"
        assert policy_scheduler.n_procs == 16  # bad writes changed nothing

    def test_numpy_integer_accepted(self, policy_scheduler):
        policy_scheduler.n_procs = np.int64(32)
        assert policy_scheduler.n_procs == 32


class TestPickleBroadcast:
    def test_pickle_round_trip_selects_identically(self, policy_scheduler):
        clone = pickle.loads(pickle.dumps(policy_scheduler))
        assert clone.n_procs == policy_scheduler.n_procs
        assert clone.preset == policy_scheduler.preset
        pending = [job(1), job(2, run=99.0), job(3, procs=4)]
        assert (
            clone.select(pending, 0.0, Cluster(8)).job_id
            == policy_scheduler.select(pending, 0.0, Cluster(8)).job_id
        )


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, policy_scheduler):
        path = tmp_path / "model.npz"
        policy_scheduler.save(path)
        loaded = RLSchedulerPolicy.load(path)
        assert loaded.n_procs == 8
        assert loaded.env_config.max_obsv_size == 16
        pending = [job(1), job(2, run=99.0), job(3, procs=4)]
        cluster = Cluster(8)
        assert (
            loaded.select(pending, 0.0, cluster).job_id
            == policy_scheduler.select(pending, 0.0, cluster).job_id
        )

    def test_loaded_weights_identical(self, tmp_path, policy_scheduler):
        path = tmp_path / "model.npz"
        policy_scheduler.save(path)
        loaded = RLSchedulerPolicy.load(path)
        for a, b in zip(
            policy_scheduler.policy.parameters(), loaded.policy.parameters()
        ):
            np.testing.assert_allclose(a.data, b.data)

    def test_name_preserved(self, tmp_path):
        env_config = EnvConfig(max_obsv_size=16)
        policy = KernelPolicy(env_config.job_features, seed=0)
        s = RLSchedulerPolicy(policy, 8, env_config, name="RL-Lublin-1")
        path = tmp_path / "m.npz"
        s.save(path)
        assert RLSchedulerPolicy.load(path).name == "RL-Lublin-1"


class TestFeatureLayoutValidation:
    """Construction-time layout checks: shape mismatches must fail loudly
    at build time, not as tensor errors mid-simulation."""

    def test_feature_width_mismatch_fails_at_construction(self):
        from repro.schedulers import FeatureLayoutError

        policy = make_policy("kernel", 16, 7)
        nine_col = EnvConfig(max_obsv_size=16, job_features=9,
                             memory_features=True)
        with pytest.raises(FeatureLayoutError, match="7 features"):
            RLSchedulerPolicy(policy, n_procs=8, env_config=nine_col)

    def test_obsv_size_mismatch_fails_at_construction(self):
        from repro.schedulers import FeatureLayoutError

        policy = make_policy("mlp_v2", 16, 7)
        wider = EnvConfig(max_obsv_size=32)
        with pytest.raises(FeatureLayoutError, match="16 observable"):
            RLSchedulerPolicy(policy, n_procs=8, env_config=wider)


class TestRetarget:
    """Cross-scenario policy retargeting (generalization-study deploys)."""

    def seven_feature_policy(self):
        env_config = EnvConfig(max_obsv_size=16)
        policy = make_policy("kernel", 16, env_config.job_features, seed=0)
        return RLSchedulerPolicy(policy, n_procs=64, env_config=env_config,
                                 name="RL-7f")

    def nine_feature_policy(self):
        env_config = EnvConfig(max_obsv_size=16, job_features=9,
                               memory_features=True)
        policy = make_policy("kernel", 16, 9, seed=0)
        return RLSchedulerPolicy(policy, n_procs=256, env_config=env_config,
                                 name="RL-9f")

    def test_seven_feature_policy_adapts_to_memory_scenario(self):
        from repro.scenarios import get_scenario

        rl = self.seven_feature_policy()
        scen = get_scenario("lublin-256-mem")
        deployed = rl.retarget(scen)
        assert deployed.compat == "memory-blind"
        assert deployed.n_procs == scen.cluster.n_procs == 256
        # the source policy is untouched (the zoo copy stays pristine)
        assert rl.n_procs == 64 and rl.compat == "native"
        # and the adapted policy actually schedules the memory cluster
        jobs = scen.build_trace(n_jobs=120).jobs[:40]
        done = run_scheduler([j.copy() for j in jobs], scen.cluster, deployed)
        assert len(done) == 40

    def test_nine_feature_policy_adapts_to_unconstrained_scenario(self):
        from repro.scenarios import get_scenario

        rl = self.nine_feature_policy()
        scen = get_scenario("lublin-64")
        deployed = rl.retarget("lublin-64")  # names resolve too
        assert deployed.compat == "memory-neutral"
        assert deployed.n_procs == 64
        assert rl.n_procs == 256
        jobs = scen.build_trace(n_jobs=120).jobs[:40]
        done = run_scheduler([j.copy() for j in jobs], scen.cluster, deployed)
        assert len(done) == 40

    def test_native_retarget_between_unconstrained_scenarios(self):
        rl = self.seven_feature_policy()
        deployed = rl.retarget("lublin-256")
        assert deployed.compat == "native"
        assert deployed.n_procs == 256

    def test_strict_mode_raises_both_directions(self):
        from repro.schedulers import FeatureLayoutError

        with pytest.raises(FeatureLayoutError, match="memory-blind"):
            self.seven_feature_policy().retarget(
                "lublin-256-mem", on_mismatch="fail")
        with pytest.raises(FeatureLayoutError, match="memory-neutral"):
            self.nine_feature_policy().retarget(
                "lublin-64", on_mismatch="fail")

    def test_strict_mode_native_still_works(self):
        deployed = self.seven_feature_policy().retarget(
            "lublin-256", on_mismatch="fail")
        assert deployed.compat == "native"

    def test_cluster_spec_and_bare_int_targets(self):
        from repro.sim import ClusterSpec

        rl = self.seven_feature_policy()
        assert rl.retarget(ClusterSpec(128)).n_procs == 128
        assert rl.retarget(32).n_procs == 32
        mem_cluster = ClusterSpec(128, memory=64.0)
        assert rl.retarget(mem_cluster).compat == "memory-blind"
        with pytest.raises(Exception):
            rl.retarget(0)  # checked n_procs setter fails loudly

    def test_invalid_on_mismatch_rejected(self):
        with pytest.raises(ValueError, match="on_mismatch"):
            self.seven_feature_policy().retarget("lublin-64",
                                                 on_mismatch="maybe")
