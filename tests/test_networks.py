"""Unit tests for the policy/value networks, incl. the key order-invariance
property of the kernel network (paper §III-1, §IV-B1)."""

import numpy as np
import pytest

from repro.nn import (
    POLICY_PRESETS,
    KernelPolicy,
    LeNetPolicy,
    MLPPolicy,
    ValueMLP,
    make_policy,
    masked_log_softmax,
)

M, F = 16, 7  # small observation space for tests


def random_obs(batch=2, seed=0):
    return np.random.default_rng(seed).random((batch, M, F))


class TestKernelPolicy:
    def test_output_shape(self):
        net = KernelPolicy(F)
        assert net(random_obs()).shape == (2, M)

    def test_accepts_single_observation(self):
        net = KernelPolicy(F)
        assert net(random_obs()[0]).shape == (1, M)

    def test_parameter_count_under_1000(self):
        """Paper: 'we are able to control the parameter size of the policy
        network less than 1,000'."""
        net = KernelPolicy(F, hidden=(32, 16, 8))
        assert net.num_parameters() < 1000

    def test_order_equivariance(self):
        """Reordering jobs must reorder scores identically (§IV-B1)."""
        net = KernelPolicy(F, seed=3)
        obs = random_obs(batch=1, seed=1)
        logits = net(obs).numpy()[0]
        perm = np.random.default_rng(2).permutation(M)
        logits_perm = net(obs[:, perm]).numpy()[0]
        np.testing.assert_allclose(logits[perm], logits_perm, rtol=1e-10)

    def test_same_job_same_score_regardless_of_position(self):
        net = KernelPolicy(F, seed=3)
        job_vec = np.random.default_rng(4).random(F)
        obs = np.zeros((1, M, F))
        obs[0, 2] = job_vec
        score_at_2 = net(obs).numpy()[0, 2]
        obs2 = np.zeros((1, M, F))
        obs2[0, 9] = job_vec
        score_at_9 = net(obs2).numpy()[0, 9]
        assert score_at_2 == pytest.approx(score_at_9, rel=1e-12)

    def test_feature_mismatch_rejected(self):
        net = KernelPolicy(F)
        with pytest.raises(ValueError, match="features"):
            net(np.ones((1, M, F + 1)))

    def test_needs_hidden_layers(self):
        with pytest.raises(ValueError):
            KernelPolicy(F, hidden=())


class TestMLPPolicy:
    def test_output_shape(self):
        net = MLPPolicy(M, F)
        assert net(random_obs()).shape == (2, M)

    def test_not_order_equivariant(self):
        """The flat MLP mixes positions — the paper's motivation for the
        kernel design."""
        net = MLPPolicy(M, F, seed=3)
        obs = random_obs(batch=1, seed=1)
        logits = net(obs).numpy()[0]
        perm = np.random.default_rng(2).permutation(M)
        logits_perm = net(obs[:, perm]).numpy()[0]
        assert not np.allclose(logits[perm], logits_perm)

    def test_v1_bigger_than_v2(self):
        v1 = make_policy("mlp_v1", M, F)
        v2 = make_policy("mlp_v2", M, F)
        assert v1.num_parameters() > v2.num_parameters()


class TestLeNetPolicy:
    def test_output_shape(self):
        net = LeNetPolicy(M, F)
        assert net(random_obs()).shape == (2, M)

    def test_rejects_tiny_observation(self):
        with pytest.raises(ValueError, match="too small"):
            LeNetPolicy(2, 3)

    def test_gradients_flow_through_conv_stack(self):
        net = LeNetPolicy(M, F, seed=0)
        logits = net(random_obs(batch=1))
        lp = masked_log_softmax(logits, np.ones((1, M), bool))
        lp[0, 0].backward()
        assert all(p.grad is not None for p in net.parameters())


class TestValueMLP:
    def test_scalar_per_observation(self):
        net = ValueMLP(M, F)
        out = net(random_obs(batch=5))
        assert out.shape == (5,)

    def test_gradients_flow(self):
        net = ValueMLP(M, F)
        net(random_obs()).sum().backward()
        assert all(p.grad is not None for p in net.parameters())


class TestPresets:
    def test_all_table4_presets_construct(self):
        for name in POLICY_PRESETS:
            net = make_policy(name, M, F)
            assert net(random_obs()).shape == (2, M)

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown policy preset"):
            make_policy("resnet", M, F)

    def test_kernel_is_smallest(self):
        sizes = {n: make_policy(n, M, F).num_parameters() for n in POLICY_PRESETS}
        assert sizes["kernel"] == min(sizes.values())
