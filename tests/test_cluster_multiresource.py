"""Multi-resource cluster model: memory accounting, ClusterSpec, and the
golden equivalence of the unconstrained case with the pre-refactor
processor-only Cluster (transition for transition)."""

import math

import numpy as np
import pytest

from repro.sim import Cluster, ClusterSpec, mem_demand
from repro.workloads import Job


def job(jid=1, procs=4, mem=-1.0):
    return Job(job_id=jid, submit_time=0.0, run_time=10.0,
               requested_procs=procs, requested_mem=mem)


# ----------------------------------------------------------------------
# The seed repo's processor-only Cluster, verbatim: the executable
# specification the unconstrained multi-resource model must match.
# ----------------------------------------------------------------------
class LegacyCluster:
    def __init__(self, n_procs):
        if n_procs <= 0:
            raise ValueError("positive processor count required")
        self.n_procs = n_procs
        self.free_procs = n_procs
        self._allocations = {}

    def can_allocate(self, j):
        return j.requested_procs <= self.free_procs

    def fits(self, n_procs):
        return n_procs <= self.free_procs

    def allocate(self, j):
        if j.requested_procs > self.n_procs:
            raise ValueError("too large")
        if j.job_id in self._allocations:
            raise RuntimeError("already allocated")
        if not self.can_allocate(j):
            raise RuntimeError("does not fit")
        self.free_procs -= j.requested_procs
        self._allocations[j.job_id] = j.requested_procs

    def release(self, j):
        held = self._allocations.pop(j.job_id, None)
        if held is None:
            raise RuntimeError("no allocation")
        self.free_procs += held


class TestLegacyEquivalence:
    def test_random_transitions_match_legacy(self):
        """Unconstrained Cluster == processor-only Cluster on a random
        alloc/release walk: same admission decisions, same free counts,
        same errors."""
        rng = np.random.default_rng(7)
        new = Cluster(64)
        old = LegacyCluster(64)
        jobs = {i: job(i, int(rng.integers(1, 33))) for i in range(1, 200)}
        held: list[int] = []
        for step in range(2000):
            if held and rng.random() < 0.45:
                jid = held.pop(int(rng.integers(0, len(held))))
                new.release(jobs[jid])
                old.release(jobs[jid])
            else:
                jid = int(rng.integers(1, 200))
                j = jobs[jid]
                assert new.can_allocate(j) == old.can_allocate(j)
                new_err = old_err = None
                try:
                    new.allocate(j)
                except (RuntimeError, ValueError) as e:
                    new_err = type(e)
                try:
                    old.allocate(j)
                except (RuntimeError, ValueError) as e:
                    old_err = type(e)
                assert new_err == old_err
                if new_err is None:
                    held.append(jid)
            assert new.free_procs == old.free_procs
            assert set(new._allocations) == set(old._allocations)

    def test_unconstrained_memory_is_inf(self):
        c = Cluster(8)
        assert math.isinf(c.total_mem)
        assert math.isinf(c.free_mem)
        assert c.mem_utilization == 0.0
        assert c.used_mem == 0.0


class TestMemDemand:
    def test_sentinel_means_zero(self):
        assert mem_demand(job(mem=-1.0)) == 0.0
        assert mem_demand(job(mem=0.0)) == 0.0

    def test_per_proc_times_procs(self):
        assert mem_demand(job(procs=4, mem=2.5)) == 10.0


class TestMemoryAccounting:
    def test_allocate_consumes_both_resources(self):
        c = Cluster(8, memory=10.0)
        j = job(1, procs=4, mem=2.0)  # demand 8.0
        c.allocate(j)
        assert c.free_procs == 4
        assert c.free_mem == pytest.approx(2.0)
        assert c.used_mem == pytest.approx(8.0)
        assert c.mem_utilization == pytest.approx(0.8)
        c.release(j)
        assert c.free_mem == 10.0

    def test_fits_is_the_single_vector_check(self):
        c = Cluster(8, memory=10.0)
        assert c.fits(8)                      # procs-only callers unchanged
        assert c.fits(4, 10.0)
        assert not c.fits(9, 0.0)             # procs bind
        assert not c.fits(1, 10.5)            # memory binds
        assert c.can_allocate(job(1, procs=4, mem=2.5))
        assert not c.can_allocate(job(1, procs=4, mem=2.6))

    def test_memory_blocks_even_when_procs_fit(self):
        c = Cluster(8, memory=10.0)
        c.allocate(job(1, procs=2, mem=4.0))  # 8 mem held
        j2 = job(2, procs=2, mem=2.0)         # fits procs, needs 4 mem > 2 free
        assert not c.can_allocate(j2)
        with pytest.raises(RuntimeError, match="free"):
            c.allocate(j2)

    def test_job_larger_than_total_memory_rejected(self):
        c = Cluster(8, memory=10.0)
        with pytest.raises(ValueError, match="memory units"):
            c.allocate(job(1, procs=4, mem=3.0))  # 12 > 10 total

    def test_reset_restores_memory(self):
        c = Cluster(8, memory=10.0)
        c.allocate(job(1, procs=2, mem=1.0))
        c.reset()
        assert c.free_mem == 10.0
        assert c.n_running == 0

    def test_float_release_order_does_not_trip_conservation(self):
        """Out-of-order releases reassemble free_mem in a different float
        rounding order; the invariant check must tolerate ulp drift."""
        rng = np.random.default_rng(3)
        c = Cluster(64, memory=100.0)
        jobs = [job(i, 1, mem=float(rng.uniform(0.01, 1.5))) for i in range(1, 60)]
        held = []
        for step in range(4000):
            if held and (rng.random() < 0.5 or len(held) == len(jobs)):
                c.release(held.pop(int(rng.integers(0, len(held)))))
            else:
                free = [j for j in jobs if j.job_id not in c._allocations]
                j = free[int(rng.integers(0, len(free)))]
                if c.can_allocate(j):
                    c.allocate(j)
                    held.append(j)
        while held:
            c.release(held.pop())
        assert c.free_mem == 100.0


class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
        with pytest.raises(ValueError):
            ClusterSpec(8, memory=0.0)
        with pytest.raises(ValueError):
            ClusterSpec(8, memory=-1.0)

    def test_coerce(self):
        assert ClusterSpec.coerce(8) == ClusterSpec(8)
        spec = ClusterSpec(8, memory=2.0)
        assert ClusterSpec.coerce(spec) is spec
        with pytest.raises(TypeError):
            ClusterSpec.coerce("8")
        with pytest.raises(TypeError):
            ClusterSpec.coerce(True)

    def test_total_mem(self):
        assert math.isinf(ClusterSpec(8).total_mem)
        assert ClusterSpec(8, memory=3.0).total_mem == 3.0

    def test_build_and_spec_roundtrip(self):
        spec = ClusterSpec(16, memory=32.0)
        c = spec.build()
        assert c.n_procs == 16 and c.total_mem == 32.0
        assert c.spec == spec
        assert Cluster(16).spec == ClusterSpec(16)

    def test_dict_roundtrip(self):
        for spec in (ClusterSpec(8), ClusterSpec(8, memory=4.5)):
            assert ClusterSpec.from_dict(spec.to_dict()) == spec
