"""Unit tests for the cluster resource model (allocation invariants)."""

import pytest

from repro.sim import Cluster
from repro.workloads import Job


def job(jid=1, procs=4):
    return Job(job_id=jid, submit_time=0.0, run_time=10.0, requested_procs=procs)


class TestConstruction:
    def test_starts_idle(self):
        c = Cluster(64)
        assert c.free_procs == 64
        assert c.used_procs == 0
        assert c.utilization == 0.0
        assert c.n_running == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(-4)


class TestAllocate:
    def test_allocate_and_release(self):
        c = Cluster(8)
        j = job(procs=5)
        assert c.can_allocate(j)
        c.allocate(j)
        assert c.free_procs == 3
        assert c.utilization == pytest.approx(5 / 8)
        c.release(j)
        assert c.free_procs == 8

    def test_cannot_overallocate(self):
        c = Cluster(8)
        c.allocate(job(1, 6))
        j2 = job(2, 4)
        assert not c.can_allocate(j2)
        with pytest.raises(RuntimeError, match="only 2 free"):
            c.allocate(j2)

    def test_job_larger_than_cluster(self):
        c = Cluster(8)
        with pytest.raises(ValueError, match="cluster only has"):
            c.allocate(job(1, 16))

    def test_double_allocate_rejected(self):
        c = Cluster(8)
        j = job()
        c.allocate(j)
        with pytest.raises(RuntimeError, match="already allocated"):
            c.allocate(j)

    def test_release_without_allocation_rejected(self):
        c = Cluster(8)
        with pytest.raises(RuntimeError, match="holds no allocation"):
            c.release(job())

    def test_fits(self):
        c = Cluster(8)
        assert c.fits(8)
        assert not c.fits(9)

    def test_reset(self):
        c = Cluster(8)
        c.allocate(job())
        c.reset()
        assert c.free_procs == 8
        assert c.n_running == 0

    def test_conservation_across_many_ops(self):
        c = Cluster(16)
        jobs = [job(i, 1 + i % 4) for i in range(8)]
        for j in jobs:
            if c.can_allocate(j):
                c.allocate(j)
        total_held = sum(
            j.requested_procs for j in jobs if j.job_id in c._allocations
        )
        assert c.free_procs + total_held == 16
