"""Property-based tests on simulator + metrics invariants over random
workloads and both backfilling modes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers import FCFS, SJF, UNICEP, WFP3
from repro.sim import run_scheduler
from repro.sim.metrics import (
    average_bounded_slowdown,
    average_slowdown,
    average_waiting_time,
    job_bounded_slowdown,
    resource_utilization,
)
from repro.workloads import Job

N_PROCS = 16


@st.composite
def job_sequences(draw, max_jobs=25):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=500.0))
        run = draw(st.floats(min_value=1.0, max_value=5000.0))
        over = draw(st.floats(min_value=1.0, max_value=10.0))
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=t,
                run_time=run,
                requested_procs=draw(st.integers(1, N_PROCS)),
                requested_time=run * over,
                user_id=draw(st.integers(0, 3)),
            )
        )
    return jobs


SCHEDULERS = [FCFS(), SJF(), WFP3(), UNICEP()]


@settings(max_examples=40, deadline=None)
@given(job_sequences(), st.booleans(), st.sampled_from(SCHEDULERS))
def test_every_job_completes_exactly_once(jobs, backfill, scheduler):
    done = run_scheduler(jobs, N_PROCS, scheduler, backfill=backfill)
    assert sorted(j.job_id for j in done) == sorted(j.job_id for j in jobs)


@settings(max_examples=40, deadline=None)
@given(job_sequences(), st.booleans(), st.sampled_from(SCHEDULERS))
def test_no_job_starts_before_submission(jobs, backfill, scheduler):
    done = run_scheduler(jobs, N_PROCS, scheduler, backfill=backfill)
    assert all(j.start_time >= j.submit_time - 1e-9 for j in done)


@settings(max_examples=40, deadline=None)
@given(job_sequences(), st.booleans())
def test_cluster_capacity_never_exceeded(jobs, backfill):
    """At every start instant, concurrently-running jobs fit in the cluster."""
    done = run_scheduler(jobs, N_PROCS, FCFS(), backfill=backfill)
    events = sorted(
        [(j.start_time, j.requested_procs) for j in done]
        + [(j.end_time, -j.requested_procs) for j in done],
        key=lambda e: (e[0], e[1]),  # releases (negative) first on ties
    )
    used = 0
    for _, delta in events:
        used += delta
        assert used <= N_PROCS


@settings(max_examples=30, deadline=None)
@given(job_sequences())
def test_bounded_slowdown_at_least_one(jobs):
    done = run_scheduler(jobs, N_PROCS, SJF())
    assert all(job_bounded_slowdown(j) >= 1.0 for j in done)
    assert average_bounded_slowdown(done) >= 1.0


@settings(max_examples=30, deadline=None)
@given(job_sequences())
def test_slowdown_dominates_bounded_slowdown(jobs):
    done = run_scheduler(jobs, N_PROCS, SJF())
    assert average_slowdown(done) >= average_bounded_slowdown(done) - 1e-9


@settings(max_examples=30, deadline=None)
@given(job_sequences())
def test_utilization_in_unit_interval(jobs):
    done = run_scheduler(jobs, N_PROCS, FCFS())
    util = resource_utilization(done, N_PROCS)
    assert 0.0 < util <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(job_sequences())
def test_waiting_time_nonnegative(jobs):
    done = run_scheduler(jobs, N_PROCS, WFP3())
    assert average_waiting_time(done) >= -1e-9


@settings(max_examples=25, deadline=None)
@given(job_sequences(), st.sampled_from(SCHEDULERS))
def test_backfill_only_reorders_never_drops(jobs, scheduler):
    plain = run_scheduler(jobs, N_PROCS, scheduler, backfill=False)
    filled = run_scheduler(jobs, N_PROCS, scheduler, backfill=True)
    assert {j.job_id for j in plain} == {j.job_id for j in filled}


@settings(max_examples=25, deadline=None)
@given(job_sequences())
def test_single_proc_jobs_with_idle_cluster_never_wait(jobs):
    """If every job fits trivially and arrivals are spread out, the cluster
    can always start the FCFS head immediately once it's the only one."""
    # Rebuild with 1-proc requests: capacity 16 means <=16 concurrent.
    thin = [
        Job(job_id=j.job_id, submit_time=j.submit_time, run_time=1.0,
            requested_procs=1, requested_time=1.0)
        for j in jobs[:10]
    ]
    done = run_scheduler(thin, N_PROCS, FCFS())
    # With 1s runtimes and <=10 jobs on 16 procs, waits are bounded by the
    # drain of at most 10 jobs: never more than 10 seconds.
    assert all(j.start_time - j.submit_time <= 10.0 for j in done)
