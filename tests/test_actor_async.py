"""Contract tests for episode-granular async rollouts (PR-7 acceptance).

Four layers:

1. the golden property — ``rollout_mode="async"`` with ``staleness=0``
   trains *bit-identically* to the lock-step path, on the serial and
   process backends, for any worker count (no tolerances anywhere);
2. :class:`ActorRuntime` semantics — episode content is independent of
   the in-worker lock-step width / auto-reset backlog interleaving and
   of cross-worker arrival order; staleness stamping and the
   drop/reweight accounting that surfaces in :class:`EpochRecord`;
3. the backend ``post``/``next_result`` primitives the runtime rides on
   (FIFO order, error propagation, the drained-queue guard);
4. the satellite bugfix — a mid-epoch exception inside a ``Trainer``
   context must not leak worker processes.
"""

import multiprocessing

import numpy as np
import pytest

from repro.config import EnvConfig, PPOConfig, RuntimeConfig, TrainConfig
from repro.rl import Trainer
from repro.rl.buffer import TrajectoryBuffer
from repro.rl.trainer import EpochRecord
from repro.nn import ValueMLP, make_policy
from repro.runtime import ActorRuntime, WorkerError, make_backend
from repro.workloads import SequenceSampler, load_trace

SERIAL = RuntimeConfig()
PROCESS_2 = RuntimeConfig(backend="process", workers=2)
PROCESS_3 = RuntimeConfig(backend="process", workers=3)

ENV_CFG = EnvConfig(max_obsv_size=16)


@pytest.fixture(scope="module")
def trace():
    return load_trace("Lublin-1", n_jobs=600, seed=5)


def copy_sequences(sequences):
    return [[j.copy() for j in seq] for seq in sequences]


def make_trainer(trace, runtime, rollout_mode, staleness=0,
                 stale_mode="drop", epochs=2):
    return Trainer(
        trace,
        env_config=ENV_CFG,
        ppo_config=PPOConfig(train_pi_iters=8, train_v_iters=8),
        train_config=TrainConfig(
            epochs=epochs,
            trajectories_per_epoch=6,
            trajectory_length=18,
            seed=0,
            vectorized=True,
            n_envs=4,  # 6 trajectories over 4 envs: exercises auto-reset
            runtime=runtime,
            rollout_mode=rollout_mode,
            staleness=staleness,
            stale_mode=stale_mode,
        ),
    )


def train_run(trace, runtime, rollout_mode, **kwargs):
    epochs = kwargs.setdefault("epochs", 2)
    with make_trainer(trace, runtime, rollout_mode, **kwargs) as trainer:
        records = [trainer.run_epoch(e) for e in range(epochs)]
        weights = {k: v.copy() for k, v in trainer.policy.state_dict().items()}
        values = {k: v.copy() for k, v in trainer.value.state_dict().items()}
    return records, weights, values


def assert_records_equal(rec_a, rec_b):
    for a, b in zip(rec_a, rec_b):
        assert a.epoch == b.epoch
        assert a.mean_reward == b.mean_reward
        assert a.mean_metric == b.mean_metric
        assert a.n_rejected == b.n_rejected
        assert a.val_reward == b.val_reward
        assert a.n_stale_dropped == b.n_stale_dropped
        assert a.n_stale_reweighted == b.n_stale_reweighted
        assert a.stats.policy_loss == b.stats.policy_loss
        assert a.stats.value_loss == b.stats.value_loss
        assert a.stats.kl == b.stats.kl
        assert a.stats.entropy == b.stats.entropy
        assert a.stats.pi_iters_run == b.stats.pi_iters_run


class TestAsyncGolden:
    """The acceptance-criterion test: async(staleness=0) == locked."""

    @pytest.mark.parametrize("runtime", [SERIAL, PROCESS_2, PROCESS_3],
                             ids=["serial", "process2", "process3"])
    def test_staleness_zero_identical_to_locked(self, trace, runtime):
        rec_l, w_l, v_l = train_run(trace, SERIAL, "locked")
        rec_a, w_a, v_a = train_run(trace, runtime, "async")
        assert_records_equal(rec_l, rec_a)
        for key in w_l:
            np.testing.assert_array_equal(w_l[key], w_a[key])
        for key in v_l:
            np.testing.assert_array_equal(v_l[key], v_a[key])

    def test_nonzero_staleness_trains(self, trace):
        """The prefetch window runs and every epoch stays well-formed."""
        records, _, _ = train_run(trace, PROCESS_2, "async",
                                  staleness=1, epochs=3)
        for r in records:
            assert np.isfinite(r.mean_reward)
            assert np.isfinite(r.val_reward)
            assert r.n_stale_dropped == 0  # within the declared bound
            assert r.stats.pi_iters_run > 0


class TestActorRuntime:
    """Direct driving of the actor pool, no trainer in the loop."""

    def collect(self, trace, sequences, runtime, n_envs, policy, value,
                epoch=0):
        actors = ActorRuntime(
            trace.max_procs, "bsld", config=ENV_CFG, runtime=runtime,
            n_envs=n_envs, seed=0,
        )
        with actors:
            actors.install(policy, value)
            actors.submit(epoch, list(enumerate(copy_sequences(sequences))))
            episodes = [actors.drain() for _ in range(len(sequences))]
        return {ep.traj: ep for ep in episodes}

    @pytest.fixture(scope="class")
    def networks(self):
        m, f = ENV_CFG.observation_shape
        return make_policy("kernel", m, f, seed=0), ValueMLP(m, f, seed=1)

    @pytest.fixture(scope="class")
    def sequences(self, trace):
        return SequenceSampler(trace, 18, seed=3).sample_many(6)

    def test_width_and_arrival_order_invariance(self, trace, sequences,
                                                networks):
        """Six episodes through width-1, width-4 (auto-reset backlog), and
        a two-worker pool (out-of-order cross-worker arrival) are
        bit-identical episode for episode."""
        policy, value = networks
        ref = self.collect(trace, sequences, SERIAL, 1, policy, value)
        assert sorted(ref) == list(range(6))
        for runtime, width in [(SERIAL, 4), (PROCESS_2, 2), (PROCESS_3, 4)]:
            got = self.collect(trace, sequences, runtime, width,
                               policy, value)
            assert sorted(got) == sorted(ref)
            for traj, ep in got.items():
                np.testing.assert_array_equal(ep.obs, ref[traj].obs)
                np.testing.assert_array_equal(ep.masks, ref[traj].masks)
                np.testing.assert_array_equal(ep.actions, ref[traj].actions)
                np.testing.assert_array_equal(ep.log_probs,
                                              ref[traj].log_probs)
                np.testing.assert_array_equal(ep.values, ref[traj].values)
                assert ep.reward == ref[traj].reward
                assert ep.steps == ref[traj].steps

    def test_staleness_stamped_at_drain(self, trace, sequences, networks):
        """Episodes submitted before weight pushes run at the old version
        (per-worker FIFO) and drain with the version gap stamped."""
        policy, value = networks
        actors = ActorRuntime(trace.max_procs, "bsld", config=ENV_CFG,
                              runtime=PROCESS_2, n_envs=2, seed=0)
        with actors:
            actors.install(policy, value, version=0)
            actors.submit(0, list(enumerate(copy_sequences(sequences[:2]))))
            snapshot = {"policy": policy.state_dict(),
                        "value": value.state_dict()}
            actors.push_weights(1, snapshot)
            actors.push_weights(2, snapshot)
            stale = [actors.drain() for _ in range(2)]
            # same weights re-pushed: content identical, version stamp old
            assert all(ep.version == 0 and ep.staleness == 2 for ep in stale)
            actors.submit(1, list(enumerate(copy_sequences(sequences[:1]))))
            fresh = actors.drain()
            assert fresh.version == 2 and fresh.staleness == 0

    def test_contract_errors(self, trace, sequences, networks):
        policy, value = networks
        with pytest.raises(ValueError):
            ActorRuntime(trace.max_procs, "bsld", config=ENV_CFG, n_envs=0)
        actors = ActorRuntime(trace.max_procs, "bsld", config=ENV_CFG,
                              n_envs=2)
        with actors:
            with pytest.raises(RuntimeError, match="install"):
                actors.submit(0, list(enumerate(sequences[:1])))
            actors.install(policy, value, version=3)
            with pytest.raises(RuntimeError, match="installed"):
                actors.install(policy, value)
            with pytest.raises(ValueError, match="decrease"):
                actors.push_weights(2, {"policy": policy.state_dict(),
                                        "value": value.state_dict()})
            with pytest.raises(RuntimeError, match="in flight"):
                actors.drain()


class TestTrainerStaleness:
    """Drop/reweight accounting surfaces in the training curve."""

    def force_stale_epoch(self, trace, stale_mode):
        with make_trainer(trace, SERIAL, "async", staleness=0,
                          stale_mode=stale_mode, epochs=1) as t:
            # Submit epoch 0 (episodes run at version 0), then advance the
            # learner two updates before collecting: every episode is now
            # 2 stale, past the staleness=0 bound.
            t._submit_epoch(0)
            t._n_updates = 2
            t.actor_runtime.push_weights(2, t.agent.export_weights())
            return t.run_epoch(0), t._n_updates

    def test_drop_mode_records_and_skips_update(self, trace):
        record, n_updates = self.force_stale_epoch(trace, "drop")
        assert record.n_stale_dropped == 6
        assert record.n_stale_reweighted == 0
        # nothing left to update on: a no-op epoch, version stays put
        assert record.stats.pi_iters_run == 0
        assert np.isnan(record.stats.policy_loss)
        assert n_updates == 2
        # the mean rollout reward is still reported for the curve
        assert np.isfinite(record.mean_reward)

    def test_reweight_mode_keeps_episodes(self, trace):
        record, n_updates = self.force_stale_epoch(trace, "reweight")
        assert record.n_stale_reweighted == 6
        assert record.n_stale_dropped == 0
        assert record.stats.pi_iters_run > 0
        assert np.isfinite(record.stats.policy_loss)
        assert n_updates == 3  # the update ran, weights were re-pushed

    def test_epoch_record_roundtrip_with_staleness_fields(self):
        rec = EpochRecord(
            epoch=0, mean_metric=1.0, mean_reward=-1.0,
            stats=__import__("repro.rl.ppo", fromlist=["UpdateStats"])
            .UpdateStats(policy_loss=0.1, value_loss=0.2, kl=0.0,
                         entropy=1.0, pi_iters_run=8, early_stopped=False),
            n_rejected=0, wall_time=0.5, filtered_phase=False,
            val_reward=-2.0, n_stale_dropped=3, n_stale_reweighted=1,
        )
        got = EpochRecord.from_dict(rec.to_dict())
        assert got == rec

    def test_epoch_record_loads_pre_async_dicts(self):
        """Checkpoints written before the staleness fields existed load
        with zero counts."""
        rec = EpochRecord(
            epoch=0, mean_metric=1.0, mean_reward=-1.0,
            stats=__import__("repro.rl.ppo", fromlist=["UpdateStats"])
            .UpdateStats(policy_loss=0.1, value_loss=0.2, kl=0.0,
                         entropy=1.0, pi_iters_run=8, early_stopped=False),
            n_rejected=0, wall_time=0.5, filtered_phase=False,
        )
        data = rec.to_dict()
        del data["n_stale_dropped"], data["n_stale_reweighted"]
        got = EpochRecord.from_dict(data)
        assert got.n_stale_dropped == 0 and got.n_stale_reweighted == 0


# ----------------------------------------------------------------------
# backend post/next_result primitives
# ----------------------------------------------------------------------
def _remember(state, value):
    state.setdefault("log", []).append(value)
    return value


def _recall(state):
    return list(state.get("log", []))


def _boom(state):
    raise ValueError("boom")


def _unpicklable(state):
    return lambda: None


class TestBackendAsyncPrimitives:
    @pytest.mark.parametrize("runtime", [SERIAL, PROCESS_2],
                             ids=["serial", "process2"])
    def test_fifo_per_worker(self, runtime):
        with make_backend(runtime) as backend:
            for i in range(3):
                for w in range(backend.n_workers):
                    backend.post(w, _remember, (w, i))
            assert backend.n_pending == 3 * backend.n_workers
            seen = {w: [] for w in range(backend.n_workers)}
            while backend.n_pending:
                worker, result = backend.next_result()
                seen[worker].append(result)
            for w, results in seen.items():
                assert results == [(w, i) for i in range(3)]
            # posted work mutated persistent worker state, and the sync
            # dispatch path is usable again once the queue is drained
            logs = backend.broadcast(_recall)
            assert logs == [[(w, i) for i in range(3)]
                            for w in range(backend.n_workers)]

    @pytest.mark.parametrize("runtime", [SERIAL, PROCESS_2],
                             ids=["serial", "process2"])
    def test_error_propagates_with_worker_id(self, runtime):
        with make_backend(runtime) as backend:
            backend.post(backend.n_workers - 1, _boom)
            with pytest.raises(WorkerError, match="boom") as err:
                # serial backends surface the error at post time already —
                # both paths funnel through next_result
                backend.next_result()
            assert err.value.worker_id == backend.n_workers - 1

    def test_sync_dispatch_refused_while_pending(self):
        with make_backend(PROCESS_2) as backend:
            backend.post(0, _remember, 1)
            with pytest.raises(RuntimeError, match="pending"):
                backend.scatter(_recall, [(), ()])
            with pytest.raises(RuntimeError, match="pending"):
                backend.map(_recall, [()])
            backend.next_result()
            assert backend.scatter(_recall, [(), ()]) is not None

    def test_unpicklable_result_is_a_worker_error(self):
        with make_backend(PROCESS_2) as backend:
            backend.post(1, _unpicklable)
            with pytest.raises(WorkerError, match="unpicklable"):
                backend.next_result()


class TestNoLeakedWorkers:
    """Satellite bugfix: a mid-epoch exception inside the Trainer context
    must tear down actor worker processes, not leak them."""

    def test_exception_mid_training_leaves_no_children(self, trace):
        with pytest.raises(RuntimeError, match="sentinel"):
            with make_trainer(trace, PROCESS_2, "async", epochs=2) as t:
                t.run_epoch(0)
                assert t.actor_runtime.backend.started
                raise RuntimeError("sentinel")
        for proc in multiprocessing.active_children():
            proc.join(timeout=10)
        assert multiprocessing.active_children() == []
