"""Tests for the serving layer: wire protocol, per-tenant service,
multi-tenant router, asyncio socket daemon, load generator, and graceful
shutdown (the SIGTERM subprocess test mirrors ``TestNoLeakedWorkers``)."""

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.config import EnvConfig, ServeConfig, TenantConfig
from repro.nn import KernelPolicy
from repro.schedulers import RLSchedulerPolicy
from repro.serve import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    SchedulerRouter,
    SchedulerService,
    ServeClient,
    ServeDaemon,
    ServeError,
    ServiceError,
    job_from_wire,
    job_to_wire,
    replay_swf,
    run_closed_loop,
    trace_jobs,
)
from repro.serve.protocol import decode, encode, error_response, ok_response
from repro.workloads import Job, SWFTrace, load_trace, write_swf


def wire_job(jid, run=10.0, procs=1, **extra):
    payload = {"job_id": jid, "run_time": run, "requested_procs": procs}
    payload.update(extra)
    return payload


@pytest.fixture(scope="module")
def trace():
    return load_trace("Lublin-1", n_jobs=200, seed=3)


@pytest.fixture(scope="module")
def policy_path(tmp_path_factory):
    env_config = EnvConfig(max_obsv_size=16)
    policy = KernelPolicy(env_config.job_features, seed=0)
    sched = RLSchedulerPolicy(policy, n_procs=64, env_config=env_config)
    path = tmp_path_factory.mktemp("policy") / "policy.npz"
    sched.save(str(path))
    return str(path)


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_round_trip(self):
        msg = {"v": PROTOCOL_VERSION, "op": "submit", "job": wire_job(7)}
        line = encode(msg)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert decode(line) == msg

    def test_decode_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")

    def test_decode_rejects_wrong_version(self):
        with pytest.raises(ProtocolError, match="version"):
            decode(encode({"v": 99, "op": "ping"}))
        with pytest.raises(ProtocolError, match="version"):
            decode(b'{"op": "ping"}\n')

    def test_decode_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="op"):
            decode(encode({"v": PROTOCOL_VERSION, "op": "reboot"}))

    def test_every_op_is_known(self):
        assert set(OPS) == {"submit", "status", "stats", "advance",
                            "drain", "ping"}

    def test_responses_carry_version_and_ok(self):
        assert ok_response(x=1) == {"v": PROTOCOL_VERSION, "ok": True, "x": 1}
        err = error_response("boom")
        assert err["ok"] is False and err["error"] == "boom"

    def test_job_from_wire_requires_core_fields(self):
        for missing in ("job_id", "run_time", "requested_procs"):
            payload = wire_job(1)
            del payload[missing]
            with pytest.raises(ProtocolError, match=missing):
                job_from_wire(payload)

    def test_job_from_wire_defaults(self):
        job = job_from_wire(wire_job(3, run=25.0, procs=4))
        assert job.job_id == 3
        assert job.submit_time == 0.0
        assert job.requested_time == 25.0  # defaults to run_time

    def test_job_from_wire_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="priority"):
            job_from_wire(wire_job(1, priority=99))

    def test_job_round_trip(self):
        job = Job(job_id=11, submit_time=5.0, run_time=30.0,
                  requested_procs=8, requested_time=40.0)
        assert job_from_wire(job_to_wire(job)) == job


# ---------------------------------------------------------------------------
# per-tenant service
# ---------------------------------------------------------------------------
class TestSchedulerService:
    def make(self, **overrides):
        defaults = dict(name="t", scheduler="FCFS", n_procs=8)
        defaults.update(overrides)
        return SchedulerService(TenantConfig(**defaults))

    def test_submit_starts_fitting_job(self):
        svc = self.make()
        out = svc.submit(wire_job(1, procs=4))
        assert out["state"] == "running"
        assert out["decisions"] == 1

    def test_submit_rejects_oversized_job(self):
        svc = self.make()
        with pytest.raises(ServiceError, match="requests 16 procs"):
            svc.submit(wire_job(1, procs=16))

    def test_submit_rejects_duplicate_id(self):
        svc = self.make()
        svc.submit(wire_job(1))
        with pytest.raises(ServiceError, match="already known"):
            svc.submit(wire_job(1))

    def test_status_tracks_lifecycle(self):
        svc = self.make()
        svc.submit(wire_job(1, run=10.0, procs=8))
        svc.submit(wire_job(2, run=5.0, procs=8, submit_time=1.0))
        assert svc.status(1)["job"]["state"] == "running"
        assert svc.status(2)["job"]["state"] == "pending"
        svc.advance(100.0)
        record = svc.status(2)["job"]
        assert record["state"] == "finished"
        assert record["start_time"] == 10.0
        assert record["wait_time"] == pytest.approx(9.0)

    def test_status_unknown_job(self):
        svc = self.make()
        with pytest.raises(ServiceError, match="unknown job 9"):
            svc.status(9)
        with pytest.raises(ServiceError, match="integer job_id"):
            svc.status("abc")

    def test_drain_reports_delta_not_cumulative(self):
        svc = self.make()
        svc.submit(wire_job(1, procs=8))   # starts: decision 1
        svc.submit(wire_job(2, procs=8))   # selected, stalls: decision 2
        svc.submit(wire_job(3, procs=8))   # queued behind the stall
        out = svc.drain()                  # resumes 2, then selects 3
        assert out["decisions"] == 1       # only job 3's commit is new
        assert svc.stats()["decisions"] == 3   # cumulative
        assert svc.engine.idle

    def test_advance_validates_until(self):
        svc = self.make()
        with pytest.raises(ServiceError, match="numeric"):
            svc.advance("soon")
        with pytest.raises(ServiceError, match="numeric"):
            svc.advance(float("nan"))

    def test_stats_shape(self):
        svc = self.make()
        svc.submit(wire_job(1))
        stats = svc.stats()
        assert stats["tenant"] == "t"
        assert stats["scheduler"] == "FCFS"
        assert stats["submitted"] == 1 and stats["started"] == 1
        lat = stats["decision_latency_sec"]
        assert lat["count"] == 1
        assert lat["p50"] > 0 and lat["p99"] >= lat["p50"]

    def test_finished_history_is_capped(self):
        svc = SchedulerService(
            TenantConfig(name="t", n_procs=8), completed_history=5
        )
        for jid in range(12):
            svc.submit(wire_job(jid, run=1.0, procs=8))
        svc.drain()
        assert svc.n_finished == 12
        assert len(svc._finished) == 5
        with pytest.raises(ServiceError, match="unknown job 0"):
            svc.status(0)  # evicted from history
        assert svc.status(11)["job"]["state"] == "finished"

    def test_forget_jobs_called_on_completion(self):
        svc = self.make()
        forgotten = []
        svc.policy.forget_jobs = forgotten.extend  # duck-typed hook
        svc.submit(wire_job(1, run=3.0))
        svc.submit(wire_job(2, run=3.0))
        svc.drain()
        assert sorted(forgotten) == [1, 2]


class TestServiceWithRLPolicy:
    def test_policy_tenant_decides_and_evicts(self, policy_path):
        svc = SchedulerService(TenantConfig(
            name="rl", n_procs=64, policy_path=policy_path
        ))
        assert svc.policy.name == "RL:rl"
        for jid in range(20):
            svc.submit(wire_job(jid, run=5.0, procs=4))
        svc.drain()
        assert svc.n_finished == 20
        # departed jobs left the deploy feature cache (satellite 1 wiring)
        cache = svc.policy._cache
        assert cache is None or cache.size == 0

    def test_policy_is_retargeted_to_tenant_cluster(self, policy_path):
        svc = SchedulerService(TenantConfig(
            name="big", n_procs=128, policy_path=policy_path
        ))
        assert svc.policy.n_procs == 128


# ---------------------------------------------------------------------------
# multi-tenant router
# ---------------------------------------------------------------------------
def make_router(*tenants):
    tenants = tenants or (TenantConfig(name="a", n_procs=8),
                          TenantConfig(name="b", scheduler="SJF", n_procs=4))
    return SchedulerRouter(ServeConfig(port=0, tenants=tuple(tenants)))


def msg(op, **fields):
    out = {"v": PROTOCOL_VERSION, "op": op}
    out.update(fields)
    return out


class TestSchedulerRouter:
    def test_single_tenant_is_implicit(self):
        router = make_router(TenantConfig(name="only", n_procs=8))
        out = router.dispatch(msg("submit", job=wire_job(1)))
        assert out["ok"] and out["state"] == "running"

    def test_default_tenant_is_implicit(self):
        router = make_router(TenantConfig(name="default", n_procs=8),
                             TenantConfig(name="other", n_procs=8))
        out = router.dispatch(msg("submit", job=wire_job(1)))
        assert router.services["default"].engine.n_submitted == 1
        assert router.services["other"].engine.n_submitted == 0
        assert out["ok"]

    def test_ambiguous_tenant_must_be_named(self):
        with pytest.raises(ServiceError, match="must name a tenant"):
            make_router().dispatch(msg("submit", job=wire_job(1)))

    def test_unknown_tenant(self):
        with pytest.raises(ServiceError, match="unknown tenant 'zz'"):
            make_router().dispatch(msg("stats", tenant="zz"))

    def test_tenant_isolation(self):
        router = make_router()
        router.dispatch(msg("submit", tenant="a", job=wire_job(1)))
        router.dispatch(msg("submit", tenant="b", job=wire_job(1)))
        assert router.services["a"].engine.n_submitted == 1
        assert router.services["b"].engine.n_submitted == 1

    def test_missing_operands_are_protocol_errors(self):
        router = make_router()
        with pytest.raises(ProtocolError, match="'job'"):
            router.dispatch(msg("submit", tenant="a"))
        with pytest.raises(ProtocolError, match="'job_id'"):
            router.dispatch(msg("status", tenant="a"))
        with pytest.raises(ProtocolError, match="'until'"):
            router.dispatch(msg("advance", tenant="a"))
        with pytest.raises(ProtocolError, match="tenant must be a string"):
            router.dispatch(msg("stats", tenant=7))

    def test_stats_without_tenant_reports_all(self):
        out = make_router().dispatch(msg("stats"))
        assert set(out["tenants"]) == {"a", "b"}

    def test_drain_without_tenant_drains_all_and_echoes_stop(self):
        router = make_router()
        router.dispatch(msg("submit", tenant="a", job=wire_job(1)))
        out = router.dispatch(msg("drain", stop=True))
        assert out["stop"] is True
        assert set(out["tenants"]) == {"a", "b"}
        assert all(s.engine.idle for s in router.services.values())

    def test_ping_lists_tenants(self):
        out = make_router().dispatch(msg("ping"))
        assert out["tenants"] == ["a", "b"]


# ---------------------------------------------------------------------------
# live socket daemon (in-process, ephemeral port)
# ---------------------------------------------------------------------------
@pytest.fixture()
def live_server():
    config = ServeConfig(port=0, tenants=(
        TenantConfig(name="alpha", scheduler="FCFS", n_procs=64,
                     backfill="easy"),
        TenantConfig(name="beta", scheduler="SJF", n_procs=32),
    ))
    daemon = ServeDaemon(config)
    result = {}

    def run():
        result["rc"] = asyncio.run(daemon.run_async())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 15
    while daemon.address is None and time.monotonic() < deadline:
        if not thread.is_alive():
            raise RuntimeError("daemon thread died before binding")
        time.sleep(0.01)
    assert daemon.address is not None, "daemon never bound"
    yield daemon
    if thread.is_alive():
        try:
            with ServeClient(*daemon.address) as client:
                client.drain(stop=True)
        except ServeError:
            pass  # test already stopped it
    thread.join(timeout=15)
    assert not thread.is_alive()
    assert result.get("rc") == 0  # graceful exit


class TestLiveServer:
    def test_request_response_over_socket(self, live_server):
        host, port = live_server.address
        with ServeClient(host, port) as client:
            assert client.ping()["tenants"] == ["alpha", "beta"]
            out = client.submit(wire_job(1, run=30.0, procs=16),
                                tenant="alpha")
            assert out["state"] == "running"
            assert client.status(1, tenant="alpha")["job"]["state"] == "running"
            out = client.advance(100.0, tenant="alpha")
            assert out["now"] == 30.0
            assert client.stats(tenant="alpha")["finished"] == 1

    def test_bad_requests_do_not_kill_the_connection(self, live_server):
        host, port = live_server.address
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="unknown tenant"):
                client.stats(tenant="nope")
            with pytest.raises(ServeError, match="version"):
                client.request("submit", v=99)  # overridden version field
            # same connection still serves good requests
            assert client.ping()["ok"]

    def test_submit_job_object(self, live_server, trace):
        host, port = live_server.address
        job = trace_jobs(trace, 1, seed=9, max_procs=32)[0]
        with ServeClient(host, port) as client:
            out = client.submit(job, tenant="beta")
            assert out["job"]["job_id"] == job.job_id

    def test_drain_stop_shuts_daemon_down(self, live_server):
        host, port = live_server.address
        with ServeClient(host, port) as client:
            out = client.drain(stop=True)
            assert out["stop"] is True
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                ServeClient(host, port, timeout=1.0).close()
                time.sleep(0.05)
            except ServeError:
                break  # listener gone
        else:
            pytest.fail("daemon kept listening after drain stop")


class TestLoadGenerator:
    def test_trace_jobs_clamps_and_sorts(self, trace):
        jobs = trace_jobs(trace, 50, seed=1, max_procs=32)
        assert len(jobs) == 50
        assert max(j.requested_procs for j in jobs) <= 32
        keys = [(j.submit_time, j.job_id) for j in jobs]
        assert keys == sorted(keys)

    def test_closed_loop_two_tenants(self, live_server, trace):
        host, port = live_server.address
        jobs = {"alpha": trace_jobs(trace, 30, seed=1, max_procs=64),
                "beta": trace_jobs(trace, 30, seed=2, max_procs=32)}
        report = run_closed_loop(host, port, jobs)
        assert report["requests"] == 60
        assert report["requests_per_sec"] > 0
        assert report["request_latency_sec"]["p99"] > 0
        assert report["decision_latency_sec"]["p99"] > 0
        # every job decided exactly once per commit; totals reconcile
        assert report["decisions"] == sum(
            t["decisions"] for t in report["per_tenant"].values()
        )
        for name in ("alpha", "beta"):
            assert report["tenants"][name]["finished"] == 30
            assert report["tenants"][name]["pending"] == 0

    def test_replay_swf_shares_the_wire(self, live_server, trace, tmp_path):
        host, port = live_server.address
        path = tmp_path / "stream.swf"
        stream = SWFTrace(jobs=trace_jobs(trace, 20, seed=4, max_procs=32))
        write_swf(stream, str(path))
        with ServeClient(host, port) as client:
            summary = replay_swf(client, str(path), tenant="beta")
        assert summary["submitted"] == 20
        assert summary["stats"]["finished"] == 20


# ---------------------------------------------------------------------------
# graceful shutdown (subprocess; mirrors TestNoLeakedWorkers)
# ---------------------------------------------------------------------------
class TestGracefulShutdown:
    """SIGTERM must finish in-flight work, drain every tenant, flush the
    telemetry sink, and exit 0."""

    def start_daemon(self, tmp_path, *tenant_args):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             *tenant_args, "--telemetry", str(tmp_path / "serve.jsonl")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        line = proc.stdout.readline()
        match = re.match(r"repro-serve listening on (\S+):(\d+)", line)
        assert match, f"no readiness line, got {line!r}"
        return proc, match.group(1), int(match.group(2))

    def test_sigterm_drains_flushes_and_exits_zero(self, tmp_path):
        proc, host, port = self.start_daemon(
            tmp_path, "--tenant", "alpha:FCFS:16:easy", "--tenant",
            "beta:SJF:8",
        )
        try:
            with ServeClient(host, port) as client:
                client.submit(wire_job(1, run=50.0, procs=16), tenant="alpha")
                client.submit(wire_job(2, run=10.0, procs=8), tenant="alpha")
                client.submit(wire_job(3, run=5.0, procs=8), tenant="beta")
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert rc == 0, proc.stderr.read()

        # the sink was flushed and is schema-valid
        from repro.telemetry.sink import validate_jsonl
        stats = validate_jsonl(str(tmp_path / "serve.jsonl"))
        assert stats["events"]["snapshot"] == 1
        snapshot = stats["snapshot"]
        counters = snapshot["counters"]
        # SIGTERM arrived with job 2 still queued behind job 1: the drain
        # made that decision after the signal, and the flush recorded it
        assert counters["serve.decisions{tenant=alpha}"] == 2
        assert counters["serve.decisions{tenant=beta}"] == 1
        assert counters["serve.requests"] == 3
        assert "serve.request_latency_sec" in snapshot["histograms"]
        assert "serve.decision_latency_sec{tenant=alpha}" in snapshot["histograms"]

    def test_drain_stop_request_also_exits_zero(self, tmp_path):
        proc, host, port = self.start_daemon(tmp_path, "--tenant",
                                             "solo:FCFS:8")
        try:
            with ServeClient(host, port) as client:
                client.submit(wire_job(1, run=5.0), tenant="solo")
                out = client.drain(tenant="solo", stop=True)
                assert out["stop"] is True
            rc = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert rc == 0, proc.stderr.read()
