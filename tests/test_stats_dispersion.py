"""Unit tests for windowed dispersion and remaining stats corners."""

import numpy as np
import pytest

from repro.workloads import Job
from repro.workloads.stats import characterize, windowed_dispersion

from .conftest import make_trace


def poisson_trace(n=2000, mean_gap=100.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.exponential(mean_gap, size=n))
    jobs = [Job(job_id=i + 1, submit_time=float(ti), run_time=10.0,
                requested_procs=1) for i, ti in enumerate(t)]
    return make_trace(jobs, 8)


class TestWindowedDispersion:
    def test_poisson_near_one(self):
        d = windowed_dispersion(poisson_trace())
        assert 0.5 < d < 2.0

    def test_bursty_far_above_one(self):
        # deterministic clumps: 50 jobs at the same instant, every 10_000 s
        jobs = []
        jid = 1
        for clump in range(40):
            for k in range(50):
                jobs.append(Job(job_id=jid, submit_time=clump * 10_000.0 + k * 1e-3,
                                run_time=10.0, requested_procs=1))
                jid += 1
        d = windowed_dispersion(make_trace(jobs, 8), window=1000.0)
        assert d > 10.0

    def test_needs_enough_jobs(self):
        with pytest.raises(ValueError, match="at least 10"):
            windowed_dispersion(poisson_trace(n=5))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            windowed_dispersion(poisson_trace(), window=0.0)

    def test_explicit_window_used(self):
        t = poisson_trace()
        d_small = windowed_dispersion(t, window=50.0)
        d_large = windowed_dispersion(t, window=50_000.0)
        assert d_small != d_large  # different aggregation scales


class TestCharacterizeEdge:
    def test_zero_variance_gaps(self):
        jobs = [Job(job_id=i + 1, submit_time=float(i * 10), run_time=5.0,
                    requested_procs=2) for i in range(20)]
        stats = characterize(make_trace(jobs, 8))
        assert stats.interarrival_cv == 0.0
        assert stats.burstiness == -1.0  # perfectly regular arrivals

    def test_single_user_top_share(self):
        jobs = [Job(job_id=i + 1, submit_time=float(i), run_time=1.0,
                    requested_procs=1, user_id=7) for i in range(10)]
        stats = characterize(make_trace(jobs, 8))
        assert stats.top_user_share == 1.0
        assert stats.n_users == 1
