"""Unit tests for the SWF parser/writer: directives, records, round-trips."""

import pytest

from repro.workloads import (
    Job,
    SWFHeader,
    SWFTrace,
    load_trace,
    parse_swf,
    read_swf,
    write_swf,
)

SAMPLE = """\
; MaxProcs: 128
; MaxNodes: 64
; UnixStartTime: 1000000
; Note: synthetic sample
1 0 -1 100 4 -1 -1 4 120 -1 1 7 2 3 1 1 -1 -1
2 10 -1 50 2 -1 -1 2 60 -1 1 8 2 3 1 1 -1 -1
3 20 -1 0 -1 -1 -1 -1 30 -1 0 9 2 3 1 1 -1 -1
"""


class TestParse:
    def test_header_directives(self):
        trace = parse_swf(SAMPLE)
        assert trace.header.max_procs == 128
        assert trace.header.max_nodes == 64
        assert trace.header.unix_start_time == 1000000
        assert trace.header.extra["Note"] == "synthetic sample"

    def test_parses_valid_records(self):
        trace = parse_swf(SAMPLE)
        # job 3 has requested_procs=-1 and used_procs=-1: dropped.
        assert len(trace) == 2
        j = trace[0]
        assert j.job_id == 1
        assert j.run_time == 100.0
        assert j.requested_procs == 4
        assert j.requested_time == 120.0
        assert j.user_id == 7

    def test_fallback_to_used_procs(self):
        text = "5 0 -1 10 8 -1 -1 -1 20 -1 1 1 1 1 1 1 -1 -1\n"
        trace = parse_swf(text)
        assert len(trace) == 1
        assert trace[0].requested_procs == 8  # fell back to used_procs

    def test_rejects_short_records(self):
        with pytest.raises(ValueError, match="18 fields"):
            parse_swf("1 2 3\n")

    def test_sorts_by_submit_time(self):
        text = (
            "2 50 -1 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1\n"
            "1 10 -1 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1\n"
        )
        trace = parse_swf(text)
        assert [j.job_id for j in trace] == [1, 2]

    def test_max_procs_falls_back_to_largest_job(self):
        text = "1 0 -1 10 1 -1 -1 96 20 -1 1 1 1 1 1 1 -1 -1\n"
        trace = parse_swf(text)
        assert trace.max_procs == 96

    def test_empty_input(self):
        trace = parse_swf("")
        assert len(trace) == 0


class TestTraceContainer:
    def test_slicing_returns_trace(self):
        trace = parse_swf(SAMPLE)
        head = trace.head(1)
        assert isinstance(head, SWFTrace)
        assert len(head) == 1
        assert head.header.max_procs == 128

    def test_iteration(self):
        trace = parse_swf(SAMPLE)
        assert [j.job_id for j in trace] == [1, 2]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        trace = parse_swf(SAMPLE, name="sample")
        path = tmp_path / "sample.swf"
        write_swf(trace, path)
        back = read_swf(path)
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a.job_id == b.job_id
            assert a.submit_time == b.submit_time
            assert a.run_time == b.run_time
            assert a.requested_procs == b.requested_procs
            assert a.user_id == b.user_id
        assert back.header.max_procs == 128

    def test_generated_trace_round_trips(self, tmp_path, lublin_trace):
        path = tmp_path / "lublin.swf"
        write_swf(lublin_trace.head(100), path)
        back = read_swf(path)
        assert len(back) == 100
        assert back.max_procs == lublin_trace.max_procs

    def test_load_trace_prefers_real_swf_file(self, tmp_path):
        trace = parse_swf(SAMPLE, name="SDSC-SP2")
        write_swf(trace, tmp_path / "SDSC-SP2.swf")
        loaded = load_trace("SDSC-SP2", n_jobs=10, swf_dir=tmp_path)
        # the real (sample) file has 2 usable jobs, not 10 synthetic ones
        assert len(loaded) == 2
