"""Unit tests for EASY backfilling: shadow time, extra procs, candidate rules."""

import pytest

from repro.sim import Cluster, backfill_candidates, shadow_time_and_extra
from repro.workloads import Job


def job(jid, procs, req_time, submit=0.0, run=None):
    return Job(
        job_id=jid,
        submit_time=submit,
        run_time=run if run is not None else req_time,
        requested_procs=procs,
        requested_time=req_time,
    )


def running_job(jid, procs, req_time, start):
    j = job(jid, procs, req_time)
    j.start_time = start
    return j


class TestShadowTime:
    def test_immediate_fit_returns_now(self):
        c = Cluster(8)
        head = job(1, 4, 100)
        shadow, extra = shadow_time_and_extra(head, [], c, now=50.0)
        assert shadow == 50.0
        assert extra == 4

    def test_shadow_is_earliest_sufficient_release(self):
        c = Cluster(8)
        r1 = running_job(1, 4, req_time=100, start=0.0)   # releases at 100
        r2 = running_job(2, 4, req_time=200, start=0.0)   # releases at 200
        c.allocate(r1)
        c.allocate(r2)
        head = job(3, 6, 50)
        shadow, extra = shadow_time_and_extra(head, [r1, r2], c, now=10.0)
        # at t=100 only 4 free; at t=200, 8 free >= 6
        assert shadow == 200.0
        assert extra == 2

    def test_uses_requested_not_actual_runtime(self):
        """Planning must rely on the user estimate only."""
        c = Cluster(4)
        r = running_job(1, 4, req_time=500, start=0.0)
        r.run_time = 50.0  # actually finishes much earlier — invisible
        c.allocate(r)
        head = job(2, 4, 10)
        shadow, _ = shadow_time_and_extra(head, [r], c, now=0.0)
        assert shadow == 500.0

    def test_release_in_past_clamped_to_now(self):
        c = Cluster(4)
        r = running_job(1, 4, req_time=10, start=0.0)  # estimate expired
        c.allocate(r)
        head = job(2, 4, 10)
        shadow, _ = shadow_time_and_extra(head, [r], c, now=100.0)
        assert shadow == 100.0

    def test_impossible_head_raises(self):
        c = Cluster(4)
        head = job(1, 4, 10)
        c2 = Cluster(4)
        blocker = running_job(2, 2, req_time=100, start=0.0)
        c2.allocate(blocker)
        # head needs 4; running releases only 2+2(free)=4 -> fits eventually
        shadow, _ = shadow_time_and_extra(head, [blocker], c2, now=0.0)
        assert shadow == 100.0


class TestCandidates:
    def _setup(self):
        """8-proc cluster; 6 busy until t=100 (requested); head needs 8."""
        c = Cluster(8)
        r = running_job(1, 6, req_time=100, start=0.0)
        c.allocate(r)
        head = job(2, 8, 50, submit=1.0)
        return c, r, head

    def test_short_job_backfills(self):
        c, r, head = self._setup()
        # 2 procs free; candidate fits and ends (t=0+90) before shadow (100)
        cand = job(3, 2, 90, submit=2.0)
        chosen = backfill_candidates(head, [head, cand], [r], c, now=0.0)
        assert chosen == [cand]

    def test_long_narrow_job_blocked_without_extra(self):
        c, r, head = self._setup()
        # candidate would end at 150 > shadow 100, and head takes all 8
        # procs at shadow => extra = 0: not allowed.
        cand = job(3, 2, 150, submit=2.0)
        chosen = backfill_candidates(head, [head, cand], [r], c, now=0.0)
        assert chosen == []

    def test_long_job_allowed_within_extra(self):
        c = Cluster(8)
        r = running_job(1, 6, req_time=100, start=0.0)
        c.allocate(r)
        head = job(2, 4, 50, submit=1.0)  # at shadow 100: 8 free, extra=4
        cand = job(3, 2, 1000, submit=2.0)  # overruns shadow but procs <= extra
        chosen = backfill_candidates(head, [head, cand], [r], c, now=0.0)
        assert chosen == [cand]

    def test_extra_budget_consumed_in_order(self):
        c = Cluster(8)
        r = running_job(1, 6, req_time=100, start=0.0)
        c.allocate(r)
        head = job(2, 4, 50, submit=1.0)  # extra = 4 at shadow... but only 2 free now
        c1 = job(3, 2, 1000, submit=2.0)  # takes the 2 free + consumes extra
        c2 = job(4, 2, 1000, submit=3.0)  # no free procs left now
        chosen = backfill_candidates(head, [head, c1, c2], [r], c, now=0.0)
        assert chosen == [c1]

    def test_candidates_fcfs_order(self):
        c = Cluster(8)
        r = running_job(1, 4, req_time=100, start=0.0)
        c.allocate(r)
        head = job(2, 8, 50, submit=1.0)
        early = job(3, 2, 50, submit=5.0)
        earlier = job(4, 2, 50, submit=2.0)
        chosen = backfill_candidates(head, [head, early, earlier], [r], c, now=0.0)
        assert [j.job_id for j in chosen] == [4, 3]

    def test_head_never_selected(self):
        c = Cluster(8)
        head = job(1, 2, 50)
        chosen = backfill_candidates(head, [head], [], c, now=0.0)
        assert chosen == []

    def test_too_wide_candidate_skipped(self):
        c, r, head = self._setup()
        cand = job(3, 4, 10, submit=2.0)  # only 2 free now
        chosen = backfill_candidates(head, [head, cand], [r], c, now=0.0)
        assert chosen == []
