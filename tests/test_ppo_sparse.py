"""Segment-batched sparse PPO update and data-parallel gradient sharding:
path equivalence, the gradient-reduction runtime, and the KL-reporting fix."""

import numpy as np
import pytest

from repro.config import EnvConfig, PPOConfig, RuntimeConfig, TrainConfig
from repro.nn import KernelPolicy, MLPPolicy, Tensor, ValueMLP
from repro.rl import PPOAgent, Trainer
from repro.rl.ppo import UpdateStats, _policy_terms
from repro.runtime import GradientReducer, shard_bounds
from repro.workloads import load_trace

F = 7


def synthetic_data(n=48, m=16, seed=0):
    """A PPO update batch with random (but internally consistent) masks."""
    rng = np.random.default_rng(seed)
    masks = rng.random((n, m)) < 0.5
    masks[np.arange(n), rng.integers(0, m, n)] = True
    return {
        "obs": rng.standard_normal((n, m, F)),
        "masks": masks,
        "actions": np.array([rng.choice(np.flatnonzero(mk)) for mk in masks]),
        "log_probs": -np.abs(rng.standard_normal(n)) - 0.5,
        "advantages": rng.standard_normal(n),
        "returns": rng.standard_normal(n),
    }


def make_agent(update_path="dense", m=16, grad_runtime=None, **ppo_kwargs):
    policy = KernelPolicy(F, hidden=(8, 8), seed=7)
    value = ValueMLP(m, F, hidden=(16, 16), seed=8)
    cfg = PPOConfig(update_path=update_path, **ppo_kwargs)
    return PPOAgent(policy, value, cfg, seed=0, grad_runtime=grad_runtime)


class TestSparsePath:
    def test_sparse_requires_score_rows_grad(self):
        policy = MLPPolicy(16, F, seed=0)
        value = ValueMLP(16, F, seed=1)
        with pytest.raises(TypeError, match="score_rows_grad"):
            PPOAgent(policy, value, PPOConfig(update_path="sparse"))

    def test_config_rejects_unknown_path(self):
        with pytest.raises(ValueError):
            PPOConfig(update_path="blocked")

    def test_forward_parity(self):
        data = synthetic_data()
        policy = KernelPolicy(F, hidden=(8, 8), seed=7)
        dense = _policy_terms(policy, data, 0.2, "dense")
        sparse = _policy_terms(policy, data, 0.2, "sparse")
        for d, s in zip(dense, sparse):
            np.testing.assert_allclose(d.numpy(), s.numpy(), atol=1e-10)

    def test_gradient_parity_kernel_preset_m128(self):
        """Acceptance pin: sparse gradients match dense within 1e-8 on the
        kernel preset at the paper's MAX_OBSV_SIZE=128."""
        data = synthetic_data(n=32, m=128, seed=3)
        policy = KernelPolicy(F, hidden=(32, 16), seed=5)

        def grads(path):
            policy.zero_grad()
            surrogate, ent_rows, _ = _policy_terms(policy, data, 0.2, path)
            (-surrogate.mean() - 0.01 * ent_rows.mean()).backward()
            return [p.grad.copy() for p in policy.parameters()]

        for gd, gs in zip(grads("dense"), grads("sparse")):
            np.testing.assert_allclose(gd, gs, atol=1e-8)

    def test_update_stats_parity(self):
        data = synthetic_data()
        stats_d = make_agent("dense").update(dict(data))
        stats_s = make_agent("sparse").update(dict(data))
        assert stats_d.policy_loss == pytest.approx(stats_s.policy_loss)
        assert stats_d.kl == pytest.approx(stats_s.kl)
        assert stats_d.entropy == pytest.approx(stats_s.entropy)
        assert stats_d.value_loss == stats_s.value_loss  # same value path


class TestKLReporting:
    def test_kl_is_mean_and_kl_last_is_final(self, monkeypatch):
        """Regression: stats.kl used to report only the LAST minibatch's
        KL; it must be the mean across the iterations that ran."""
        agent = make_agent(train_pi_iters=3, train_v_iters=1, target_kl=1e9)
        scripted = iter([(0.5, 0.1, 1.0), (0.4, 0.2, 1.0), (0.3, 0.6, 1.0)])
        monkeypatch.setattr(
            agent, "_policy_step", lambda data, idx: next(scripted)
        )
        monkeypatch.setattr(agent, "_value_step", lambda data, idx: 0.0)
        stats = agent.update(synthetic_data())
        assert stats.kl == pytest.approx(np.mean([0.1, 0.2, 0.6]))
        assert stats.kl_last == pytest.approx(0.6)

    def test_early_stop_still_uses_per_iter_kl(self, monkeypatch):
        agent = make_agent(train_pi_iters=5, train_v_iters=1, target_kl=0.1)
        kls = iter([0.01, 0.9, 0.01, 0.01, 0.01])
        monkeypatch.setattr(
            agent, "_policy_step", lambda data, idx: (0.0, next(kls), 0.0)
        )
        monkeypatch.setattr(agent, "_value_step", lambda data, idx: 0.0)
        stats = agent.update(synthetic_data())
        assert stats.early_stopped and stats.pi_iters_run == 2
        assert stats.kl_last == pytest.approx(0.9)

    def test_old_stats_dicts_still_load(self):
        """Checkpoints written before kl_last existed must round-trip."""
        old = {"policy_loss": 0.1, "value_loss": 0.2, "kl": 0.3,
               "entropy": 0.4, "pi_iters_run": 5, "early_stopped": False}
        stats = UpdateStats(**old)
        assert np.isnan(stats.kl_last)


class TestShardBounds:
    def test_partition_covers_and_is_contiguous(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_never_more_shards_than_rows(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_even_split(self):
        assert shard_bounds(8, 2) == [(0, 4), (4, 8)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            shard_bounds(0, 2)


def _sum_loss(module, shard):
    out = module(shard["x"])
    loss = (out ** 2.0).sum()
    return loss, {"loss": float(loss.item())}


class TestGradientReducer:
    def test_requires_install(self):
        reducer = GradientReducer(RuntimeConfig())
        policy = KernelPolicy(F, seed=0)
        with pytest.raises(RuntimeError, match="install"):
            reducer.grad_sums("policy", policy, _sum_loss, {"x": np.ones(3)})

    def test_rejects_mismatched_batch_lengths(self):
        with GradientReducer(RuntimeConfig()) as reducer:
            policy = KernelPolicy(F, seed=0)
            reducer.install({"policy": policy})
            with pytest.raises(ValueError, match="disagree"):
                reducer.grad_sums(
                    "policy", policy, _sum_loss,
                    {"a": np.ones(3), "b": np.ones(4)},
                )

    def test_serial_matches_process_bitwise_at_fixed_workers(self):
        """Same shard partition + same reduction order ⇒ the backend is
        a pure throughput knob, like the rollout runtime."""
        data = synthetic_data()
        agents = [
            make_agent("sparse", grad_runtime=RuntimeConfig(
                backend=backend, workers=2))
            for backend in ("serial", "process")
        ]
        try:
            stats = [a.update(dict(data)) for a in agents]
            assert stats[0] == stats[1]
            for p1, p2 in zip(agents[0].policy.parameters(),
                              agents[1].policy.parameters()):
                np.testing.assert_array_equal(p1.data, p2.data)
            for v1, v2 in zip(agents[0].value.parameters(),
                              agents[1].value.parameters()):
                np.testing.assert_array_equal(v1.data, v2.data)
        finally:
            for a in agents:
                a.close()

    def test_sharded_matches_unsharded(self):
        data = synthetic_data()
        plain = make_agent("sparse")
        sharded = make_agent("sparse", grad_runtime=RuntimeConfig(
            backend="serial", workers=3))
        try:
            s0 = plain.update(dict(data))
            s1 = sharded.update(dict(data))
            assert s0.policy_loss == pytest.approx(s1.policy_loss, abs=1e-10)
            assert s0.value_loss == pytest.approx(s1.value_loss, abs=1e-10)
            for p1, p2 in zip(plain.policy.parameters(),
                              sharded.policy.parameters()):
                np.testing.assert_allclose(p1.data, p2.data, atol=1e-8)
        finally:
            sharded.close()
            plain.close()  # no-op: never had workers

    def test_dense_path_shards_too(self):
        data = synthetic_data()
        plain = make_agent("dense")
        sharded = make_agent("dense", grad_runtime=RuntimeConfig(
            backend="serial", workers=2))
        try:
            plain.update(dict(data))
            sharded.update(dict(data))
            for p1, p2 in zip(plain.policy.parameters(),
                              sharded.policy.parameters()):
                np.testing.assert_allclose(p1.data, p2.data, atol=1e-8)
        finally:
            sharded.close()


class TestTrainerIntegration:
    @pytest.fixture(scope="class")
    def trace(self):
        return load_trace("Lublin-1", n_jobs=400, seed=3)

    def _run(self, trace, update_path, grad_workers):
        t = Trainer(
            trace,
            env_config=EnvConfig(max_obsv_size=8),
            ppo_config=PPOConfig(
                update_path=update_path, train_pi_iters=5, train_v_iters=5
            ),
            train_config=TrainConfig(
                epochs=2, trajectories_per_epoch=2, trajectory_length=16,
                seed=0, grad_workers=grad_workers,
            ),
        )
        try:
            return t.train().metric_curve()
        finally:
            t.close()

    def test_sparse_sharded_matches_dense_serial(self, trace):
        dense = self._run(trace, "dense", 1)
        sparse = self._run(trace, "sparse", 2)
        np.testing.assert_allclose(sparse, dense, rtol=1e-6)

    def test_config_rejects_bad_grad_workers(self):
        with pytest.raises(ValueError):
            TrainConfig(grad_workers=0)
