"""Engine-split pins: batch goldens + online ``submit()`` equivalence.

The golden cases in ``tests/data/engine_goldens.json`` were captured from
the pre-split ``SchedulingEngine`` (before ``EngineCore`` was extracted).
The refactored batch engine must reproduce every decision log and
completion schedule bit-for-bit, and replaying the same sampled sequences
through ``OnlineSchedulingEngine.submit()`` — one submission at a time,
pumping decisions between arrivals so commits genuinely stall and resume
at the horizon — must land on the identical decision log.
"""

import hashlib
import json
import math
from pathlib import Path

import pytest

from repro.scenarios import get_scenario
from repro.schedulers import make_scheduler
from repro.sim import ClusterSpec, OnlineSchedulingEngine, SchedulingEngine
from repro.workloads import SequenceSampler, load_trace
from repro.workloads.job import Job

GOLDENS = json.loads(
    (Path(__file__).parent / "data" / "engine_goldens.json").read_text()
)


def _digest(obj):
    return hashlib.sha256(json.dumps(obj, sort_keys=True).encode()).hexdigest()


@pytest.fixture(scope="module")
def workloads():
    meta = GOLDENS["workload"]
    trace = load_trace(meta["trace"], n_jobs=meta["n_jobs"], seed=meta["seed"])
    seqs = SequenceSampler(
        trace, meta["seq_len"], seed=meta["sampler_seed"]
    ).sample_many(2)
    mem_scen = get_scenario(meta["mem_scenario"])
    mem_trace = mem_scen.build_trace(n_jobs=meta["mem_n_jobs"])
    mem_seq = SequenceSampler(
        mem_trace, meta["seq_len"], seed=meta["sampler_seed"]
    ).sample_many(1)[0]
    cases = {}
    for si, seq in enumerate(seqs):
        cases[f"lublin/{si}"] = (seq, ClusterSpec(trace.max_procs))
    cases["mem"] = (mem_seq, mem_scen.cluster)
    return cases


def _case_params():
    return sorted(GOLDENS["cases"])


def _resolve(case_key, workloads):
    parts = case_key.split("/")
    if parts[0] == "mem":
        _, sched, bf = parts
        seq, cluster = workloads["mem"]
    else:
        _, si, sched, bf = parts
        seq, cluster = workloads[f"lublin/{si}"]
    backfill = False if bf == "False" else bf
    return seq, cluster, make_scheduler(sched), backfill


def batch_decision_log(jobs, cluster, scheduler, backfill):
    engine = SchedulingEngine(jobs, cluster, backfill=backfill)
    log = []
    while engine.advance_until_decision():
        best = scheduler.select(engine.pending, engine.now, engine.cluster)
        log.append((best.job_id, engine.now))
        engine.commit(best)
    assert engine.done
    completed = [(j.job_id, j.start_time) for j in engine.completed]
    return log, completed


def online_decision_log(jobs, cluster, scheduler, backfill):
    """Replay ``jobs`` through submit()/advance(), one arrival at a time.

    Decisions are pumped after every submission, so commits stall at the
    horizon whenever the chosen job cannot start before the next arrival
    is known — exercising the stall/resume path on every sequence.
    """
    engine = OnlineSchedulingEngine(cluster, backfill=backfill)
    log, completed, stalls = [], [], 0

    def pump():
        nonlocal stalls
        while engine.next_decision():
            best = scheduler.select(engine.pending, engine.now, engine.cluster)
            log.append((best.job_id, engine.now))
            if not engine.commit(best):
                stalls += 1
                return
        completed.extend(
            (j.job_id, j.start_time) for j in engine.take_completed()
        )

    for job in sorted(jobs, key=lambda j: (j.submit_time, j.job_id)):
        engine.submit(job)
        pump()
    engine.drain()
    pump()
    assert engine.idle, "engine not quiescent after drain"
    completed.extend((j.job_id, j.start_time) for j in engine.take_completed())
    return log, completed, stalls


class TestBatchGoldens:
    """The refactored batch engine is bit-identical to the pre-split one."""

    @pytest.mark.parametrize("case_key", _case_params())
    def test_golden(self, case_key, workloads):
        golden = GOLDENS["cases"][case_key]
        seq, cluster, scheduler, backfill = _resolve(case_key, workloads)
        log, completed = batch_decision_log(seq, cluster, scheduler, backfill)
        assert len(log) == golden["n_decisions"]
        assert [d[0] for d in log[:12]] == golden["first_decisions"]
        assert _digest(log) == golden["decision_digest"]
        assert _digest(completed) == golden["completed_digest"]
        assert max(c[1] for c in completed) == pytest.approx(
            golden["makespan"], abs=0
        )


class TestOnlineEquivalence:
    """submit()-replay reproduces the batch decision log exactly."""

    @pytest.mark.parametrize("case_key", _case_params())
    def test_replay_matches_batch(self, case_key, workloads):
        golden = GOLDENS["cases"][case_key]
        seq, cluster, scheduler, backfill = _resolve(case_key, workloads)
        log, completed, stalls = online_decision_log(
            seq, cluster, scheduler, backfill
        )
        assert _digest(log) == golden["decision_digest"]
        # completion order can differ only in harvest batching, not content
        assert _digest(sorted(completed)) == _digest(
            sorted(
                batch_decision_log(seq, cluster, scheduler, backfill)[1]
            )
        )

    def test_replay_actually_stalls(self, workloads):
        # the equivalence above is vacuous unless commits really pause at
        # the horizon and resume; assert the path is exercised
        seq, cluster = workloads["lublin/0"]
        _, _, stalls = online_decision_log(
            seq, cluster, make_scheduler("FCFS"), "easy"
        )
        assert stalls > 0


def _job(job_id, submit, run=10.0, procs=1, req=None):
    return Job(
        job_id=job_id,
        submit_time=submit,
        run_time=run,
        requested_procs=procs,
        requested_time=req if req is not None else run,
        user_id=0,
    )


class TestOnlineEngine:
    def test_submit_validates_against_spec(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        with pytest.raises(ValueError, match="requests 8 procs"):
            engine.submit(_job(1, 0.0, procs=8))

    def test_duplicate_submit_rejected(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        engine.submit(_job(1, 0.0))
        with pytest.raises(ValueError, match="already known"):
            engine.submit(_job(1, 5.0))

    def test_submit_copies_and_clamps_late_arrivals(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        engine.submit(_job(1, 100.0))
        assert engine.next_decision()
        engine.commit(engine.pending[0])
        assert engine.now == 100.0
        original = _job(2, 3.0)  # "arrives" long before the clock
        admitted = engine.submit(original)
        assert admitted is not original  # engine owns a copy
        assert original.submit_time == 3.0  # caller's object untouched
        assert admitted.submit_time == 100.0  # clamped to now
        assert engine.next_decision()
        assert engine.pending[0].job_id == 2

    def test_commit_stalls_and_resumes_at_horizon(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        engine.submit(_job(1, 0.0, run=50.0, procs=4))
        assert engine.next_decision()
        assert engine.commit(engine.pending[0])
        # job 2 needs the whole cluster; the finish event at t=50 is
        # beyond the horizon (t=1), so the commit must stall
        engine.submit(_job(2, 1.0, procs=4))
        assert engine.next_decision()
        assert not engine.commit(engine.pending[0])
        assert engine.inflight is not None and engine.inflight.job_id == 2
        # a later observation lifts the horizon past the finish: resume
        engine.advance(60.0)
        assert not engine.next_decision()  # resumed; nothing else pending
        assert engine.inflight is None
        # job 2 started at t=50 and its finish (t=60) is inside the horizon
        done = {j.job_id: j.start_time for j in engine.take_completed()}
        assert done == {1: 0.0, 2: 50.0}
        assert engine.now == 60.0

    def test_commit_other_job_while_inflight_raises(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        engine.submit(_job(1, 0.0, run=50.0, procs=4))
        engine.next_decision()
        engine.commit(engine.pending[0])
        engine.submit(_job(2, 1.0, procs=4))
        engine.submit(_job(3, 2.0, procs=4))
        engine.next_decision()
        assert not engine.commit(engine.pending[0])
        other = engine.pending[1]
        with pytest.raises(RuntimeError, match="already in flight"):
            engine.commit(other)

    def test_take_completed_releases_rows(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        for i in range(5):
            engine.submit(_job(i, float(i)))
        while engine.next_decision():
            engine.commit(engine.pending[0])
        engine.drain()
        while engine.next_decision():
            engine.commit(engine.pending[0])
        done = engine.take_completed()
        assert sorted(j.job_id for j in done) == list(range(5))
        assert engine._row_of == {}  # bookkeeping fully released
        assert engine.take_completed() == []
        assert engine.idle
        # ids can be reused after harvest — a daemon recycles id space
        engine.submit(_job(1, engine.now))
        assert engine.next_decision()

    def test_counters(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        for i in range(3):
            engine.submit(_job(i, float(i)))
        assert engine.n_submitted == 3
        engine.drain()
        while engine.next_decision():
            engine.commit(engine.pending[0])
        assert engine.n_started == 3

    def test_horizon_monotonic(self):
        engine = OnlineSchedulingEngine(ClusterSpec(4))
        engine.advance(10.0)
        engine.advance(5.0)
        assert engine.horizon == 10.0
        engine.drain()
        assert engine.horizon == math.inf
