"""Property-based tests: autodiff forward results equal NumPy, and core
algebraic identities of the gradient hold on arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Parameter, Tensor

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=64)
small_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5),
    elements=finite,
)
positive_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5),
    elements=st.floats(min_value=0.1, max_value=10.0, width=64),
)


@settings(max_examples=50, deadline=None)
@given(small_arrays)
def test_forward_matches_numpy_elementwise(x):
    t = Tensor(x)
    np.testing.assert_allclose((t * 2.0 + 1.0).numpy(), x * 2.0 + 1.0)
    np.testing.assert_allclose(t.tanh().numpy(), np.tanh(x))
    np.testing.assert_allclose(t.relu().numpy(), np.maximum(x, 0))
    np.testing.assert_allclose(t.exp().numpy(), np.exp(x))


@settings(max_examples=50, deadline=None)
@given(positive_arrays)
def test_log_exp_inverse(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.log().exp().numpy(), x, rtol=1e-10)


@settings(max_examples=50, deadline=None)
@given(small_arrays)
def test_sum_grad_is_ones(x):
    t = Parameter(x)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=50, deadline=None)
@given(small_arrays, finite)
def test_linearity_of_gradient(x, scale):
    """d(c·sum(x))/dx == c everywhere."""
    t = Parameter(x)
    (t.sum() * scale).backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, scale), atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(small_arrays)
def test_grad_of_square_is_2x(x):
    t = Parameter(x)
    (t * t).sum().backward()
    np.testing.assert_allclose(t.grad, 2.0 * x, rtol=1e-10, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
           elements=finite),
)
def test_transpose_involution(x):
    t = Tensor(x)
    np.testing.assert_allclose(t.T.T.numpy(), x)


@settings(max_examples=30, deadline=None)
@given(small_arrays)
def test_clip_bounds_respected(x):
    out = Tensor(x).clip(-1.0, 1.0).numpy()
    assert (out >= -1.0).all() and (out <= 1.0).all()


@settings(max_examples=30, deadline=None)
@given(small_arrays, small_arrays)
def test_minimum_commutes_on_values(a, b):
    if a.shape != b.shape:
        return
    m1 = Tensor(a).minimum(Tensor(b)).numpy()
    m2 = Tensor(b).minimum(Tensor(a)).numpy()
    np.testing.assert_allclose(m1, m2)
    np.testing.assert_allclose(m1, np.minimum(a, b))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 5), st.integers(1, 5), st.integers(1, 5),
    st.randoms(use_true_random=False),
)
def test_matmul_matches_numpy(n, k, m, rnd):
    rng = np.random.default_rng(rnd.randint(0, 2**31))
    a = rng.normal(size=(n, k))
    b = rng.normal(size=(k, m))
    np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b, rtol=1e-12)


@settings(max_examples=30, deadline=None)
@given(small_arrays)
def test_gradient_accumulation_additive(x):
    """Backward through f+g gives grad(f) + grad(g)."""
    t1 = Parameter(x.copy())
    (t1.tanh().sum() + (t1 * 3.0).sum()).backward()

    t2 = Parameter(x.copy())
    t2.tanh().sum().backward()
    g_f = t2.grad.copy()
    t2.zero_grad()
    (t2 * 3.0).sum().backward()
    np.testing.assert_allclose(t1.grad, g_f + t2.grad, rtol=1e-10, atol=1e-12)
