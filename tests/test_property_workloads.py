"""Property-based tests on the workload substrate: SWF round-trips, sampler
invariants, masked-softmax distribution laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, masked_log_softmax
from repro.workloads import (
    Job,
    SWFHeader,
    SWFTrace,
    parse_swf,
    rebase_jobs,
    sample_sequence,
    write_swf,
)


@st.composite
def job_lists(draw, min_jobs=1, max_jobs=20):
    n = draw(st.integers(min_jobs, max_jobs))
    jobs = []
    t = 0.0
    for i in range(n):
        t += draw(st.floats(min_value=0.0, max_value=1000.0))
        run = float(draw(st.integers(1, 100_000)))
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=round(t),
                run_time=run,
                requested_procs=draw(st.integers(1, 64)),
                requested_time=float(draw(st.integers(1, 200_000))),
                user_id=draw(st.integers(1, 9)),
                group_id=draw(st.integers(1, 4)),
            )
        )
    return jobs


@settings(max_examples=40, deadline=None)
@given(job_lists())
def test_swf_round_trip_preserves_scheduling_fields(jobs):
    trace = SWFTrace(jobs=jobs, header=SWFHeader(max_procs=64))
    back = parse_swf(write_swf(trace))
    assert len(back) == len(jobs)
    for a, b in zip(sorted(jobs, key=lambda j: (j.submit_time, j.job_id)), back):
        assert a.job_id == b.job_id
        assert a.submit_time == b.submit_time
        assert round(a.run_time) == b.run_time
        assert a.requested_procs == b.requested_procs
        assert a.user_id == b.user_id


@settings(max_examples=40, deadline=None)
@given(job_lists(min_jobs=3))
def test_rebase_preserves_gaps(jobs):
    rebased = rebase_jobs(jobs)
    assert min(j.submit_time for j in rebased) == 0.0
    orig = sorted(j.submit_time for j in jobs)
    new = sorted(j.submit_time for j in rebased)
    np.testing.assert_allclose(np.diff(orig), np.diff(new), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(job_lists(min_jobs=5), st.integers(0, 2**31 - 1))
def test_sampled_window_is_contiguous(jobs, seed):
    trace = SWFTrace(jobs=jobs, header=SWFHeader(max_procs=64))
    rng = np.random.default_rng(seed)
    length = min(3, len(jobs))
    window = sample_sequence(trace, length, rng)
    ids = [j.job_id for j in window]
    assert ids == list(range(ids[0], ids[0] + length))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 12),
    st.integers(0, 2**31 - 1),
)
def test_masked_softmax_is_distribution(n, seed):
    rng = np.random.default_rng(seed)
    logits = rng.normal(scale=5.0, size=(1, n))
    mask = rng.random(n) < 0.5
    if not mask.any():
        mask[rng.integers(n)] = True
    lp = masked_log_softmax(Tensor(logits), mask[None]).numpy()[0]
    p = np.exp(lp)
    assert p[~mask].max(initial=0.0) < 1e-12
    np.testing.assert_allclose(p.sum(), 1.0, rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 12), st.integers(0, 2**31 - 1))
def test_masked_softmax_shift_invariance(n, seed):
    """softmax(x + c) == softmax(x): the policy only cares about relative
    job scores."""
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(1, n))
    mask = np.ones((1, n), bool)
    a = masked_log_softmax(Tensor(logits), mask).numpy()
    b = masked_log_softmax(Tensor(logits + 123.456), mask).numpy()
    np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)
