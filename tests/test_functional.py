"""Unit tests for masked softmax / categorical utilities."""

import numpy as np
import pytest

from repro.nn import (
    Parameter,
    Tensor,
    entropy,
    greedy_action,
    log_prob_of,
    masked_log_softmax,
    sample_action,
)


class TestMaskedLogSoftmax:
    def test_probabilities_sum_to_one(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0, 4.0]]))
        mask = np.array([[True, True, True, False]])
        lp = masked_log_softmax(logits, mask).numpy()
        p = np.exp(lp)
        assert p[0, 3] == pytest.approx(0.0, abs=1e-12)
        assert p[0, :3].sum() == pytest.approx(1.0)

    def test_matches_plain_softmax_when_unmasked(self):
        x = np.random.default_rng(0).normal(size=(2, 5))
        lp = masked_log_softmax(Tensor(x), np.ones((2, 5), bool)).numpy()
        ref = x - x.max(axis=1, keepdims=True)
        ref = ref - np.log(np.exp(ref).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(lp, ref, rtol=1e-12)

    def test_numerically_stable_for_huge_logits(self):
        logits = Tensor(np.array([[1e4, 1e4 - 1.0]]))
        lp = masked_log_softmax(logits, np.array([[True, True]])).numpy()
        assert np.isfinite(lp).all()

    def test_all_masked_row_rejected(self):
        with pytest.raises(ValueError, match="at least one valid action"):
            masked_log_softmax(Tensor(np.ones((1, 3))), np.zeros((1, 3), bool))

    def test_gradient_zero_on_masked_slots(self):
        t = Parameter(np.array([[1.0, 2.0, 3.0]]))
        mask = np.array([[True, True, False]])
        masked_log_softmax(t, mask)[0, 0].backward()
        assert t.grad[0, 2] == 0.0

    def test_order_equivariance(self):
        """Permuting logits permutes log-probs identically — the property
        the kernel network is built to exploit."""
        x = np.array([[0.3, 1.7, -0.5, 2.2]])
        mask = np.ones((1, 4), bool)
        lp = masked_log_softmax(Tensor(x), mask).numpy()
        perm = [2, 0, 3, 1]
        lp_perm = masked_log_softmax(Tensor(x[:, perm]), mask).numpy()
        np.testing.assert_allclose(lp[:, perm], lp_perm, rtol=1e-12)


class TestLogProbOf:
    def test_gathers_correct_entries(self):
        lp = Tensor(np.log(np.array([[0.2, 0.8], [0.5, 0.5]])))
        out = log_prob_of(lp, np.array([1, 0])).numpy()
        np.testing.assert_allclose(out, np.log([0.8, 0.5]))

    def test_gradient_flows_to_chosen(self):
        t = Parameter(np.zeros((2, 3)))
        lp = masked_log_softmax(t, np.ones((2, 3), bool))
        log_prob_of(lp, np.array([0, 2])).sum().backward()
        # chosen entries get positive gradient pressure
        assert t.grad[0, 0] > 0 and t.grad[1, 2] > 0


class TestEntropy:
    def test_uniform_is_log_n(self):
        lp = masked_log_softmax(Tensor(np.zeros((1, 8))), np.ones((1, 8), bool))
        assert entropy(lp).item() == pytest.approx(np.log(8))

    def test_deterministic_is_zero(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        lp = masked_log_softmax(Tensor(logits), np.ones((1, 3), bool))
        assert entropy(lp).item() == pytest.approx(0.0, abs=1e-8)

    def test_masked_slots_do_not_contribute(self):
        lp = masked_log_softmax(
            Tensor(np.zeros((1, 4))), np.array([[True, True, False, False]])
        )
        assert entropy(lp).item() == pytest.approx(np.log(2))


class TestSampling:
    def test_sample_respects_distribution(self):
        rng = np.random.default_rng(0)
        log_p = np.log(np.array([0.9, 0.1]))
        draws = [sample_action(log_p, rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(0.1, abs=0.03)

    def test_greedy_is_argmax(self):
        assert greedy_action(np.array([-3.0, -0.1, -2.0])) == 1

    def test_sample_never_picks_masked(self):
        rng = np.random.default_rng(1)
        lp = masked_log_softmax(
            Tensor(np.zeros((1, 4))), np.array([[True, False, True, False]])
        ).numpy()[0]
        draws = {sample_action(lp, rng) for _ in range(200)}
        assert draws <= {0, 2}
