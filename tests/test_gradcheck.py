"""Finite-difference validation of every hand-written VJP in the tensor
engine, including the segment-batched sparse ops and their functional
twins.  Shapes exercise broadcasting wherever the op supports it."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    gather_rows,
    gradcheck,
    numerical_gradient,
    scatter_rows,
    segment_entropy,
    segment_log_prob_of,
    segment_log_softmax,
    segment_logsumexp,
    segment_max,
    segment_sum,
    valid_rows,
)


def rand(*shape, seed=0, loc=0.0):
    return np.random.default_rng(seed).standard_normal(shape) + loc


def positive(*shape, seed=0):
    return np.abs(rand(*shape, seed=seed)) + 0.5


class TestArithmetic:
    def test_add(self):
        gradcheck(lambda a, b: a + b, rand(3, 4), rand(3, 4, seed=1))

    def test_add_broadcast(self):
        gradcheck(lambda a, b: a + b, rand(3, 1), rand(3, 4, seed=1))
        gradcheck(lambda a, b: a + b, rand(4), rand(2, 3, 4, seed=1))

    def test_radd_scalar(self):
        gradcheck(lambda a: 2.5 + a, rand(5))

    def test_mul(self):
        gradcheck(lambda a, b: a * b, rand(3, 4), rand(3, 4, seed=1))

    def test_mul_broadcast(self):
        gradcheck(lambda a, b: a * b, rand(2, 1, 4), rand(3, 1, seed=1))

    def test_neg_sub_rsub(self):
        gradcheck(lambda a: -a, rand(4))
        gradcheck(lambda a, b: a - b, rand(3, 2), rand(2, seed=1))
        gradcheck(lambda a: 1.0 - a, rand(4))

    def test_div(self):
        gradcheck(lambda a, b: a / b, rand(3, 4), positive(3, 4, seed=1))
        gradcheck(lambda a: 3.0 / a, positive(5))

    def test_pow(self):
        gradcheck(lambda a: a ** 3.0, rand(3, 4))
        gradcheck(lambda a: a ** 0.5, positive(3, 4))
        gradcheck(lambda a: a ** -2.0, positive(5))


class TestMatmulAndReductions:
    def test_matmul(self):
        gradcheck(lambda a, b: a @ b, rand(3, 4), rand(4, 2, seed=1))

    def test_sum_all(self):
        gradcheck(lambda a: a.sum(), rand(3, 4))

    def test_sum_axis(self):
        gradcheck(lambda a: a.sum(axis=1), rand(3, 4))
        gradcheck(lambda a: a.sum(axis=0, keepdims=True), rand(3, 4))
        gradcheck(lambda a: a.sum(axis=-1), rand(2, 3, 4))

    def test_mean(self):
        gradcheck(lambda a: a.mean(), rand(3, 4))
        gradcheck(lambda a: a.mean(axis=1), rand(3, 4))


class TestNonlinearities:
    def test_exp(self):
        gradcheck(lambda a: a.exp(), rand(3, 4))

    def test_log(self):
        gradcheck(lambda a: a.log(), positive(3, 4))

    def test_tanh(self):
        gradcheck(lambda a: a.tanh(), rand(3, 4))

    def test_relu(self):
        # Keep inputs away from the kink at 0 (FD is wrong within eps of it).
        x = rand(4, 5)
        x[np.abs(x) < 1e-3] = 0.5
        gradcheck(lambda a: a.relu(), x)

    def test_sigmoid(self):
        gradcheck(lambda a: a.sigmoid(), rand(3, 4))


class TestShapeAndIndexing:
    def test_reshape(self):
        gradcheck(lambda a: a.reshape(6, 2), rand(3, 4))
        gradcheck(lambda a: a.reshape(-1), rand(3, 4))

    def test_transpose(self):
        gradcheck(lambda a: a.T, rand(3, 4))
        gradcheck(lambda a: a.transpose(2, 0, 1), rand(2, 3, 4))

    def test_getitem_slice(self):
        gradcheck(lambda a: a[1:3], rand(5, 4))

    def test_getitem_fancy_with_duplicates(self):
        idx = np.array([0, 2, 2, 1])
        gradcheck(lambda a: a[idx], rand(4, 3))


class TestSelection:
    def test_clip(self):
        # Inputs away from the clip boundaries (kinks).
        x = rand(4, 5) * 2.0
        x[np.abs(np.abs(x) - 0.7) < 1e-3] = 0.0
        gradcheck(lambda a: a.clip(-0.7, 0.7), x)

    def test_minimum_maximum(self):
        a, b = rand(3, 4), rand(3, 4, seed=1)
        gradcheck(lambda x, y: x.minimum(y), a, b)
        gradcheck(lambda x, y: x.maximum(y), a, b)

    def test_where(self):
        cond = np.random.default_rng(2).random((3, 4)) < 0.5
        gradcheck(lambda x, y: x.where(cond, y), rand(3, 4), rand(3, 4, seed=1))


IP = np.array([0, 2, 2, 5, 6])  # 4 segments, one empty, over 6 rows
IP_FULL = np.array([0, 2, 5, 6])  # 3 non-empty segments over 6 rows


class TestSegmentOps:
    def test_gather_rows(self):
        idx = np.array([0, 3, 3, 1, 2])
        gradcheck(lambda x: gather_rows(x, idx), rand(4, 3))
        gradcheck(lambda x: gather_rows(x, idx), rand(4))  # 1-D too

    def test_scatter_rows(self):
        idx = np.array([1, 0, 1])
        gradcheck(lambda x: scatter_rows(x, idx, 4), rand(3, 2))

    def test_scatter_rows_forward_sums_duplicates(self):
        out = scatter_rows(Tensor(np.ones((3, 2))), np.array([1, 0, 1]), 4)
        np.testing.assert_array_equal(
            out.numpy(), [[1, 1], [2, 2], [0, 0], [0, 0]]
        )

    def test_scatter_rows_rejects_bad_index(self):
        with pytest.raises(ValueError):
            scatter_rows(Tensor(np.ones((2, 2))), np.array([0, 5]), 4)
        with pytest.raises(ValueError):
            scatter_rows(Tensor(np.ones((2, 2))), np.array([0]), 4)

    def test_segment_sum(self):
        gradcheck(lambda x: segment_sum(x, IP), rand(6, 3))
        gradcheck(lambda x: segment_sum(x, IP), rand(6))

    def test_segment_sum_empty_segments_are_zero(self):
        out = segment_sum(Tensor(np.ones((6, 2))), IP)
        np.testing.assert_array_equal(out.numpy()[1], [0.0, 0.0])
        # Trailing empty segment must not corrupt the previous boundary.
        out = segment_sum(Tensor(np.arange(3.0)), np.array([0, 3, 3]))
        np.testing.assert_array_equal(out.numpy(), [3.0, 0.0])

    def test_segment_max(self):
        gradcheck(lambda x: segment_max(x, IP_FULL), rand(6, 3))

    def test_segment_max_empty_reads_minus_inf(self):
        out = segment_max(Tensor(np.ones(6)), IP)
        assert out.numpy()[1] == -np.inf

    def test_segment_logsumexp(self):
        gradcheck(lambda x: segment_logsumexp(x, IP_FULL), rand(6))
        # Large magnitudes: the stability shift must not overflow.
        big = rand(6) * 200.0
        out = segment_logsumexp(Tensor(big), IP_FULL)
        assert np.isfinite(out.numpy()).all()

    def test_segment_logsumexp_rejects_empty(self):
        with pytest.raises(ValueError):
            segment_logsumexp(Tensor(np.ones(6)), IP)

    def test_bad_indptr_rejected(self):
        x = Tensor(np.ones(4))
        with pytest.raises(ValueError):
            segment_sum(x, np.array([1, 4]))  # must start at 0
        with pytest.raises(ValueError):
            segment_sum(x, np.array([0, 3]))  # must end at n
        with pytest.raises(ValueError):
            segment_sum(x, np.array([0, 3, 2, 4]))  # non-decreasing


class TestSparseFunctionalTwins:
    def _masked_problem(self, seed=0):
        rng = np.random.default_rng(seed)
        masks = rng.random((4, 6)) < 0.5
        masks[np.arange(4), rng.integers(0, 6, 4)] = True
        actions = np.array([rng.choice(np.flatnonzero(m)) for m in masks])
        _, _, indptr = valid_rows(masks)
        k = int(indptr[-1])
        return masks, actions, indptr, rand(k, seed=seed + 1)

    def test_segment_log_softmax_grad(self):
        _, _, indptr, scores = self._masked_problem()
        gradcheck(lambda s: segment_log_softmax(s, indptr), scores)

    def test_segment_log_prob_of_grad(self):
        masks, actions, indptr, scores = self._masked_problem()
        gradcheck(
            lambda s: segment_log_prob_of(
                segment_log_softmax(s, indptr), masks, actions, indptr
            ),
            scores,
        )

    def test_segment_entropy_grad(self):
        _, _, indptr, scores = self._masked_problem()
        gradcheck(
            lambda s: segment_entropy(segment_log_softmax(s, indptr), indptr),
            scores,
        )


class TestHarness:
    def test_numerical_gradient_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda: float((x ** 2).sum()), x)
        np.testing.assert_allclose(grad, 2 * x, rtol=1e-6, atol=1e-6)
        np.testing.assert_array_equal(x, [1.0, -2.0, 3.0])  # probes restored

    def test_gradcheck_catches_wrong_vjp(self):
        def bad_square(x):
            out_data = x.data ** 2

            def backward(grad):
                x._accumulate(grad * 3.0 * x.data)  # should be 2x

            return Tensor._from_op(out_data, (x,), backward)

        with pytest.raises(AssertionError):
            gradcheck(bad_square, np.array([1.0, -2.0, 3.0]))

    def test_gradcheck_check_mask_skips_inputs(self):
        gradcheck(
            lambda a, b: a * b,
            rand(3),
            rand(3, seed=1),
            check=[True, False],
        )
