"""Unit tests for the Lublin-Feitelson workload model."""

import numpy as np
import pytest

from repro.workloads import LUBLIN_1, LUBLIN_2, LublinParams, generate_lublin_trace
from repro.workloads.lublin import calibrate_mean
from repro.workloads.stats import characterize


class TestParams:
    def test_defaults_valid(self):
        p = LublinParams()
        assert p.uhi == 8.0  # log2(256)
        assert p.umed == 8.0 - 2.5

    def test_umed_never_below_ulow(self):
        p = LublinParams(n_procs=4, umed_offset=10.0)
        assert p.umed == p.ulow

    def test_rejects_tiny_cluster(self):
        with pytest.raises(ValueError, match="at least 2"):
            LublinParams(n_procs=1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            LublinParams(serial_prob=1.5)

    def test_rejects_nonpositive_interarrival(self):
        with pytest.raises(ValueError, match="mean_interarrival"):
            LublinParams(mean_interarrival=0.0)


class TestGeneration:
    def test_job_count_and_ids(self):
        trace = generate_lublin_trace(LUBLIN_1, n_jobs=200, seed=0)
        assert len(trace) == 200
        assert [j.job_id for j in trace] == list(range(1, 201))

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            generate_lublin_trace(LUBLIN_1, n_jobs=0)

    def test_sizes_within_cluster(self):
        trace = generate_lublin_trace(LUBLIN_1, n_jobs=500, seed=1)
        assert all(1 <= j.requested_procs <= 256 for j in trace)

    def test_arrivals_monotone(self):
        trace = generate_lublin_trace(LUBLIN_1, n_jobs=500, seed=2)
        submits = [j.submit_time for j in trace]
        assert submits == sorted(submits)

    def test_estimates_at_least_runtime(self):
        trace = generate_lublin_trace(LUBLIN_1, n_jobs=500, seed=3)
        assert all(j.requested_time >= j.run_time for j in trace)

    def test_deterministic_with_seed(self):
        a = generate_lublin_trace(LUBLIN_1, n_jobs=100, seed=5)
        b = generate_lublin_trace(LUBLIN_1, n_jobs=100, seed=5)
        assert all(
            x.run_time == y.run_time and x.submit_time == y.submit_time
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self):
        a = generate_lublin_trace(LUBLIN_1, n_jobs=100, seed=5)
        b = generate_lublin_trace(LUBLIN_1, n_jobs=100, seed=6)
        assert any(x.run_time != y.run_time for x, y in zip(a, b))

    def test_users_assigned(self):
        trace = generate_lublin_trace(LUBLIN_1, n_jobs=200, seed=0, n_users=16)
        users = {j.user_id for j in trace}
        assert users and all(0 <= u < 16 for u in users)


class TestCalibration:
    """Presets must reproduce the Table II characteristics of the paper."""

    @pytest.mark.parametrize(
        "params,it,rt,nt",
        [(LUBLIN_1, 771, 4862, 22), (LUBLIN_2, 460, 1695, 39)],
        ids=["Lublin-1", "Lublin-2"],
    )
    def test_table2_moments(self, params, it, rt, nt):
        trace = generate_lublin_trace(params, n_jobs=8000, seed=0)
        stats = characterize(trace)
        assert stats.mean_interarrival == pytest.approx(it, rel=0.15)
        assert stats.mean_runtime == pytest.approx(rt, rel=0.15)
        assert stats.mean_requested_procs == pytest.approx(nt, rel=0.25)

    def test_lublin2_wider_than_lublin1(self):
        t1 = generate_lublin_trace(LUBLIN_1, n_jobs=4000, seed=0)
        t2 = generate_lublin_trace(LUBLIN_2, n_jobs=4000, seed=0)
        s1, s2 = characterize(t1), characterize(t2)
        assert s2.mean_requested_procs > s1.mean_requested_procs
        assert s2.mean_runtime < s1.mean_runtime


class TestCalibrateMean:
    def test_hits_target_under_cap(self):
        rng = np.random.default_rng(0)
        x = rng.lognormal(3.0, 2.0, size=20000)
        out = calibrate_mean(x, target=500.0, cap=10_000.0)
        assert out.mean() == pytest.approx(500.0, rel=0.01)
        assert out.max() <= 10_000.0

    def test_rejects_target_above_cap(self):
        with pytest.raises(ValueError):
            calibrate_mean(np.ones(10), target=100.0, cap=50.0)
