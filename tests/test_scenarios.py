"""Scenario subsystem: registry, spec serialization, the scenario-matrix
pipeline, and the golden equivalences the refactor must preserve — the
default scenario reproduces the pre-scenario code paths bit-identically."""

import dataclasses

import numpy as np
import pytest

import repro
from repro.config import EnvConfig, EvalConfig, RuntimeConfig, ScenarioConfig
from repro.rl import make_reward
from repro.scenarios import (
    DEFAULT_SCENARIO,
    EvalProtocol,
    Scenario,
    WorkloadSpec,
    attach_memory_demands,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.schedulers import FCFS, SJF
from repro.sim import ClusterSpec, SchedGym, mem_demand
from repro.workloads import load_trace

SMALL = EvalConfig(n_sequences=2, sequence_length=24, seed=1)


def small_variant(scenario: Scenario, n_jobs: int = 300) -> Scenario:
    """A registered scenario shrunk for test speed (not re-registered)."""
    return Scenario(
        name=scenario.name,
        description=scenario.description,
        workload=dataclasses.replace(scenario.workload, n_jobs=n_jobs),
        cluster=scenario.cluster,
        protocol=scenario.protocol,
    )


class TestRegistry:
    def test_at_least_six_builtins(self):
        assert len(available_scenarios()) >= 6

    def test_default_scenario_registered(self):
        assert DEFAULT_SCENARIO in available_scenarios()

    def test_get_scenario_passthrough_and_errors(self):
        s = get_scenario(DEFAULT_SCENARIO)
        assert get_scenario(s) is s
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_register_rejects_duplicates(self):
        s = get_scenario(DEFAULT_SCENARIO)
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(s)
        assert register_scenario(s, overwrite=True) is s

    def test_every_builtin_builds_a_trace(self):
        for name in available_scenarios():
            scen = get_scenario(name)
            trace = scen.build_trace(n_jobs=120)
            assert len(trace) == 120
            # every job must fit the scenario cluster (engine precondition)
            for j in trace.jobs:
                assert j.requested_procs <= scen.cluster.n_procs
                assert mem_demand(j) <= scen.cluster.total_mem


class TestSerialization:
    def test_scenario_dict_roundtrip(self):
        for name in available_scenarios():
            scen = get_scenario(name)
            assert Scenario.from_dict(scen.to_dict()) == scen

    def test_workload_params_accept_mapping(self):
        a = WorkloadSpec(trace="Lublin-1", params={"n_procs": 64})
        b = WorkloadSpec(trace="Lublin-1", params=(("n_procs", 64),))
        assert a == b

    def test_workload_rejects_overrides_for_unknown_generator(self):
        with pytest.raises(ValueError, match="no generator overrides"):
            WorkloadSpec(trace="NotATrace", params={"x": 1}).build(n_jobs=10)

    def test_scenario_config_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(name="")
        with pytest.raises(ValueError):
            ScenarioConfig(name="x", n_jobs=0)
        with pytest.raises(TypeError):
            EvalConfig(scenario="lublin-256")  # must be a ScenarioConfig


class TestWorkloadVariants:
    def test_param_overrides_change_the_trace(self):
        base = WorkloadSpec(trace="Lublin-1", n_jobs=400)
        diurnal = WorkloadSpec(
            trace="Lublin-1", n_jobs=400, params={"daily_cycle_strength": 0.9}
        )
        t0, t1 = base.build(), diurnal.build()
        assert [j.submit_time for j in t0] != [j.submit_time for j in t1]

    def test_default_spec_matches_load_trace_exactly(self):
        """No overrides -> byte-identical to load_trace (golden property)."""
        spec = WorkloadSpec(trace="Lublin-1", n_jobs=300, seed=5)
        a, b = spec.build(), load_trace("Lublin-1", n_jobs=300, seed=5)
        assert [(j.job_id, j.submit_time, j.run_time, j.requested_procs)
                for j in a] == \
               [(j.job_id, j.submit_time, j.run_time, j.requested_procs)
                for j in b]

    def test_memory_demands_are_seeded_and_capped(self):
        trace = load_trace("Lublin-1", n_jobs=200, seed=0)
        a = attach_memory_demands(trace, 1.0, seed=3, cap_total=50.0)
        b = attach_memory_demands(trace, 1.0, seed=3, cap_total=50.0)
        c = attach_memory_demands(trace, 1.0, seed=4, cap_total=50.0)
        assert [j.requested_mem for j in a] == [j.requested_mem for j in b]
        assert [j.requested_mem for j in a] != [j.requested_mem for j in c]
        assert all(mem_demand(j) <= 50.0 + 1e-9 for j in a)
        assert all(j.requested_mem > 0 for j in a)

    def test_mem_scenario_trace_is_memory_constrained(self):
        scen = get_scenario("lublin-256-mem")
        trace = scen.build_trace(n_jobs=300)
        demands = [mem_demand(j) for j in trace.jobs]
        assert all(d > 0 for d in demands)
        assert max(d / scen.cluster.total_mem for d in demands) > 0.1

    def test_mem_demands_fit_capacity_at_full_scenario_size(self):
        """Regression: clamping per-proc memory as cap/procs could round
        so that demand * procs overshot the cap by an ulp, and the engine
        rejected the scenario's own default workload."""
        scen = get_scenario("lublin-256-mem")
        trace = scen.build_trace()  # the full default size, all seeds' jobs
        cap = scen.cluster.total_mem
        assert all(mem_demand(j) <= cap for j in trace.jobs)
        # the clamp actually binds for wide jobs (not vacuously true)
        assert any(mem_demand(j) == cap for j in trace.jobs)


class TestEnvConfigHelper:
    def test_memory_scenario_enables_memory_features(self):
        scen = get_scenario("lublin-256-mem")
        cfg = scen.env_config()
        assert cfg.memory_features and cfg.job_features >= 9

    def test_default_scenario_keeps_base_config(self):
        base = EnvConfig(max_obsv_size=16)
        assert get_scenario(DEFAULT_SCENARIO).env_config(base) is base

    def test_protocol_backfill_reaches_training_env(self):
        """Regression: a policy trained via TrainConfig.scenario on a
        backfill scenario must train in the backfilling environment its
        evaluation protocol scores it in."""
        scen = get_scenario("pik-iplex")
        assert scen.env_config().backfill is True
        # an explicit base backfill mode is respected, not overridden
        base = EnvConfig(backfill="conservative")
        assert scen.env_config(base).backfill == "conservative"


class TestGoldenEquivalence:
    """The acceptance pins: the default scenario reproduces the historical
    hard-coded paths bit-for-bit."""

    def test_default_scenario_rollout_bit_identical(self):
        """SchedGym driven through the scenario (ClusterSpec cluster,
        scenario-built trace) == the pre-scenario construction (bare
        n_procs, load_trace) — identical observations, masks, rewards."""
        scen = get_scenario(DEFAULT_SCENARIO)
        trace_new = scen.build_trace(n_jobs=300, seed=7)
        trace_old = load_trace("Lublin-1", n_jobs=300, seed=7)
        jobs_new = trace_new.jobs[:48]
        jobs_old = trace_old.jobs[:48]

        env_new = SchedGym(scen.cluster, make_reward("bsld"),
                           config=EnvConfig(max_obsv_size=16))
        env_old = SchedGym(256, make_reward("bsld"),
                           config=EnvConfig(max_obsv_size=16))
        obs_n, mask_n = env_new.reset([j.copy() for j in jobs_new])
        obs_o, mask_o = env_old.reset([j.copy() for j in jobs_old])
        rng = np.random.default_rng(0)
        while True:
            assert np.array_equal(obs_n, obs_o)
            assert np.array_equal(mask_n, mask_o)
            action = int(rng.choice(np.flatnonzero(mask_n)))
            rn = env_new.step(action)
            ro = env_old.step(action)
            assert rn.reward == ro.reward and rn.done == ro.done
            if rn.done:
                break
            obs_n, mask_n = rn.observation, rn.action_mask
            obs_o, mask_o = ro.observation, ro.action_mask

    def test_default_scenario_evaluate_matches_plain_trace(self):
        """api.evaluate through the scenario config == the historical
        trace-first call, value for value."""
        scen = get_scenario(DEFAULT_SCENARIO)
        trace = load_trace("Lublin-1", n_jobs=300, seed=0)
        plain = repro.evaluate(SJF(), trace, metric="bsld", config=SMALL)
        via_scenario = repro.evaluate(
            SJF(),
            config=EvalConfig(
                n_sequences=SMALL.n_sequences,
                sequence_length=SMALL.sequence_length,
                seed=SMALL.seed,
                scenario=ScenarioConfig(name=scen.name, n_jobs=300, seed=0),
            ),
        )
        assert list(plain.values) == list(via_scenario.values)


class TestScenarioEvaluation:
    def test_evaluate_works_for_every_registered_scenario(self):
        for name in available_scenarios():
            scen = small_variant(get_scenario(name))
            result = repro.evaluate(FCFS(), scen, config=SMALL)
            assert np.isfinite(float(result))
            assert result.n == SMALL.n_sequences

    def test_scenario_protocol_defaults_apply(self):
        """pik-iplex's protocol carries backfill=True; explicit args
        override it."""
        scen = small_variant(get_scenario("pik-iplex"))
        with_proto = repro.evaluate(SJF(), scen, config=SMALL)
        no_backfill = repro.evaluate(SJF(), scen, backfill=False, config=SMALL)
        # Same sequences; only the backfill mode differs.  (Values may
        # coincide on easy windows, so compare against the explicit call.)
        with_backfill = repro.evaluate(SJF(), scen, backfill=True, config=SMALL)
        assert list(with_proto.values) == list(with_backfill.values)
        assert with_proto.n == no_backfill.n

    def test_trace_or_scenario_required(self):
        with pytest.raises(ValueError, match="pass a trace"):
            repro.evaluate(SJF())

    def test_explicit_trace_wins_over_config_scenario(self):
        """Regression: an explicitly passed trace must be evaluated (on
        the scenario's cluster), never silently replaced by the scenario
        workload — the Trainer precedence."""
        trace = load_trace("Lublin-1", n_jobs=300, seed=0)
        combined = repro.evaluate(
            SJF(), trace,
            config=EvalConfig(
                n_sequences=SMALL.n_sequences,
                sequence_length=SMALL.sequence_length,
                seed=SMALL.seed,
                scenario=ScenarioConfig(name="lublin-256-mem", n_jobs=300),
            ),
        )
        # The explicit trace carries no memory demands, so the scenario's
        # 192-unit memory never binds and the values equal a plain eval —
        # proof the caller's trace (not the scenario workload, whose jobs
        # all carry demands) was simulated.
        plain = repro.evaluate(SJF(), trace, config=SMALL)
        assert list(combined.values) == list(plain.values)


class TestScenarioMatrix:
    def _small_matrix(self, runtime=None):
        cfg = EvalConfig(n_sequences=2, sequence_length=24, seed=3,
                         runtime=runtime or RuntimeConfig())
        return repro.scenario_matrix(
            [FCFS(), SJF()],
            ["lublin-256", "lublin-256-mem"],
            config=cfg,
            n_jobs=300,
        )

    def test_shape_and_order(self):
        m = self._small_matrix()
        assert list(m) == ["lublin-256", "lublin-256-mem"]
        for row in m.values():
            assert list(row) == ["FCFS", "SJF"]
            for r in row.values():
                assert r.n == 2 and np.isfinite(float(r))

    def test_matrix_cell_equals_direct_evaluate(self):
        """Each matrix cell must equal an independent evaluate() on the
        same scenario/config — the matrix is a fan-out, not a new
        protocol."""
        m = self._small_matrix()
        cfg = EvalConfig(n_sequences=2, sequence_length=24, seed=3)
        for name in ("lublin-256", "lublin-256-mem"):
            scen = small_variant(get_scenario(name))
            direct = repro.evaluate(FCFS(), scen, config=cfg)
            assert list(m[name]["FCFS"].values) == list(direct.values)

    def test_process_backend_bit_identical(self):
        serial = self._small_matrix()
        process = self._small_matrix(
            runtime=RuntimeConfig(backend="process", workers=2)
        )
        for name, row in serial.items():
            for sched, r in row.items():
                assert list(r.values) == list(process[name][sched].values)

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            repro.scenario_matrix([FCFS()], ["lublin-256", "lublin-256"])


class TestMemoryFeatures:
    def test_observation_columns(self):
        """Memory features appear in columns 7/8 and the 7-feature core
        stays bit-identical."""
        scen = get_scenario("lublin-256-mem")
        trace = scen.build_trace(n_jobs=120)
        jobs = trace.jobs[:24]

        base_cfg = EnvConfig(max_obsv_size=8)
        mem_cfg = EnvConfig(max_obsv_size=8, job_features=9,
                            memory_features=True)
        env_base = SchedGym(scen.cluster, make_reward("bsld"), config=base_cfg)
        env_mem = SchedGym(scen.cluster, make_reward("bsld"), config=mem_cfg)
        obs_b, _ = env_base.reset([j.copy() for j in jobs])
        obs_m, mask = env_mem.reset([j.copy() for j in jobs])
        k = int(mask.sum())
        assert np.array_equal(obs_m[:, :7], obs_b)  # core layout unchanged
        assert (obs_m[:k, 7] > 0).all()             # demand fractions
        assert np.allclose(obs_m[:k, 8], 1.0)       # idle cluster: all free
        assert np.all(obs_m[k:] == 0.0)             # padded rows stay zero

    def test_loop_builder_matches_vectorized(self):
        from repro.sim import build_observation, build_observation_loop

        scen = get_scenario("lublin-256-mem")
        trace = scen.build_trace(n_jobs=60)
        cfg = EnvConfig(max_obsv_size=16, job_features=9, memory_features=True)
        pending = trace.jobs[:10]
        a = build_observation(pending, 50.0, 100, 256, cfg,
                              free_mem=120.0, total_mem=192.0)
        b = build_observation_loop(pending, 50.0, 100, 256, cfg,
                                   free_mem=120.0, total_mem=192.0)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_memory_features_need_nine_columns(self):
        with pytest.raises(ValueError, match="job_features >= 9"):
            EnvConfig(memory_features=True)


class TestScenarioTraining:
    def test_train_config_scenario_end_to_end(self):
        from repro.config import PPOConfig, TrainConfig

        result = repro.train(
            None,
            metric="bsld",
            env_config=EnvConfig(max_obsv_size=8),
            ppo_config=PPOConfig(train_pi_iters=2, train_v_iters=2),
            train_config=TrainConfig(
                epochs=1, trajectories_per_epoch=2, trajectory_length=12,
                seed=0,
                scenario=ScenarioConfig(name="lublin-256-mem", n_jobs=300),
            ),
        )
        assert result.n_procs == 256
        # memory scenario training upgraded the feature config
        assert result.env_config.memory_features
        sched = result.as_scheduler()
        scen = small_variant(get_scenario("lublin-256-mem"))
        score = repro.evaluate(sched, scen, config=SMALL)
        assert np.isfinite(float(score))

    def test_trainer_requires_trace_or_scenario(self):
        with pytest.raises(ValueError, match="needs a trace"):
            repro.Trainer(None)
