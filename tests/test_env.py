"""Unit tests for SchedGym: observation building, masking, rewards, episodes."""

import numpy as np
import pytest

from repro.config import EnvConfig
from repro.rl import make_reward
from repro.sim import SchedGym
from repro.sim.env import build_observation
from repro.sim.cluster import Cluster
from repro.workloads import Job


def job(jid, submit, run, procs, req_time=None, user=0):
    return Job(
        job_id=jid, submit_time=submit, run_time=run, requested_procs=procs,
        requested_time=req_time if req_time is not None else run, user_id=user,
    )


@pytest.fixture()
def env():
    return SchedGym(
        n_procs=8,
        reward_fn=make_reward("bsld"),
        config=EnvConfig(max_obsv_size=4),
    )


class TestBuildObservation:
    def test_shapes(self):
        cfg = EnvConfig(max_obsv_size=4)
        jobs = [job(1, 0, 10, 2)]
        obs, mask, visible = build_observation(jobs, 5.0, 8, 8, cfg)
        assert obs.shape == (4, cfg.job_features)
        assert mask.tolist() == [True, False, False, False]
        assert visible == jobs

    def test_padding_rows_zero(self):
        cfg = EnvConfig(max_obsv_size=4)
        obs, _, _ = build_observation([job(1, 0, 10, 2)], 0.0, 8, 8, cfg)
        assert (obs[1:] == 0).all()
        assert obs[0, 6] == 1.0  # validity flag of the real row

    def test_fcfs_cutoff(self):
        cfg = EnvConfig(max_obsv_size=2)
        jobs = [job(i, submit=10 - i, run=10, procs=1) for i in range(1, 5)]
        _, mask, visible = build_observation(jobs, 20.0, 8, 8, cfg)
        # earliest submit times win the visible slots
        assert [j.job_id for j in visible] == [4, 3]
        assert mask.sum() == 2

    def test_can_run_flag(self):
        cfg = EnvConfig(max_obsv_size=4)
        jobs = [job(1, 0, 10, 2), job(2, 0, 10, 8)]
        obs, _, visible = build_observation(jobs, 0.0, 4, 8, cfg)
        flags = {v.job_id: obs[i, 4] for i, v in enumerate(visible)}
        assert flags[1] == 1.0 and flags[2] == 0.0

    def test_features_in_unit_range(self, lublin_trace):
        cfg = EnvConfig()
        jobs = [j.copy() for j in lublin_trace.jobs[:200]]
        obs, _, _ = build_observation(jobs, 1e6, 100, 256, cfg)
        assert (obs >= 0).all() and (obs <= 1).all()


class TestEpisode:
    def test_reset_returns_obs_and_mask(self, env):
        obs, mask = env.reset([job(1, 0, 10, 2)])
        assert obs.shape == (4, env.config.job_features)
        assert mask[0]

    def test_step_before_reset_raises(self):
        e = SchedGym(8, make_reward("bsld"))
        with pytest.raises(RuntimeError, match="reset"):
            e.step(0)

    def test_single_job_episode(self, env):
        env.reset([job(1, 0, 10, 2)])
        result = env.step(0)
        assert result.done
        # lone job never waits: bsld = 1, reward = -1
        assert result.reward == pytest.approx(-1.0)

    def test_action_out_of_range(self, env):
        env.reset([job(1, 0, 10, 2)])
        with pytest.raises(ValueError, match="out of range"):
            env.step(7)

    def test_padded_slot_rejected(self, env):
        env.reset([job(1, 0, 10, 2)])
        with pytest.raises(ValueError, match="padded slot"):
            env.step(2)

    def test_step_after_done_raises(self, env):
        env.reset([job(1, 0, 10, 2)])
        result = env.step(0)
        assert result.done
        with pytest.raises(RuntimeError, match="episode is over"):
            env.step(0)

    def test_intermediate_rewards_zero(self, env):
        jobs = [job(i, 0, 10, 2) for i in range(1, 4)]
        env.reset(jobs)
        r1 = env.step(0)
        assert r1.reward == 0.0 and not r1.done

    def test_episode_completes_all_jobs(self, env):
        jobs = [job(i, i * 2.0, 10, 2) for i in range(1, 6)]
        obs, mask = env.reset(jobs)
        steps = 0
        done = False
        while not done:
            action = int(np.flatnonzero(mask)[0])
            result = env.step(action)
            obs, mask, done = result.observation, result.action_mask, result.done
            steps += 1
        assert steps == 5
        assert len(result.info["completed"]) == 5

    def test_reward_sign_matches_metric(self):
        """util is maximised: reward must be positive; bsld negated."""
        jobs = [job(1, 0, 100, 4)]
        util_env = SchedGym(8, make_reward("util"), EnvConfig(max_obsv_size=4))
        util_env.reset([j.copy() for j in jobs])
        r = util_env.step(0)
        assert r.reward == pytest.approx(0.5)  # 4 of 8 procs busy for full span

    def test_fcfs_policy_reproduces_run_scheduler(self, lublin_trace):
        """Stepping the env FCFS-greedily equals run_scheduler(FCFS)."""
        from repro.schedulers import FCFS
        from repro.sim import run_scheduler
        from repro.sim.metrics import average_bounded_slowdown

        seq = [j.copy() for j in lublin_trace.jobs[:60]]
        env = SchedGym(
            lublin_trace.max_procs, make_reward("bsld"), EnvConfig(max_obsv_size=128)
        )
        obs, mask = env.reset([j.copy() for j in seq])
        done = False
        while not done:
            result = env.step(0)  # slot 0 is FCFS-first by construction
            mask, done = result.action_mask, result.done
        env_bsld = -result.reward
        ref = run_scheduler(seq, lublin_trace.max_procs, FCFS())
        assert env_bsld == pytest.approx(average_bounded_slowdown(ref))
