"""Unit tests for the autodiff engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor, no_grad


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(op, shape=(3, 4), seed=0, positive=False):
    """Compare autodiff gradient of sum(op(x)) with central differences."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    if positive:
        x = np.abs(x) + 0.5
    t = Parameter(x.copy())
    out = op(t).sum()
    out.backward()

    def f(arr):
        return float(op(Tensor(arr)).sum().numpy())

    num = numerical_grad(f, x.copy())
    np.testing.assert_allclose(t.grad, num, rtol=1e-5, atol=1e-7)


class TestElementwiseGradients:
    def test_add(self):
        check_grad(lambda t: t + 3.0)

    def test_mul(self):
        check_grad(lambda t: t * t)

    def test_sub_neg(self):
        check_grad(lambda t: 5.0 - t)

    def test_div(self):
        check_grad(lambda t: 1.0 / t, positive=True)

    def test_pow(self):
        check_grad(lambda t: t**3.0)

    def test_exp(self):
        check_grad(lambda t: t.exp())

    def test_log(self):
        check_grad(lambda t: t.log(), positive=True)

    def test_tanh(self):
        check_grad(lambda t: t.tanh())

    def test_relu(self):
        check_grad(lambda t: t.relu())

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid())

    def test_chained(self):
        check_grad(lambda t: ((t * 2.0).tanh() + t.relu()).exp() * 0.1)


class TestBroadcasting:
    def test_broadcast_add_gradients(self):
        a = Parameter(np.ones((3, 4)))
        b = Parameter(np.ones((1, 4)))
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (1, 4)
        np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))

    def test_scalar_broadcast(self):
        a = Parameter(np.ones((2, 3)))
        s = Parameter(np.array(2.0))
        (a * s).sum().backward()
        np.testing.assert_allclose(s.grad, 6.0)

    def test_row_times_matrix(self):
        rng = np.random.default_rng(1)
        m = rng.normal(size=(3, 4))
        r = Parameter(rng.normal(size=(4,)))
        out = (Tensor(m) * r).sum()
        out.backward()
        np.testing.assert_allclose(r.grad, m.sum(axis=0))


class TestMatmul:
    def test_forward(self):
        a = Tensor(np.eye(3))
        b = Tensor(np.arange(9.0).reshape(3, 3))
        np.testing.assert_allclose((a @ b).numpy(), b.numpy())

    def test_gradients(self):
        rng = np.random.default_rng(2)
        a = Parameter(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4, 2)))
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 3)))


class TestReductionsShapes:
    def test_sum_axis_grad(self):
        check_grad(lambda t: t.sum(axis=1) * 2.0)

    def test_sum_keepdims_grad(self):
        check_grad(lambda t: t.sum(axis=0, keepdims=True).exp())

    def test_mean(self):
        t = Parameter(np.arange(6.0).reshape(2, 3))
        m = t.mean()
        assert m.item() == pytest.approx(2.5)
        m.backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 1 / 6))

    def test_mean_axis(self):
        check_grad(lambda t: t.mean(axis=1))

    def test_reshape_grad(self):
        check_grad(lambda t: t.reshape(12).tanh(), shape=(3, 4))

    def test_transpose_grad(self):
        check_grad(lambda t: (t.T @ Tensor(np.ones((3, 2)))), shape=(3, 4))

    def test_getitem_grad(self):
        t = Parameter(np.arange(12.0).reshape(3, 4))
        t[1].sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_fancy_index_grad_accumulates(self):
        t = Parameter(np.arange(4.0))
        idx = np.array([0, 0, 2])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])


class TestClipMinimum:
    def test_clip_grad_masked(self):
        t = Parameter(np.array([-2.0, 0.5, 2.0]))
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_minimum_grad_routing(self):
        a = Parameter(np.array([1.0, 5.0]))
        b = Parameter(np.array([3.0, 2.0]))
        a.minimum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_maximum_grad_routing(self):
        a = Parameter(np.array([1.0, 5.0]))
        b = Parameter(np.array([3.0, 2.0]))
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_where(self):
        a = Parameter(np.array([1.0, 2.0]))
        b = Parameter(np.array([10.0, 20.0]))
        cond = np.array([True, False])
        out = a.where(cond, b)
        np.testing.assert_allclose(out.numpy(), [1.0, 20.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Parameter(np.array([2.0]))
        (t * 3.0 + t * 4.0).backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_backward_requires_scalar(self):
        t = Parameter(np.ones((2, 2)))
        with pytest.raises(RuntimeError, match="scalar"):
            (t * 2.0).backward()

    def test_backward_on_no_grad_tensor(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.sum().backward()

    def test_no_grad_context(self):
        t = Parameter(np.ones(3))
        with no_grad():
            out = (t * 2.0).sum()
        assert not out.requires_grad

    def test_detach(self):
        t = Parameter(np.ones(3))
        d = t.detach()
        assert not d.requires_grad

    def test_zero_grad(self):
        t = Parameter(np.ones(3))
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_deep_chain_no_recursion_error(self):
        t = Parameter(np.array([0.01]))
        x = t
        for _ in range(3000):
            x = x * 1.0001
        x.sum().backward()  # iterative topo-sort must not overflow
        assert t.grad is not None

    def test_diamond_graph(self):
        t = Parameter(np.array([3.0]))
        a = t * 2.0
        b = t * 5.0
        (a * b).backward()  # d/dt (10 t^2) = 20 t = 60
        np.testing.assert_allclose(t.grad, [60.0])
