"""The cross-scenario generalization study (Table VII pipeline).

Covers the study tentpole end to end at miniature scale: zoo training +
checkpoint resume, the generalization-matrix artifact, serial/process
bit-equality, and the JSON-strictness of the artifact.
"""

import json

import numpy as np
import pytest

from repro.config import RuntimeConfig, StudyConfig
from repro.study import ARTIFACT_SCHEMA, generalization_matrix, train_matrix

SCENARIOS = ("lublin-64", "lublin-256-mem")
HEURISTICS = ("FCFS", "SJF")


def tiny_study_config(zoo_dir, **kw):
    base = dict(
        scenarios=SCENARIOS,
        zoo_dir=str(zoo_dir),
        heuristics=HEURISTICS,
        seed=0,
        epochs=1,
        trajectories_per_epoch=2,
        trajectory_length=12,
        max_obsv_size=8,
        n_jobs=400,
        n_sequences=2,
        sequence_length=24,
    )
    base.update(kw)
    return StudyConfig(**base)


@pytest.fixture(scope="module")
def zoo(tmp_path_factory):
    """A trained two-scenario policy zoo, built once for the module."""
    zoo_dir = tmp_path_factory.mktemp("zoo")
    config = tiny_study_config(zoo_dir)
    trained = train_matrix(config)
    return zoo_dir, config, trained


class TestTrainMatrix:
    def test_trains_one_policy_per_scenario(self, zoo):
        zoo_dir, _, trained = zoo
        assert list(trained) == list(SCENARIOS)
        for name, policy in trained.items():
            assert not policy.from_checkpoint
            assert (zoo_dir / f"{name}.npz").exists()
            assert len(policy.result.curve) == 1

    def test_memory_scenario_trains_memory_featured_policy(self, zoo):
        _, _, trained = zoo
        assert not trained["lublin-64"].result.env_config.memory_features
        assert trained["lublin-256-mem"].result.env_config.memory_features
        assert trained["lublin-256-mem"].result.env_config.job_features >= 9

    def test_resume_skips_training_and_restores_weights(self, zoo):
        zoo_dir, config, trained = zoo
        messages = []
        resumed = train_matrix(config, progress=messages.append)
        for name in SCENARIOS:
            assert resumed[name].from_checkpoint
            fresh = trained[name].result.policy.state_dict()
            restored = resumed[name].result.policy.state_dict()
            for key in fresh:
                np.testing.assert_array_equal(fresh[key], restored[key])
            assert (resumed[name].result.best_epoch
                    == trained[name].result.best_epoch)
        assert sum("skipped (checkpoint exists" in m for m in messages) == 2

    def test_unknown_scenario_fails_before_training(self, tmp_path):
        config = tiny_study_config(tmp_path, scenarios=("nope",))
        with pytest.raises(KeyError, match="unknown scenario"):
            train_matrix(config)
        assert not (tmp_path / "nope.npz").exists()

    def test_checkpoint_records_training_provenance(self, zoo):
        _, config, trained = zoo
        meta = trained["lublin-64"].result.train_meta
        assert meta["seed"] == config.seed
        assert meta["epochs"] == config.epochs
        assert meta["policy_preset"] == config.policy_preset
        # and it survives the npz round trip
        from repro.rl.trainer import TrainingResult

        restored = TrainingResult.load(trained["lublin-64"].checkpoint)
        assert restored.train_meta == meta

    def test_resume_with_drifted_config_warns(self, zoo):
        """Restoring a checkpoint trained under different settings must be
        reported — the checkpoint's own provenance stays authoritative."""
        import dataclasses

        _, config, _ = zoo
        drifted = dataclasses.replace(config, epochs=5, seed=9)
        messages = []
        resumed = train_matrix(drifted, progress=messages.append)
        warnings = [m for m in messages if "different settings" in m]
        assert len(warnings) == 2
        assert "'epochs': (1, 5)" in warnings[0]
        # the artifact reports how the checkpoint was trained, not the
        # drifted run config
        assert resumed["lublin-64"].result.train_meta["epochs"] == 1

    def test_interrupted_save_leaves_no_partial_checkpoint(self, zoo,
                                                           monkeypatch,
                                                           tmp_path):
        """save() is write-then-rename: a crash mid-write must not leave
        a file the zoo's exists() resume check would trust."""
        import numpy as np

        _, _, trained = zoo
        result = trained["lublin-64"].result
        target = tmp_path / "ckpt.npz"

        def partial_write_then_die(path, **kwargs):
            with open(path, "wb") as fh:
                fh.write(b"truncated npz")
            raise KeyboardInterrupt

        monkeypatch.setattr(np, "savez", partial_write_then_die)
        with pytest.raises(KeyboardInterrupt):
            result.save(target)
        # the partial bytes landed in the temp file, never at the final
        # path — a resumed study retrains instead of crashing on garbage
        assert not target.exists()


class TestGeneralizationMatrix:
    @pytest.fixture(scope="class")
    def doc(self, zoo):
        _, config, trained = zoo
        return generalization_matrix(config, trained=trained)

    def test_artifact_shape(self, doc):
        assert doc["schema"] == ARTIFACT_SCHEMA
        assert set(doc["results"]) == set(SCENARIOS)
        columns = ["FCFS", "SJF", "RL-lublin-64", "RL-lublin-256-mem"]
        for row in doc["results"].values():
            assert list(row) == columns
            for cell in row.values():
                assert cell["n"] == 2
                assert len(cell["values"]) == 2
                np.testing.assert_allclose(
                    cell["mean"], np.mean(cell["values"]))
                np.testing.assert_allclose(
                    cell["std"], np.std(cell["values"]))

    def test_compat_modes_recorded(self, doc):
        compat_64 = doc["policies"]["RL-lublin-64"]["compat"]
        compat_mem = doc["policies"]["RL-lublin-256-mem"]["compat"]
        assert compat_64 == {"lublin-64": "native",
                             "lublin-256-mem": "memory-blind"}
        assert compat_mem == {"lublin-64": "memory-neutral",
                              "lublin-256-mem": "native"}

    def test_provenance(self, doc, zoo):
        zoo_dir, _, _ = zoo
        assert set(doc["scenarios"]) == set(SCENARIOS)
        assert doc["scenarios"]["lublin-256-mem"]["cluster"]["memory"] == 192.0
        info = doc["policies"]["RL-lublin-64"]
        assert info["trained_on"] == "lublin-64"
        assert info["checkpoint"] == str(zoo_dir / "lublin-64.npz")
        assert info["n_procs"] == 64
        assert len(info["curve"]["mean_metric"]) == 1

    def test_artifact_is_strict_json(self, doc):
        text = json.dumps(doc, allow_nan=False)
        assert json.loads(text)["schema"] == ARTIFACT_SCHEMA

    def test_process_backend_bit_identical(self, zoo, doc):
        _, config, trained = zoo
        import dataclasses

        parallel = dataclasses.replace(
            config, runtime=RuntimeConfig.from_workers(2))
        doc2 = generalization_matrix(parallel, trained=trained)
        assert doc2["results"] == doc["results"]

    def test_rerun_from_zoo_bit_identical(self, zoo, doc):
        """A resumed study (checkpoints, no retraining) reproduces the
        fresh run's matrix exactly — the resume contract."""
        _, config, _ = zoo
        doc2 = generalization_matrix(config)  # trains nothing: zoo is full
        assert all(p["from_checkpoint"] for p in doc2["policies"].values())
        assert doc2["results"] == doc["results"]

    def test_on_mismatch_fail_raises(self, zoo):
        from repro.config import FeatureLayoutError

        _, config, trained = zoo
        import dataclasses

        strict = dataclasses.replace(config, on_mismatch="fail")
        with pytest.raises(FeatureLayoutError):
            generalization_matrix(strict, trained=trained)


class TestStudyConfig:
    def test_validates_on_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="on_mismatch"):
            tiny_study_config(tmp_path, on_mismatch="explode")

    def test_validates_sizes(self, tmp_path):
        with pytest.raises(ValueError):
            tiny_study_config(tmp_path, epochs=0)
        with pytest.raises(ValueError):
            tiny_study_config(tmp_path, n_sequences=0)

    def test_empty_zoo_dir_rejected(self):
        with pytest.raises(ValueError, match="zoo_dir"):
            StudyConfig(zoo_dir="")


class TestStudyCLI:
    def test_study_command_writes_artifact_and_resumes(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "gen.json"
        argv = [
            "study", "--scenarios", "lublin-64,lublin-256-mem",
            "--heuristics", "FCFS,SJF", "--zoo-dir", str(tmp_path / "zoo"),
            "--jobs", "400", "--epochs", "1", "--trajectories", "2",
            "--length", "12", "--obsv", "8", "--sequences", "2",
            "--eval-length", "24", "-o", str(artifact),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "generalization matrix" in captured.out  # table on stdout
        assert "memory-blind" in captured.err           # diagnostics on stderr
        doc = json.loads(artifact.read_text())
        assert doc["schema"] == ARTIFACT_SCHEMA

        # second run: the zoo is populated, training must be skipped and
        # the artifact reproduced bit-for-bit
        artifact2 = tmp_path / "gen2.json"
        assert main(argv[:-1] + [str(artifact2)]) == 0
        second = capsys.readouterr().err
        assert second.count("skipped (checkpoint exists") == 2
        assert json.loads(artifact2.read_text())["results"] == doc["results"]
