"""Backfill edge cases under multi-resource (processor + memory) constraints:
procs-fit-but-memory-doesn't candidates, shadow-reservation correctness with
memory in the release plan, and empty-queue no-ops."""

import pytest

from repro.sim import (
    Cluster,
    SchedulingEngine,
    backfill_candidates,
    conservative_backfill_candidates,
    shadow_state,
)
from repro.workloads import Job


def job(jid, procs, req_time, submit=0.0, run=None, mem=-1.0):
    return Job(
        job_id=jid,
        submit_time=submit,
        run_time=run if run is not None else req_time,
        requested_procs=procs,
        requested_time=req_time,
        requested_mem=mem,
    )


def running_job(jid, procs, req_time, start, mem=-1.0):
    j = job(jid, procs, req_time, mem=mem)
    j.start_time = start
    return j


class TestShadowState:
    def test_memory_delays_shadow_beyond_processor_fit(self):
        """Head fits procs at the first release but memory only at the
        second — the shadow is the *later* instant."""
        c = Cluster(8, memory=10.0)
        r1 = running_job(1, 4, req_time=100, start=0.0, mem=0.5)  # 2 mem, ends 100
        r2 = running_job(2, 2, req_time=200, start=0.0, mem=3.0)  # 6 mem, ends 200
        c.allocate(r1)
        c.allocate(r2)
        head = job(3, 4, 50, mem=1.5)  # needs 4 procs + 6 mem
        # at t=100: procs free 2+4=6 >= 4, mem free 2+2=4 < 6 -> not yet
        # at t=200: mem free 4+6=10 >= 6 -> shadow
        shadow, extra, extra_mem = shadow_state(head, [r1, r2], c, now=0.0)
        assert shadow == 200.0
        assert extra == 8 - 4
        assert extra_mem == pytest.approx(10.0 - 6.0)

    def test_full_capacity_head_survives_release_order_drift(self):
        """Regression: reassembling the free pool by float summation in
        release order can land an ulp below capacity; a head job that
        demands exactly the cluster memory must still plan a start."""
        c = Cluster(8, memory=10.0)
        runners = [
            running_job(1, 1, req_time=100, start=0.0, mem=0.1),
            running_job(2, 1, req_time=200, start=0.0, mem=0.2),
            running_job(3, 1, req_time=300, start=0.0, mem=0.3),
        ]
        for r in runners:
            c.allocate(r)
        # 10 - 0.1 - 0.2 - 0.3 then + 0.1 + 0.2 + 0.3 reassembles to
        # 9.999999999999998 < 10.0 — the drift this test pins down.
        head = job(4, 8, 50, submit=1.0, mem=1.25)  # exactly 10 mem
        shadow, extra, extra_mem = shadow_state(head, runners, c, now=0.0)
        assert shadow == 300.0
        assert extra == 0
        assert extra_mem == 0.0  # clamped, never an ulp-negative budget

    def test_unconstrained_extra_mem_is_inf(self):
        import math

        c = Cluster(8)
        head = job(1, 4, 100)
        shadow, extra, extra_mem = shadow_state(head, [], c, now=5.0)
        assert shadow == 5.0 and extra == 4
        assert math.isinf(extra_mem)


class TestCandidatesUnderMemory:
    def _blocked_head(self):
        """8 procs / 10 mem; 6 procs + 6 mem busy until t=100; head wants
        everything, so shadow = 100 and extra = extra_mem = 0."""
        c = Cluster(8, memory=10.0)
        r = running_job(1, 6, req_time=100, start=0.0, mem=1.0)  # 6 mem
        c.allocate(r)
        head = job(2, 8, 50, submit=1.0, mem=1.25)  # 10 mem at shadow
        return c, r, head

    def test_fits_procs_but_not_memory_is_skipped(self):
        c, r, head = self._blocked_head()
        # 2 procs / 4 mem free; candidate fits procs and ends before the
        # shadow, but wants 2*2.5 = 5 mem > 4 free.
        cand = job(3, 2, 90, submit=2.0, mem=2.5)
        assert backfill_candidates(head, [head, cand], [r], c, now=0.0) == []
        assert conservative_backfill_candidates(
            head, [head, cand], [r], c, now=0.0
        ) == []

    def test_same_candidate_accepted_when_memory_fits(self):
        c, r, head = self._blocked_head()
        cand = job(3, 2, 90, submit=2.0, mem=2.0)  # 4 mem == 4 free
        assert backfill_candidates(head, [head, cand], [r], c, now=0.0) == [cand]

    def test_memory_extra_budget_blocks_shadow_overrun(self):
        """A candidate that overruns the shadow must fit the *memory*
        head-room reserved for the head job, not just the processor one."""
        c = Cluster(8, memory=10.0)
        r = running_job(1, 6, req_time=100, start=0.0, mem=1.0)  # 6 mem
        c.allocate(r)
        head = job(2, 4, 50, submit=1.0, mem=1.5)  # at shadow: extra=4, extra_mem=4
        # Overruns shadow; 2 procs <= extra 4, but 2*2.5=5 mem > extra_mem 4.
        over_mem = job(3, 2, 1000, submit=2.0, mem=2.5)
        assert backfill_candidates(head, [head, over_mem], [r], c, now=0.0) == []
        # Same shape within the memory budget is accepted.
        ok = job(4, 2, 1000, submit=2.0, mem=2.0)
        assert backfill_candidates(head, [head, ok], [r], c, now=0.0) == [ok]

    def test_memory_extra_budget_consumed_in_order(self):
        c = Cluster(8, memory=10.0)
        r = running_job(1, 4, req_time=100, start=0.0, mem=0.5)  # 2 mem
        c.allocate(r)
        # Head needs 6 procs (> 4 free): shadow = 100, where extra = 2
        # procs and extra_mem = 10 - 3 = 7.
        head = job(2, 6, 50, submit=1.0, mem=0.5)
        # Both candidates overrun the shadow; each consumes 4 of extra_mem.
        c1 = job(3, 1, 1000, submit=2.0, mem=4.0)
        c2 = job(4, 1, 1000, submit=3.0, mem=4.0)
        chosen = backfill_candidates(head, [head, c1, c2], [r], c, now=0.0)
        # c1 leaves extra_mem = 3 < 4, so c2 is rejected on memory alone
        # (its single proc would still fit extra = 1).
        assert chosen == [c1]

    def test_empty_queue_is_a_noop(self):
        c, r, head = self._blocked_head()
        assert backfill_candidates(head, [head], [r], c, now=0.0) == []
        assert backfill_candidates(head, [], [r], c, now=0.0) == []
        assert conservative_backfill_candidates(head, [], [r], c, now=0.0) == []


class TestEngineShadowReservation:
    def test_backfill_never_delays_head_under_memory_pressure(self):
        """Engine-level shadow-reservation correctness: with EASY backfill
        on a memory-constrained cluster, the committed head job must start
        no later than its planned shadow time."""
        from repro.sim.cluster import ClusterSpec

        jobs = [
            job(1, 6, 100, submit=0.0, mem=1.0),   # occupies 6 procs/6 mem
            job(2, 8, 50, submit=1.0, mem=1.25),   # the head: full machine
            job(3, 2, 40, submit=2.0, mem=2.0),    # backfillable (4 mem)
            job(4, 2, 40, submit=3.0, mem=2.5),    # procs fit, memory not
        ]
        engine = SchedulingEngine(
            jobs, ClusterSpec(8, memory=10.0), backfill=True
        )
        engine.advance_until_decision()
        # FCFS walk: job 1 starts immediately; commit job 2 (blocked head).
        engine.commit(engine.pending[0])
        engine.advance_until_decision()
        head = engine.pending[0]
        assert head.job_id == 2
        shadow, _, _ = shadow_state(
            head, engine.running, engine.cluster, engine.now
        )
        engine.commit(head)
        assert head.start_time <= shadow
        # Job 3 was backfilled before the head started; job 4 was not.
        j3 = next(j for j in engine.jobs if j.job_id == 3)
        assert j3.start_time >= 0 and j3.start_time < head.start_time
        while engine.advance_until_decision():
            engine.commit(engine.pending[0])
        assert engine.done

    def test_commit_with_only_head_pending_waits_cleanly(self):
        """Empty-queue no-op at engine level: committing the only pending
        job triggers backfill passes over an empty candidate set."""
        from repro.sim.cluster import ClusterSpec

        jobs = [
            job(1, 8, 60, submit=0.0, mem=1.0),
            job(2, 8, 60, submit=1.0, mem=1.0),
        ]
        engine = SchedulingEngine(jobs, ClusterSpec(8, memory=10.0), backfill=True)
        engine.advance_until_decision()
        engine.commit(engine.pending[0])
        engine.advance_until_decision()
        engine.commit(engine.pending[0])  # must wait for job 1; no candidates
        assert engine.jobs[1].start_time == pytest.approx(60.0)
        while engine.advance_until_decision():
            engine.commit(engine.pending[0])
        assert engine.done
