"""Shared fixtures: small traces and job sequences used across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import Job, SWFHeader, SWFTrace, load_trace


@pytest.fixture(scope="session")
def lublin_trace() -> SWFTrace:
    """A 2000-job Lublin-1 trace (session-scoped: generation is not free)."""
    return load_trace("Lublin-1", n_jobs=2000, seed=7)


@pytest.fixture(scope="session")
def sdsc_trace() -> SWFTrace:
    return load_trace("SDSC-SP2", n_jobs=2000, seed=7)


@pytest.fixture()
def tiny_jobs() -> list[Job]:
    """Four hand-built jobs on a 4-proc cluster exercising queueing."""
    return [
        Job(job_id=1, submit_time=0.0, run_time=100.0, requested_procs=2,
            requested_time=120.0, user_id=1),
        Job(job_id=2, submit_time=0.0, run_time=50.0, requested_procs=2,
            requested_time=60.0, user_id=2),
        Job(job_id=3, submit_time=10.0, run_time=10.0, requested_procs=4,
            requested_time=20.0, user_id=1),
        Job(job_id=4, submit_time=20.0, run_time=10.0, requested_procs=1,
            requested_time=15.0, user_id=2),
    ]


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def make_trace(jobs: list[Job], n_procs: int, name: str = "test") -> SWFTrace:
    """Helper to wrap hand-built jobs into a trace."""
    return SWFTrace(jobs=jobs, header=SWFHeader(max_procs=n_procs), name=name)
