"""Remaining NN-stack corners: tensor dunder behaviour, Sequential, misc."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    KernelPolicy,
    Parameter,
    Sequential,
    Tensor,
    ValueMLP,
    no_grad,
)


class TestTensorDunders:
    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_grad(self):
        assert "grad" in repr(Parameter(np.zeros(2)))
        assert "grad" not in repr(Tensor(np.zeros(2)))

    def test_item_requires_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_radd_rmul_with_arrays(self):
        t = Tensor(np.ones(3))
        out = np.array([1.0, 2.0, 3.0]) + t
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.numpy(), [2.0, 3.0, 4.0])
        out2 = 2.0 * t
        np.testing.assert_allclose(out2.numpy(), [2.0, 2.0, 2.0])

    def test_rtruediv(self):
        t = Tensor(np.array([2.0, 4.0]))
        np.testing.assert_allclose((8.0 / t).numpy(), [4.0, 2.0])

    def test_rsub(self):
        t = Tensor(np.array([1.0]))
        np.testing.assert_allclose((10.0 - t).numpy(), [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_size_ndim(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.size == 6 and t.ndim == 2


class TestNoGradSemantics:
    def test_nested_restores(self):
        t = Parameter(np.ones(2))
        with no_grad():
            with no_grad():
                pass
            inner = (t * 2.0).sum()
            assert not inner.requires_grad
        outer = (t * 2.0).sum()
        assert outer.requires_grad

    def test_parameter_created_under_no_grad_still_trains(self):
        with no_grad():
            p = Parameter(np.ones(2))
        assert p.requires_grad


class TestSequential:
    def test_empty_sequential_is_identity(self):
        x = Tensor(np.ones(3))
        assert Sequential()(x) is x

    def test_composition_order(self):
        rng = np.random.default_rng(0)
        a, b = Dense(2, 2, rng=rng), Dense(2, 2, rng=rng)
        x = Tensor(np.ones((1, 2)))
        np.testing.assert_allclose(
            Sequential(a, b)(x).numpy(), b(a(x)).numpy()
        )


class TestNetworkDeterminism:
    def test_same_seed_same_weights(self):
        a = KernelPolicy(7, seed=5)
        b = KernelPolicy(7, seed=5)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = KernelPolicy(7, seed=5)
        b = KernelPolicy(7, seed=6)
        assert any(
            not np.allclose(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
        )

    def test_value_mlp_batch_consistency(self):
        net = ValueMLP(8, 7, seed=0)
        obs = np.random.default_rng(1).random((4, 8, 7))
        batch = net(obs).numpy()
        singles = np.array([float(net(obs[i]).numpy()[0]) for i in range(4)])
        np.testing.assert_allclose(batch, singles, rtol=1e-12)
