"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "Lublin-1"])

    def test_unknown_trace_rejected_by_generate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "NOPE", "-o", "x.swf"])

    def test_metric_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "Lublin-1", "--metric", "xyz"])

    def test_workers_defaults_to_one(self):
        args = build_parser().parse_args(["evaluate", "Lublin-1"])
        assert args.workers == 1
        args = build_parser().parse_args(["train", "Lublin-1", "-o", "m.npz"])
        assert args.workers == 1

    def test_workers_rejects_nonpositive(self):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["evaluate", "Lublin-1",
                                           "--workers", bad])
            with pytest.raises(SystemExit):
                build_parser().parse_args(["train", "Lublin-1", "-o", "m.npz",
                                           "--workers", bad])

    def test_rollout_mode_defaults_to_locked(self):
        args = build_parser().parse_args(["train", "Lublin-1", "-o", "m.npz"])
        assert args.rollout_mode == "locked"
        assert args.staleness == 0
        assert args.stale_mode == "drop"
        args = build_parser().parse_args(["study"])
        assert args.rollout_mode == "locked"
        assert args.staleness == 0

    def test_rollout_mode_flags(self):
        args = build_parser().parse_args([
            "train", "Lublin-1", "-o", "m.npz", "--rollout-mode", "async",
            "--staleness", "2", "--stale-mode", "reweight",
        ])
        assert args.rollout_mode == "async"
        assert args.staleness == 2
        assert args.stale_mode == "reweight"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "Lublin-1", "-o", "m.npz",
                                       "--rollout-mode", "sync"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "Lublin-1", "-o", "m.npz",
                                       "--staleness", "-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--staleness", "-1"])

    def test_verbosity_flags_are_global(self):
        args = build_parser().parse_args(["-v", "evaluate", "Lublin-1"])
        assert args.verbose and not args.quiet
        args = build_parser().parse_args(["--quiet", "traces"])
        assert args.quiet and not args.verbose
        args = build_parser().parse_args(["evaluate", "Lublin-1"])
        assert not args.verbose and not args.quiet

    def test_telemetry_flag_on_run_commands(self):
        for argv in (
            ["evaluate", "Lublin-1", "--telemetry", "t.jsonl"],
            ["train", "Lublin-1", "-o", "m.npz", "--telemetry", "t.jsonl"],
            ["study", "--telemetry", "t.jsonl"],
        ):
            assert build_parser().parse_args(argv).telemetry == "t.jsonl"
        assert build_parser().parse_args(["evaluate", "Lublin-1"]).telemetry is None
        # telemetry is a run-command knob, not a global one
        with pytest.raises(SystemExit):
            build_parser().parse_args(["traces", "--telemetry", "t.jsonl"])


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces", "--jobs", "200"]) == 0
        out = capsys.readouterr().out
        assert "Lublin-1" in out and "PIK-IPLEX" in out

    def test_generate_writes_swf(self, tmp_path, capsys):
        out_file = tmp_path / "t.swf"
        assert main(["generate", "Lublin-1", "--jobs", "50",
                     "-o", str(out_file)]) == 0
        assert out_file.exists()
        from repro.workloads import read_swf

        assert len(read_swf(out_file)) == 50

    def test_evaluate_prints_all_heuristics(self, capsys):
        code = main(["evaluate", "Lublin-1", "--jobs", "600",
                     "--sequences", "1", "--length", "64"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("FCFS", "SJF", "WFP3", "UNICEP", "F1"):
            assert name in out
        assert "±" in out  # per-sequence spread is part of the row

    def test_evaluate_with_workers_matches_serial(self, capsys):
        serial_args = ["evaluate", "Lublin-1", "--jobs", "600",
                       "--sequences", "2", "--length", "32"]
        assert main(serial_args) == 0
        serial_out = capsys.readouterr().out
        assert main(serial_args + ["--workers", "2"]) == 0
        workers_out = capsys.readouterr().out
        # identical scores, only the workers= header differs
        assert serial_out.splitlines()[1:] == workers_out.splitlines()[1:]

    def test_train_with_workers(self, tmp_path, capsys):
        model = tmp_path / "m.npz"
        code = main([
            "train", "Lublin-1", "--jobs", "600", "--epochs", "1",
            "--trajectories", "2", "--length", "16", "--obsv", "8",
            "--workers", "2", "-o", str(model),
        ])
        assert code == 0
        assert model.exists()

    def test_train_sparse_with_grad_workers(self, tmp_path, capsys):
        model = tmp_path / "m.npz"
        code = main([
            "train", "Lublin-1", "--jobs", "600", "--epochs", "1",
            "--trajectories", "2", "--length", "16", "--obsv", "8",
            "--update-path", "sparse", "--grad-workers", "2",
            "-o", str(model),
        ])
        assert code == 0
        assert model.exists()

    def test_train_with_telemetry_writes_valid_trace(self, tmp_path, capsys):
        from repro.telemetry.sink import validate_jsonl

        model = tmp_path / "m.npz"
        trace = tmp_path / "t.jsonl"
        code = main([
            "train", "Lublin-1", "--jobs", "600", "--epochs", "1",
            "--trajectories", "2", "--length", "16", "--obsv", "8",
            "--telemetry", str(trace), "-o", str(model),
        ])
        assert code == 0
        assert model.exists()
        stats = validate_jsonl(str(trace))
        assert stats["events"]["epoch"] == 1
        assert "epoch.rollout" in stats["snapshot"]["spans"]
        # stdout stays machine-parseable: the result line, no diagnostics
        assert "trained" in capsys.readouterr().out

    def test_evaluate_diagnostics_go_to_stderr(self, capsys):
        code = main(["-v", "evaluate", "Lublin-1", "--jobs", "600",
                     "--sequences", "1", "--length", "32"])
        assert code == 0
        out = capsys.readouterr().out
        # stdout holds only the header + table rows, nothing else
        lines = out.splitlines()
        assert " on " in lines[0]  # "bsld on Lublin-1 (...)" header
        assert all("±" in line for line in lines[1:]), lines

    def test_train_then_evaluate_with_model(self, tmp_path, capsys):
        model = tmp_path / "m.npz"
        code = main([
            "train", "Lublin-1", "--jobs", "600", "--epochs", "1",
            "--trajectories", "2", "--length", "16", "--obsv", "8",
            "-o", str(model),
        ])
        assert code == 0
        assert model.exists()
        code = main([
            "evaluate", "Lublin-1", "--jobs", "600", "--sequences", "1",
            "--length", "32", "--model", str(model),
        ])
        assert code == 0
        assert "RL" in capsys.readouterr().out

    def test_evaluate_uses_swf_dir(self, tmp_path, capsys):
        out_file = tmp_path / "Custom.swf"
        main(["generate", "Lublin-1", "--jobs", "400", "-o", str(out_file)])
        code = main(["evaluate", "Custom", "--jobs", "300",
                     "--sequences", "1", "--length", "32",
                     "--swf-dir", str(tmp_path)])
        assert code == 0
        assert "Custom" in capsys.readouterr().out


class TestScenarioCommands:
    def test_scenarios_lists_registry(self, capsys):
        from repro.scenarios import available_scenarios

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in available_scenarios():
            assert name in out
        assert "lublin-256-mem" in out

    def test_evaluate_scenario(self, capsys):
        code = main(["evaluate", "--scenario", "lublin-64", "--jobs", "400",
                     "--sequences", "1", "--length", "24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario lublin-64" in out
        assert "FCFS" in out

    def test_evaluate_needs_exactly_one_of_name_and_scenario(self, capsys):
        assert main(["evaluate"]) == 2
        assert main(["evaluate", "Lublin-1", "--scenario", "lublin-64"]) == 2

    def test_evaluate_unknown_scenario_fails_loudly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["evaluate", "--scenario", "nope", "--jobs", "300"])

    def test_compare_strips_whitespace_in_scenario_list(self, capsys):
        code = main([
            "compare", "--scenarios", "lublin-256, lublin-64",
            "--schedulers", "FCFS", "--jobs", "400",
            "--sequences", "1", "--length", "16",
        ])
        assert code == 0
        assert "lublin-64" in capsys.readouterr().out

    def test_compare_matrix_with_workers_and_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "matrix.json"
        code = main([
            "compare", "--scenarios", "lublin-256,lublin-64",
            "--schedulers", "FCFS,SJF", "--jobs", "400",
            "--sequences", "2", "--length", "24", "--workers", "2",
            "-o", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lublin-256" in out and "lublin-64" in out

        import json

        doc = json.loads(out_file.read_text())
        assert doc["config"]["schedulers"] == ["FCFS", "SJF"]
        assert set(doc["results"]) == {"lublin-256", "lublin-64"}
        for row in doc["results"].values():
            for cell in row.values():
                assert cell["n"] == 2
                assert len(cell["values"]) == 2

    def test_train_scenario(self, tmp_path, capsys):
        model = tmp_path / "m.npz"
        code = main([
            "train", "--scenario", "lublin-64", "--jobs", "400",
            "--epochs", "1", "--trajectories", "2", "--length", "12",
            "--obsv", "8", "-o", str(model),
        ])
        assert code == 0
        assert model.exists()
        assert "scenario lublin-64" in capsys.readouterr().out


class TestEvaluateBackfillTriState:
    """--backfill/--no-backfill must be able to override the scenario
    protocol in BOTH directions (regression: a backfill-by-default
    scenario could never be evaluated without it from the CLI)."""

    def test_parser_default_is_protocol(self):
        args = build_parser().parse_args(["evaluate", "Lublin-1"])
        assert args.backfill is None
        args = build_parser().parse_args(["evaluate", "Lublin-1", "--backfill"])
        assert args.backfill is True
        args = build_parser().parse_args(["evaluate", "Lublin-1",
                                          "--no-backfill"])
        assert args.backfill is False
        args = build_parser().parse_args(["compare", "--no-backfill"])
        assert args.backfill is False

    def test_backfill_protocol_scenario_can_disable(self, capsys):
        """pik-iplex's protocol enables backfill; --no-backfill wins."""
        base = ["evaluate", "--scenario", "pik-iplex", "--jobs", "300",
                "--sequences", "1", "--length", "12"]
        assert main(base) == 0
        assert "(backfill" in capsys.readouterr().out  # protocol default
        assert main(base + ["--no-backfill"]) == 0
        assert "(no backfill" in capsys.readouterr().out

    def test_plain_trace_default_stays_off(self, capsys):
        assert main(["evaluate", "Lublin-1", "--jobs", "400",
                     "--sequences", "1", "--length", "16"]) == 0
        assert "(no backfill" in capsys.readouterr().out


class TestEvaluateScenarioSeed:
    """--seed must reach the sequence-sampling EvalConfig, not only the
    workload generator (regression: it was pinned to the protocol seed)."""

    @pytest.fixture()
    def captured(self, monkeypatch):
        from repro.api import EvalResult

        calls = {}

        def fake_compare(schedulers, trace, metric=None, backfill=None,
                         config=None):
            calls["config"] = config
            return {"FCFS": EvalResult([1.0])}

        monkeypatch.setattr("repro.cli.compare", fake_compare)
        return calls

    def test_explicit_seed_reaches_sequence_sampling(self, captured, capsys):
        assert main(["evaluate", "--scenario", "lublin-64", "--seed", "7"]) == 0
        assert captured["config"].seed == 7
        assert captured["config"].scenario.seed == 7

    def test_default_keeps_protocol_and_workload_seeds(self, captured, capsys):
        assert main(["evaluate", "--scenario", "lublin-64"]) == 0
        assert captured["config"].seed == 42  # lublin-64 protocol seed
        assert captured["config"].scenario.seed is None  # workload default


class TestTrainSummary:
    """The train report must show the validation-best epoch's curve value
    with direction-aware wording (regression: it printed curve.min(),
    wrong for higher-is-better metrics, next to an unrelated epoch)."""

    @staticmethod
    def result_with_curve(metric, values, best_epoch):
        from repro.rl.ppo import UpdateStats
        from repro.rl.trainer import EpochRecord, TrainingResult

        stats = UpdateStats(policy_loss=0.0, value_loss=0.0, kl=0.0,
                            entropy=0.0, pi_iters_run=1, early_stopped=False)
        curve = [
            EpochRecord(epoch=i, mean_metric=v, mean_reward=v, stats=stats,
                        n_rejected=0, wall_time=0.1, filtered_phase=False)
            for i, v in enumerate(values)
        ]
        return TrainingResult(trace_name="t", metric=metric,
                              policy_preset="kernel", curve=curve,
                              best_epoch=best_epoch)

    def test_higher_is_better_metric_reports_best_epoch_value(self):
        from repro.cli import _train_summary

        # util: higher is better; validation picked epoch 2 (0.70), while
        # curve.min() is 0.50 — the old, doubly-wrong report
        summary = _train_summary(
            self.result_with_curve("util", [0.5, 0.9, 0.7], best_epoch=2))
        assert "0.70" in summary
        assert "epoch 2" in summary
        assert "higher is better" in summary
        assert "0.50" in summary  # only as the epoch-0 starting point

    def test_lower_is_better_metric(self):
        from repro.cli import _train_summary

        summary = _train_summary(
            self.result_with_curve("bsld", [40.0, 12.0, 19.0], best_epoch=1))
        assert "12.00" in summary
        assert "epoch 1" in summary
        assert "lower is better" in summary

    def test_no_validated_epoch_falls_back_to_final(self):
        from repro.cli import _train_summary

        summary = _train_summary(
            self.result_with_curve("bsld", [40.0, 19.0], best_epoch=-1))
        assert "final 19.00" in summary


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7653
        assert args.tenant is None
        assert args.history == 10_000
        assert args.telemetry is None

    def test_tenant_spec_minimal(self):
        from repro.cli import _parse_tenant

        tenant = _parse_tenant("alpha:FCFS:64")
        assert tenant.name == "alpha"
        assert tenant.scheduler == "FCFS"
        assert tenant.n_procs == 64
        assert tenant.backfill is False
        assert tenant.memory is None
        assert tenant.policy_path is None

    def test_tenant_spec_backfill_and_memory(self):
        from repro.cli import _parse_tenant

        assert _parse_tenant("a:SJF:32:easy").backfill == "easy"
        assert _parse_tenant("a:SJF:32:true").backfill is True
        assert _parse_tenant("a:SJF:32:none").backfill is False
        assert _parse_tenant("a:SJF:32:").backfill is False
        tenant = _parse_tenant("a:SJF:32:conservative:4.5")
        assert tenant.backfill == "conservative"
        assert tenant.memory == 4.5

    def test_tenant_spec_policy_path(self):
        import argparse

        from repro.cli import _parse_tenant

        tenant = _parse_tenant("rl:models/best.npz:128")
        assert tenant.scheduler == "RL"
        assert tenant.policy_path == "models/best.npz"
        # a plain heuristic name never becomes a path
        assert _parse_tenant("h:F1:128").policy_path is None

    def test_tenant_spec_rejects_malformed(self):
        import argparse

        from repro.cli import _parse_tenant

        for bad in ("alpha", "alpha:FCFS", "a:FCFS:x", "a:FCFS:0",
                    "a:FCFS:64:bogus", "a:b:c:d:e:f"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_tenant(bad)

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "--stats"])
        assert args.port == 7653
        assert args.tenant is None and not args.drain and not args.stop


class TestSubmitCommand:
    def test_no_action_is_an_error(self, capsys):
        assert main(["submit"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_swf_and_single_job_conflict(self, capsys):
        assert main(["submit", "--swf", "x.swf", "--job-id", "1",
                     "--runtime", "5"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_single_job_needs_id_and_runtime(self, capsys):
        assert main(["submit", "--job-id", "1"]) == 2
        assert main(["submit", "--runtime", "5"]) == 2
        assert "both --job-id and --runtime" in capsys.readouterr().err

    def test_unreachable_daemon_exits_one(self, capsys):
        # port 1 on loopback: nothing listens there
        assert main(["submit", "--port", "1", "--stats"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    @pytest.fixture()
    def daemon(self):
        import asyncio
        import threading
        import time as _time

        from repro.config import ServeConfig, TenantConfig
        from repro.serve import ServeClient, ServeDaemon, ServeError

        config = ServeConfig(port=0, tenants=(
            TenantConfig(name="solo", scheduler="FCFS", n_procs=16),
        ))
        d = ServeDaemon(config)
        thread = threading.Thread(
            target=lambda: asyncio.run(d.run_async()), daemon=True
        )
        thread.start()
        deadline = _time.monotonic() + 15
        while d.address is None and _time.monotonic() < deadline:
            _time.sleep(0.01)
        assert d.address is not None
        yield d
        if thread.is_alive():
            try:
                with ServeClient(*d.address) as client:
                    client.drain(stop=True)
            except ServeError:
                pass
        thread.join(timeout=15)

    def test_single_job_round_trip(self, daemon, capsys):
        import json as _json

        host, port = daemon.address
        base = ["submit", "--host", host, "--port", str(port)]
        assert main(base + ["--job-id", "1", "--runtime", "30",
                            "--procs", "8"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["state"] == "running"
        assert main(base + ["--status", "1"]) == 0
        assert _json.loads(capsys.readouterr().out)["state"] == "running"
        assert main(base + ["--advance", "100", "--stats"]) == 0
        out = capsys.readouterr().out
        assert '"finished": 1' in out

    def test_swf_replay_shares_wire(self, daemon, tmp_path, capsys):
        import json as _json

        from repro.workloads import SWFTrace, load_trace, write_swf

        trace = load_trace("Lublin-1", n_jobs=200, seed=3)
        jobs = [j.copy() for j in trace.jobs[:10]]
        for job in jobs:
            job.requested_procs = min(job.requested_procs, 16)
        write_swf(SWFTrace(jobs=jobs), str(tmp_path / "s.swf"))
        host, port = daemon.address
        assert main(["submit", "--host", host, "--port", str(port),
                     "--swf", str(tmp_path / "s.swf"), "--drain"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["submitted"] == 10
        assert doc["stats"]["finished"] == 10
