"""Unit tests for the Job model (SWF fields, validation, derived metrics)."""

import pytest

from repro.workloads import SWF_FIELD_NAMES, Job


def make(**kw):
    base = dict(job_id=1, submit_time=0.0, run_time=100.0, requested_procs=4)
    base.update(kw)
    return Job(**base)


class TestValidation:
    def test_minimal_construction(self):
        j = make()
        assert j.job_id == 1
        assert j.requested_procs == 4

    def test_rejects_nonpositive_procs(self):
        with pytest.raises(ValueError, match="requested_procs"):
            make(requested_procs=0)
        with pytest.raises(ValueError, match="requested_procs"):
            make(requested_procs=-3)

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError, match="run_time"):
            make(run_time=-1.0)

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError, match="submit_time"):
            make(submit_time=-5.0)

    def test_missing_estimate_falls_back_to_runtime(self):
        j = make(requested_time=-1.0, run_time=500.0)
        assert j.requested_time == 500.0

    def test_missing_estimate_with_zero_runtime_is_one(self):
        j = make(requested_time=-1.0, run_time=0.0)
        assert j.requested_time == 1.0

    def test_explicit_estimate_kept(self):
        j = make(requested_time=999.0)
        assert j.requested_time == 999.0


class TestSymbolicAccessors:
    def test_table1_symbols(self):
        j = make(submit_time=42.0, requested_time=60.0, user_id=9)
        assert j.s_t == 42.0
        assert j.n_t == 4
        assert j.r_t == 60.0
        assert j.u_t == 9


class TestDerived:
    def test_unscheduled_state(self):
        j = make()
        assert not j.scheduled
        with pytest.raises(RuntimeError):
            _ = j.end_time

    def test_end_time_after_scheduling(self):
        j = make(submit_time=10.0, run_time=100.0)
        j.start_time = 50.0
        assert j.scheduled
        assert j.end_time == 150.0

    def test_waiting_time_scheduled(self):
        j = make(submit_time=10.0)
        j.start_time = 35.0
        assert j.waiting_time() == 25.0

    def test_waiting_time_unscheduled_needs_now(self):
        j = make(submit_time=10.0)
        with pytest.raises(RuntimeError):
            j.waiting_time()
        assert j.waiting_time(now=40.0) == 30.0

    def test_waiting_time_never_negative(self):
        j = make(submit_time=10.0)
        assert j.waiting_time(now=5.0) == 0.0

    def test_copy_resets_schedule(self):
        j = make()
        j.start_time = 100.0
        c = j.copy()
        assert not c.scheduled
        assert c.job_id == j.job_id
        assert c.run_time == j.run_time

    def test_swf_field_names_complete(self):
        assert len(SWF_FIELD_NAMES) == 18
        assert SWF_FIELD_NAMES[0] == "job_id"
        assert SWF_FIELD_NAMES[-1] == "think_time"


def test_copy_covers_every_dataclass_field():
    """Job.copy() assigns slots by hand for speed; this pins it against
    field drift — adding a Job field without updating copy() must fail
    here, not as a far-away AttributeError."""
    import dataclasses

    from repro.workloads import Job

    job = Job(job_id=1, submit_time=2.0, run_time=3.0, requested_procs=4,
              requested_time=5.0, requested_mem=6.0, user_id=7, group_id=8,
              executable_id=9, queue_id=10, partition_id=11, status=0,
              wait_time=12.0, used_procs=13, used_avg_cpu=14.0, used_mem=15.0,
              preceding_job_id=16, think_time=17.0)
    job.start_time = 99.0
    clone = job.copy()
    for f in dataclasses.fields(Job):
        expected = -1.0 if f.name == "start_time" else getattr(job, f.name)
        assert getattr(clone, f.name) == expected, f.name
