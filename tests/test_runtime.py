"""Unit tests for the execution runtime (backends, seeding, lifecycle).

The backend contract — ordered results, persistent per-worker state,
error propagation, idempotent lifecycle — is exercised identically on
:class:`SerialBackend` and :class:`ProcessPoolBackend`; the golden
cross-backend guarantees live in ``test_runtime_equivalence.py``.
"""

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.runtime import (
    ProcessPoolBackend,
    SerialBackend,
    WorkerError,
    derive_streams,
    make_backend,
    stream_rng,
    task_seed,
)

class ShmProcessPoolBackend(ProcessPoolBackend):
    """The process pool on the shared-memory array transport — the full
    dispatch contract must hold identically on both transports."""

    def __init__(self, n_workers: int = 1):
        super().__init__(n_workers, transport="shm")


BACKENDS = [SerialBackend, ProcessPoolBackend, ShmProcessPoolBackend]


# ----------------------------------------------------------------------
# worker task functions (top-level so the process backend can pickle them)
# ----------------------------------------------------------------------
def square(state, x):
    return x * x


def remember(state, value):
    state["value"] = value


def recall(state):
    return state.get("value")


def count_calls(state, _task):
    state["calls"] = state.get("calls", 0) + 1
    return state["calls"]


def get_calls(state):
    return state.get("calls", 0)


def explode(state, x):
    if x == 3:
        raise ValueError("boom on 3")
    return x


@pytest.fixture(params=BACKENDS, ids=lambda c: c.__name__)
def backend(request):
    with request.param(3) as b:
        yield b


class TestDispatch:
    def test_map_returns_results_in_task_order(self, backend):
        tasks = list(range(23))
        assert backend.map(square, tasks, chunksize=2) == [x * x for x in tasks]

    def test_map_default_chunking_and_empty(self, backend):
        assert backend.map(square, []) == []
        assert backend.map(square, [5]) == [25]
        assert backend.map(square, list(range(100))) == [x * x for x in range(100)]

    def test_broadcast_reaches_every_worker(self, backend):
        backend.broadcast(remember, 42)
        assert backend.scatter(recall, [()] * 3, workers=[0, 1, 2]) == [42] * 3

    def test_scatter_targets_specific_workers(self, backend):
        backend.scatter(remember, [(10,), (20,)], workers=[0, 2])
        assert backend.scatter(recall, [(), (), ()], workers=[0, 1, 2]) == [
            10, None, 20,
        ]

    def test_scatter_validates_worker_ids(self, backend):
        with pytest.raises(ValueError):
            backend.scatter(recall, [()], workers=[3])
        with pytest.raises(ValueError):
            backend.scatter(recall, [(), ()], workers=[1, 1])
        with pytest.raises(ValueError):
            backend.scatter(recall, [(), ()], workers=[0])

    def test_state_persists_across_map_calls(self, backend):
        # The same workers serve both calls, so counters keep counting:
        # however the 12 tasks were distributed, the per-worker counters
        # must add up to exactly 12 afterwards.
        backend.map(count_calls, range(6), chunksize=1)
        second = backend.map(count_calls, range(6), chunksize=1)
        assert max(second) >= 2  # at least one worker saw both calls
        totals = backend.scatter(get_calls, [(), (), ()])
        assert sum(totals) == 12

    def test_task_error_raises_worker_error(self, backend):
        with pytest.raises(WorkerError, match="boom"):
            backend.map(explode, [1, 2, 3, 4], chunksize=1)
        # the backend stays usable after a failed task
        assert backend.map(square, [2, 3]) == [4, 9]

    def test_scatter_error_keeps_pipes_in_sync(self, backend):
        with pytest.raises(WorkerError, match="boom"):
            backend.scatter(explode, [(1,), (3,), (5,)], workers=[0, 1, 2])
        assert backend.scatter(square, [(2,), (3,), (4,)]) == [4, 9, 16]

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_unpicklable_payload_keeps_pipes_in_sync(self, transport):
        # A send-side pickling failure must drain already-posted tasks:
        # otherwise the next dispatch reads a stale reply (silent
        # corruption instead of an error).  Process backend only — the
        # serial backend never pickles.  Both transports encode before
        # writing, so the invariant is transport-independent.
        with ProcessPoolBackend(2, transport=transport) as b:
            with pytest.raises(WorkerError):
                b.scatter(square, [(2,), (lambda: None,)], workers=[0, 1])
            assert b.scatter(square, [(5,), (6,)]) == [25, 36]
            with pytest.raises(WorkerError):
                b.map(square, [1, lambda: None, 3], chunksize=1)
            assert b.map(square, [2, 3]) == [4, 9]
            if b._pool is not None:  # no span left leased by the failure
                assert b._pool.n_leases == 0


class TestLifecycle:
    @pytest.mark.parametrize("cls", BACKENDS, ids=lambda c: c.__name__)
    def test_close_is_idempotent_and_final(self, cls):
        b = cls(2)
        b.start()
        b.close()
        b.close()
        with pytest.raises(RuntimeError):
            b.start()

    @pytest.mark.parametrize("cls", BACKENDS, ids=lambda c: c.__name__)
    def test_rejects_zero_workers(self, cls):
        with pytest.raises(ValueError):
            cls(0)

    def test_process_workers_shut_down(self):
        b = ProcessPoolBackend(2)
        b.start()
        procs = list(b._procs)
        assert all(p.is_alive() for p in procs)
        b.close()
        assert not any(p.is_alive() for p in procs)


class TestMakeBackend:
    def test_serial_by_default(self):
        b = make_backend()
        assert isinstance(b, SerialBackend) and b.n_workers == 1
        b.close()

    def test_process_config(self):
        b = make_backend(RuntimeConfig(backend="process", workers=2))
        assert isinstance(b, ProcessPoolBackend) and b.n_workers == 2
        b.close()

    def test_workers_override(self):
        b = make_backend(RuntimeConfig(backend="serial", workers=4), workers=2)
        assert b.n_workers == 2
        b.close()
        with pytest.raises(ValueError):
            make_backend(workers=0)

    def test_transport_threads_through(self):
        b = make_backend(RuntimeConfig(backend="process", workers=2,
                                       transport="shm"))
        assert isinstance(b, ProcessPoolBackend) and b.transport == "shm"
        b.close()
        with pytest.raises(ValueError):
            RuntimeConfig(backend="process", transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, transport="carrier-pigeon")


class TestSeeding:
    def test_stream_rng_is_key_deterministic(self):
        a = stream_rng(0, 7919, 3, 1).random(4)
        b = stream_rng(0, 7919, 3, 1).random(4)
        np.testing.assert_array_equal(a, b)
        c = stream_rng(0, 7919, 3, 2).random(4)
        assert not np.array_equal(a, c)

    def test_stream_rng_matches_trainer_convention(self):
        """Pin: stream_rng(*keys) is default_rng([*keys]) — the stream the
        trainer used before the runtime refactor, so saved training runs
        replay identically."""
        np.testing.assert_array_equal(
            stream_rng(0, 7919, 2, 5).random(8),
            np.random.default_rng([0, 7919, 2, 5]).random(8),
        )

    def test_derive_streams(self):
        streams = derive_streams(4, 123, 9)
        assert len(streams) == 4
        draws = [s.random() for s in streams]
        assert len(set(draws)) == 4
        np.testing.assert_array_equal(
            derive_streams(4, 123, 9)[2].random(3), stream_rng(123, 9, 2).random(3)
        )
        assert derive_streams(0, 1) == []

    def test_task_seed_stable(self):
        assert task_seed(1, 2, 3) == task_seed(1, 2, 3)
        assert task_seed(1, 2, 3) != task_seed(1, 2, 4)
        with pytest.raises(ValueError):
            task_seed()
        with pytest.raises(ValueError):
            stream_rng()
