"""Unit tests for the calibrated archive-trace generators."""

import numpy as np
import pytest

from repro.workloads import (
    TRACE_SPECS,
    ArchiveTraceSpec,
    available_traces,
    generate_archive_trace,
    load_trace,
)
from repro.workloads.stats import (
    characterize,
    interarrival_times,
    user_job_counts,
    windowed_dispersion,
)


class TestSpecValidation:
    def test_known_specs_exist(self):
        assert set(TRACE_SPECS) == {"SDSC-SP2", "HPC2N", "PIK-IPLEX", "ANL-Intrepid"}

    def test_rejects_mean_procs_over_cluster(self):
        with pytest.raises(ValueError, match="mean_procs"):
            ArchiveTraceSpec(
                name="bad", n_procs=16, mean_interarrival=100,
                mean_runtime=100, mean_procs=16,
            )

    def test_rejects_bad_burst_factor(self):
        with pytest.raises(ValueError, match="burst_factor"):
            ArchiveTraceSpec(
                name="bad", n_procs=16, mean_interarrival=100,
                mean_runtime=100, mean_procs=4, burst_factor=0.5,
            )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown archive trace"):
            generate_archive_trace("NOPE", n_jobs=10)


class TestCalibration:
    """Generated traces must match the Table II row for their namesake."""

    @pytest.mark.parametrize("name", sorted(TRACE_SPECS))
    def test_table2_moments(self, name):
        spec = TRACE_SPECS[name]
        trace = generate_archive_trace(name, n_jobs=6000, seed=0)
        stats = characterize(trace)
        assert stats.n_procs == spec.n_procs
        assert stats.mean_interarrival == pytest.approx(
            spec.mean_interarrival, rel=0.25
        )
        assert stats.mean_runtime == pytest.approx(spec.mean_runtime, rel=0.15)
        # sizes are discrete powers of two: allow a wider band
        assert stats.mean_requested_procs == pytest.approx(
            spec.mean_procs, rel=0.35
        )

    def test_pik_is_extremely_bursty(self):
        """PIK-IPLEX drives Fig. 3 / Fig. 7: it needs far burstier arrivals
        than SDSC-SP2.  Burstiness shows in the index of dispersion of
        windowed arrival counts, not in the marginal inter-arrival CV."""
        pik = generate_archive_trace("PIK-IPLEX", n_jobs=6000, seed=0)
        sdsc = generate_archive_trace("SDSC-SP2", n_jobs=6000, seed=0)
        assert windowed_dispersion(pik) > 3.0 * windowed_dispersion(sdsc)
        assert windowed_dispersion(pik) > 20.0

    def test_hpc2n_has_dominant_user(self):
        """The paper's u17 observation: one user dominates HPC2N."""
        trace = generate_archive_trace("HPC2N", n_jobs=4000, seed=0)
        counts = user_job_counts(trace)
        top_user = max(counts, key=counts.get)
        assert top_user == 17
        assert counts[17] / sum(counts.values()) > 0.3

    def test_sdsc_has_no_dominant_user(self):
        trace = generate_archive_trace("SDSC-SP2", n_jobs=4000, seed=0)
        assert characterize(trace).top_user_share < 0.3


class TestGenerationMechanics:
    def test_deterministic_with_seed(self):
        a = generate_archive_trace("SDSC-SP2", n_jobs=100, seed=3)
        b = generate_archive_trace("SDSC-SP2", n_jobs=100, seed=3)
        assert all(x.run_time == y.run_time for x, y in zip(a, b))

    def test_arrivals_strictly_increasing_gaps_positive(self):
        trace = generate_archive_trace("HPC2N", n_jobs=500, seed=1)
        gaps = interarrival_times(trace)
        assert (gaps >= 0).all()

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            generate_archive_trace("SDSC-SP2", n_jobs=0)

    def test_estimates_at_least_runtime(self):
        trace = generate_archive_trace("SDSC-SP2", n_jobs=300, seed=2)
        assert all(j.requested_time >= j.run_time for j in trace)


class TestLoadTrace:
    def test_available_names(self):
        names = available_traces()
        assert "Lublin-1" in names and "PIK-IPLEX" in names

    def test_load_lublin_by_name(self):
        trace = load_trace("Lublin-1", n_jobs=50, seed=0)
        assert trace.name == "Lublin-1"
        assert len(trace) == 50

    def test_load_archive_by_name(self):
        trace = load_trace("HPC2N", n_jobs=50, seed=0)
        assert trace.name == "HPC2N"
        assert trace.max_procs == 240
