"""Unit tests for the high-level evaluate/compare API."""

import pytest

from repro.api import compare, evaluate
from repro.config import EvalConfig
from repro.schedulers import F1, FCFS, SJF
from repro.workloads import load_trace

SMALL = EvalConfig(n_sequences=3, sequence_length=96, seed=1)


class TestEvaluate:
    def test_returns_scalar(self, lublin_trace):
        value = evaluate(SJF(), lublin_trace, metric="bsld", config=SMALL)
        assert value >= 1.0

    def test_seeded_reproducibility(self, lublin_trace):
        a = evaluate(SJF(), lublin_trace, metric="bsld", config=SMALL)
        b = evaluate(SJF(), lublin_trace, metric="bsld", config=SMALL)
        assert a == b

    def test_metric_dispatch(self, lublin_trace):
        util = evaluate(SJF(), lublin_trace, metric="util", config=SMALL)
        assert 0.0 < util <= 1.0

    def test_backfill_helps_fcfs(self, lublin_trace):
        plain = evaluate(FCFS(), lublin_trace, metric="wait", config=SMALL)
        filled = evaluate(FCFS(), lublin_trace, metric="wait",
                          backfill=True, config=SMALL)
        assert filled <= plain


class TestCompare:
    def test_same_sequences_for_all(self, lublin_trace):
        """compare() must equal independent evaluate() calls — identical
        windows per scheduler (the paper's fairness requirement)."""
        result = compare([FCFS(), SJF()], lublin_trace, config=SMALL)
        assert result["FCFS"] == evaluate(FCFS(), lublin_trace, config=SMALL)
        assert result["SJF"] == evaluate(SJF(), lublin_trace, config=SMALL)

    def test_accepts_mapping(self, lublin_trace):
        result = compare({"a": FCFS(), "b": SJF()}, lublin_trace, config=SMALL)
        assert set(result) == {"a", "b"}

    def test_duplicate_names_rejected(self, lublin_trace):
        with pytest.raises(ValueError, match="unique"):
            compare([SJF(), SJF()], lublin_trace, config=SMALL)

    def test_order_preserved(self, lublin_trace):
        result = compare([F1(), FCFS(), SJF()], lublin_trace, config=SMALL)
        assert list(result) == ["F1", "FCFS", "SJF"]

    def test_sjf_beats_fcfs_on_bsld(self, lublin_trace):
        """The qualitative Table V relationship."""
        result = compare([FCFS(), SJF()], lublin_trace, metric="bsld",
                         config=EvalConfig(n_sequences=4, sequence_length=192, seed=2))
        assert result["SJF"] < result["FCFS"]
