"""Unit tests for reward construction (sign conventions, fairness, combos)."""

import pytest

from repro.rl import combine_rewards, make_reward, reward_names
from repro.workloads import Job


def done_job(jid=1, submit=0.0, start=0.0, run=100.0, procs=2, user=1):
    j = Job(job_id=jid, submit_time=submit, run_time=run, requested_procs=procs,
            user_id=user)
    j.start_time = start
    return j


class TestSignConventions:
    def test_bsld_negated(self):
        """Minimise-metrics must be negated so higher reward = better."""
        good = [done_job(start=0.0)]            # bsld 1
        bad = [done_job(start=1000.0)]          # bsld 11
        r = make_reward("bsld")
        assert r(good, 4) > r(bad, 4)
        assert r(good, 4) == pytest.approx(-1.0)

    def test_util_positive(self):
        r = make_reward("util")
        jobs = [done_job(procs=2, run=100)]
        assert r(jobs, 4) == pytest.approx(0.5)

    def test_wait_negated(self):
        r = make_reward("wait")
        assert r([done_job(start=50.0)], 4) == pytest.approx(-50.0)

    def test_all_registered_names_build(self):
        jobs = [done_job()]
        for name in reward_names():
            assert isinstance(make_reward(name)(jobs, 4), float)

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            make_reward("throughput")


class TestFairnessRewards:
    def test_max_fairness_targets_worst_user(self):
        r = make_reward("fair-bsld-max")
        jobs = [
            done_job(1, start=0.0, user=1),
            done_job(2, start=5000.0, user=2),  # user 2 suffers
        ]
        # reward is -(max per-user bsld) = -(user 2's bsld)
        assert r(jobs, 4) == pytest.approx(-51.0)

    def test_mean_fairness_between(self):
        rmax = make_reward("fair-bsld-max")
        rmean = make_reward("fair-bsld-mean")
        jobs = [
            done_job(1, start=0.0, user=1),
            done_job(2, start=5000.0, user=2),
        ]
        assert rmean(jobs, 4) > rmax(jobs, 4)


class TestCombined:
    def test_weighted_sum(self):
        r = combine_rewards({"bsld": 1.0, "util": 10.0})
        jobs = [done_job(procs=2, run=100)]
        expected = -1.0 + 10.0 * 0.5
        assert r(jobs, 4) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_rewards({})
