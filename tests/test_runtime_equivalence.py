"""Golden equivalence tests for the execution runtime (PR-2 acceptance).

Process-pool execution must be *bit-identical* to serial execution — same
seed, same trajectories, same update statistics, same evaluation scores —
for any worker count.  No tolerances anywhere: the backend is a pure
throughput knob, like ``n_envs`` in ``test_equivalence.py``.

Three layers:

1. :class:`ShardedVecSchedGym` step-for-step against ``VecSchedGym``;
2. a full training run (rollout + PPO update + validation + checkpoint
   selection) across backends and worker counts;
3. ``api.evaluate`` / ``api.compare`` per-sequence values across backends
   and worker counts, heuristic and RL schedulers alike.
"""

import numpy as np
import pytest

from repro.api import compare, evaluate
from repro.config import (
    EnvConfig,
    EvalConfig,
    PPOConfig,
    RuntimeConfig,
    TrainConfig,
)
from repro.nn import KernelPolicy
from repro.rl import Trainer, make_reward
from repro.runtime import ShardedVecSchedGym
from repro.schedulers import FCFS, SJF, RLSchedulerPolicy
from repro.sim import VecSchedGym
from repro.workloads import SequenceSampler, load_trace

SERIAL = RuntimeConfig()
PROCESS_2 = RuntimeConfig(backend="process", workers=2)
PROCESS_3 = RuntimeConfig(backend="process", workers=3)


@pytest.fixture(scope="module")
def trace():
    return load_trace("Lublin-1", n_jobs=600, seed=5)


def copy_sequences(sequences):
    return [[j.copy() for j in seq] for seq in sequences]


class TestShardedVecEnvGolden:
    """ShardedVecSchedGym == VecSchedGym, step for step."""

    N_ENVS = 3

    def drive(self, vec, sequences):
        """First-valid-slot walk through all sequences; full step log."""
        n = min(vec.n_envs, len(sequences))
        obs, masks = vec.reset(copy_sequences(sequences[:n]))
        vec.queue_sequences(copy_sequences(sequences[n:]))
        log = []
        while vec.active.any():
            actions = np.full(vec.n_envs, -1, dtype=np.int64)
            for i in np.flatnonzero(vec.active):
                actions[i] = int(np.argmax(masks[i]))
            r = vec.step(actions)
            log.append(
                (r.observations, r.rewards, r.dones, r.action_masks,
                 [bool(info.get("auto_reset")) for info in r.infos])
            )
            obs, masks = r.observations, r.action_masks
        return log

    @pytest.mark.parametrize("runtime", [SERIAL, PROCESS_2, PROCESS_3],
                             ids=["serial", "process2", "process3"])
    def test_matches_vec_env_bitwise(self, trace, runtime):
        cfg = EnvConfig(max_obsv_size=8)
        sequences = SequenceSampler(trace, 12, seed=0).sample_many(5)
        ref = self.drive(
            VecSchedGym(self.N_ENVS, trace.max_procs, make_reward("bsld"),
                        config=cfg),
            sequences,
        )
        with ShardedVecSchedGym(self.N_ENVS, trace.max_procs, "bsld",
                                config=cfg, runtime=runtime) as vec:
            got = self.drive(vec, sequences)
        assert len(got) == len(ref)
        for (o1, r1, d1, m1, a1), (o2, r2, d2, m2, a2) in zip(ref, got):
            np.testing.assert_array_equal(o1, o2)
            np.testing.assert_array_equal(r1, r2)
            np.testing.assert_array_equal(d1, d2)
            np.testing.assert_array_equal(m1, m2)
            assert a1 == a2

    def test_more_workers_than_envs(self, trace):
        """Extra workers hold empty shards and stay out of the results."""
        cfg = EnvConfig(max_obsv_size=8)
        sequences = SequenceSampler(trace, 10, seed=3).sample_many(2)
        ref = self.drive(
            VecSchedGym(2, trace.max_procs, make_reward("bsld"), config=cfg),
            sequences,
        )
        with ShardedVecSchedGym(2, trace.max_procs, "bsld", config=cfg,
                                backend=None,
                                runtime=RuntimeConfig(backend="process",
                                                      workers=3)) as vec:
            got = self.drive(vec, sequences)
        for (o1, r1, *_), (o2, r2, *_) in zip(ref, got):
            np.testing.assert_array_equal(o1, o2)
            np.testing.assert_array_equal(r1, r2)

    def test_contract_errors(self, trace):
        cfg = EnvConfig(max_obsv_size=8)
        sequences = SequenceSampler(trace, 10, seed=3).sample_many(3)
        with ShardedVecSchedGym(2, trace.max_procs, "bsld", config=cfg) as vec:
            with pytest.raises(ValueError):
                vec.reset([])
            with pytest.raises(ValueError):
                vec.reset(copy_sequences(sequences))  # 3 sequences, 2 envs
            vec.reset(copy_sequences(sequences[:1]))
            with pytest.raises(ValueError):
                vec.step(np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            ShardedVecSchedGym(0, trace.max_procs, "bsld", config=cfg)


def train_run(trace, runtime, epochs=2):
    trainer = Trainer(
        trace,
        env_config=EnvConfig(max_obsv_size=16),
        ppo_config=PPOConfig(train_pi_iters=8, train_v_iters=8),
        train_config=TrainConfig(
            epochs=epochs,
            trajectories_per_epoch=6,
            trajectory_length=18,
            seed=0,
            vectorized=True,
            n_envs=4,  # 6 trajectories over 4 envs: exercises auto-reset
            runtime=runtime,
        ),
    )
    with trainer:
        records = [trainer.run_epoch(e) for e in range(epochs)]
        weights = {k: v.copy() for k, v in trainer.policy.state_dict().items()}
        values = {k: v.copy() for k, v in trainer.value.state_dict().items()}
    return records, weights, values


class TestTrainingGolden:
    """The acceptance-criterion test: process == serial training, exactly."""

    @pytest.mark.parametrize("runtime", [PROCESS_2, PROCESS_3],
                             ids=["process2", "process3"])
    def test_process_training_identical_to_serial(self, trace, runtime):
        rec_s, w_s, v_s = train_run(trace, SERIAL)
        rec_p, w_p, v_p = train_run(trace, runtime)
        for a, b in zip(rec_s, rec_p):
            assert a.mean_reward == b.mean_reward
            assert a.mean_metric == b.mean_metric
            assert a.n_rejected == b.n_rejected
            assert a.stats.policy_loss == b.stats.policy_loss
            assert a.stats.value_loss == b.stats.value_loss
            assert a.stats.kl == b.stats.kl
            assert a.stats.entropy == b.stats.entropy
            assert a.stats.pi_iters_run == b.stats.pi_iters_run
            assert a.val_reward == b.val_reward
        for key in w_s:
            np.testing.assert_array_equal(w_s[key], w_p[key])
        for key in v_s:
            np.testing.assert_array_equal(v_s[key], v_p[key])


class TestEvaluationGolden:
    """Evaluation scores are backend- and worker-count-independent."""

    CFG = dict(n_sequences=5, sequence_length=24)

    @pytest.mark.parametrize("runtime", [PROCESS_2, PROCESS_3],
                             ids=["process2", "process3"])
    def test_evaluate_identical_values(self, trace, runtime):
        serial = evaluate(SJF(), trace,
                          config=EvalConfig(**self.CFG, runtime=SERIAL))
        pooled = evaluate(SJF(), trace,
                          config=EvalConfig(**self.CFG, runtime=runtime))
        assert serial == pooled  # float equality of the means
        np.testing.assert_array_equal(serial.values, pooled.values)

    def test_compare_identical_values(self, trace):
        serial = compare([FCFS(), SJF()], trace,
                         config=EvalConfig(**self.CFG, runtime=SERIAL))
        pooled = compare([FCFS(), SJF()], trace,
                         config=EvalConfig(**self.CFG, runtime=PROCESS_3))
        assert list(serial) == list(pooled)
        for name in serial:
            np.testing.assert_array_equal(
                serial[name].values, pooled[name].values
            )

    def test_rl_policy_broadcasts_to_workers(self, trace):
        """Pickling ships weights + metadata: an RL scheduler scores the
        same sequences identically inside process workers."""
        cfg = EnvConfig(max_obsv_size=16)
        policy = KernelPolicy(cfg.job_features, seed=0)
        sched = RLSchedulerPolicy(policy, n_procs=trace.max_procs,
                                  env_config=cfg)
        serial = evaluate(sched, trace,
                          config=EvalConfig(**self.CFG, runtime=SERIAL))
        pooled = evaluate(sched, trace,
                          config=EvalConfig(**self.CFG, runtime=PROCESS_2))
        np.testing.assert_array_equal(serial.values, pooled.values)

    def test_eval_result_shape(self, trace):
        result = evaluate(FCFS(), trace,
                          config=EvalConfig(**self.CFG, runtime=SERIAL))
        assert isinstance(result, float)
        assert result.n == self.CFG["n_sequences"]
        assert result.values.shape == (self.CFG["n_sequences"],)
        assert result.mean == pytest.approx(float(np.mean(result.values)))
        assert result.std == pytest.approx(float(np.std(result.values)))
        assert "mean" in repr(result) and "std" in repr(result)
