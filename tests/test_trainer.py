"""Integration tests for the training loop (small scale, seeded)."""

import numpy as np
import pytest

from repro.config import EnvConfig, PPOConfig, TrainConfig
from repro.rl import Trainer, train
from repro.workloads import load_trace


TINY_ENV = EnvConfig(max_obsv_size=16)
TINY_PPO = PPOConfig(train_pi_iters=15, train_v_iters=15)


def tiny_train_config(**kw):
    base = dict(epochs=2, trajectories_per_epoch=4, trajectory_length=24, seed=0)
    base.update(kw)
    return TrainConfig(**base)


@pytest.fixture(scope="module")
def trace():
    return load_trace("Lublin-1", n_jobs=800, seed=3)


class TestTrainerMechanics:
    def test_curve_length_matches_epochs(self, trace):
        t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                    train_config=tiny_train_config())
        result = t.train()
        assert len(result.curve) == 2
        assert result.metric_curve().shape == (2,)

    def test_records_are_populated(self, trace):
        t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                    train_config=tiny_train_config(epochs=1))
        record = t.train().curve[0]
        assert record.mean_metric >= 1.0        # bsld floor
        assert record.mean_reward == -record.mean_metric
        assert record.wall_time > 0
        assert not record.filtered_phase

    def test_reproducible_with_seed(self, trace):
        def run():
            t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                        train_config=tiny_train_config(epochs=1))
            return t.train().metric_curve()

        np.testing.assert_allclose(run(), run())

    def test_as_scheduler_deploys(self, trace):
        t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                    train_config=tiny_train_config(epochs=1))
        result = t.train()
        sched = result.as_scheduler()
        assert sched.name == "RL-Lublin-1"
        from repro.sim import run_scheduler

        seq = [j.copy() for j in trace.jobs[:30]]
        assert len(run_scheduler(seq, trace.max_procs, sched)) == 30

    def test_as_scheduler_before_train_raises(self, trace):
        from repro.rl.trainer import TrainingResult

        result = TrainingResult(trace_name="x", metric="bsld", policy_preset="kernel")
        with pytest.raises(RuntimeError):
            result.as_scheduler()

    def test_as_scheduler_use_best_does_not_mutate_policy(self, trace):
        """Regression: restoring the best snapshot must not overwrite the
        final-epoch weights — a later use_best=False deployment (or
        resumed training) would silently continue from the snapshot."""
        t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                    train_config=tiny_train_config(epochs=1))
        result = t.train()
        final = {k: v.copy() for k, v in result.policy.state_dict().items()}
        # force a best snapshot that provably differs from the final weights
        result.best_policy_state = {k: v + 1.0 for k, v in final.items()}
        result.best_epoch = 0

        best_sched = result.as_scheduler(use_best=True)
        for key, value in result.policy.state_dict().items():
            np.testing.assert_array_equal(value, final[key])
        for key, value in best_sched.policy.state_dict().items():
            np.testing.assert_array_equal(value, final[key] + 1.0)

        final_sched = result.as_scheduler(use_best=False)
        for key, value in final_sched.policy.state_dict().items():
            np.testing.assert_array_equal(value, final[key])

    def test_save_load_round_trips_everything(self, trace, tmp_path):
        t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                    train_config=tiny_train_config())
        result = t.train()
        path = tmp_path / "ckpt.npz"
        result.save(path)
        loaded = type(result).load(path)

        assert loaded.trace_name == result.trace_name
        assert loaded.metric == result.metric
        assert loaded.policy_preset == result.policy_preset
        assert loaded.n_procs == result.n_procs
        assert loaded.env_config == result.env_config
        assert loaded.best_epoch == result.best_epoch
        for group in ("policy", "value"):
            fresh = getattr(result, group).state_dict()
            restored = getattr(loaded, group).state_dict()
            for key in fresh:
                np.testing.assert_array_equal(fresh[key], restored[key])
        for key in result.best_policy_state:
            np.testing.assert_array_equal(
                result.best_policy_state[key], loaded.best_policy_state[key])
        assert [r.to_dict() for r in loaded.curve] == [
            r.to_dict() for r in result.curve]
        np.testing.assert_array_equal(
            loaded.metric_curve(), result.metric_curve())

    def test_save_before_train_raises(self, tmp_path):
        from repro.rl.trainer import TrainingResult

        result = TrainingResult(trace_name="x", metric="bsld",
                                policy_preset="kernel")
        with pytest.raises(RuntimeError):
            result.save(tmp_path / "ckpt.npz")

    def test_utilization_metric_sign(self, trace):
        """util is maximised: mean_metric must equal +mean_reward."""
        t = Trainer(trace, metric="util", env_config=TINY_ENV, ppo_config=TINY_PPO,
                    train_config=tiny_train_config(epochs=1))
        record = t.train().curve[0]
        assert record.mean_metric == record.mean_reward
        assert 0.0 < record.mean_metric <= 1.0

    def test_alternate_policy_preset(self, trace):
        t = Trainer(trace, policy_preset="mlp_v2", env_config=TINY_ENV,
                    ppo_config=TINY_PPO, train_config=tiny_train_config(epochs=1))
        result = t.train()
        assert result.policy_preset == "mlp_v2"

    def test_train_function_entry_point(self, trace):
        result = train(trace, env_config=TINY_ENV, ppo_config=TINY_PPO,
                       train_config=tiny_train_config(epochs=1))
        assert result.trace_name == "Lublin-1"


class TestTrajectoryFilterIntegration:
    def test_filter_phase_flag(self, trace):
        cfg = tiny_train_config(
            epochs=2, use_trajectory_filter=True, filter_probe_samples=8,
            filter_phase1_fraction=0.5,
        )
        t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO, train_config=cfg)
        result = t.train()
        assert result.curve[0].filtered_phase
        assert not result.curve[1].filtered_phase

    def test_filter_fitted_at_construction(self, trace):
        cfg = tiny_train_config(use_trajectory_filter=True, filter_probe_samples=8)
        t = Trainer(trace, env_config=TINY_ENV, ppo_config=TINY_PPO, train_config=cfg)
        assert t.filter is not None
        assert t.filter.range is not None


class TestLearningSignal:
    def test_metric_improves_on_lublin(self, trace):
        """A few epochs at small scale should already beat the untrained
        policy — the Fig. 10 convergence property at miniature scale."""
        cfg = tiny_train_config(epochs=5, trajectories_per_epoch=8,
                                trajectory_length=32)
        t = Trainer(trace, env_config=TINY_ENV,
                    ppo_config=PPOConfig(train_pi_iters=40, train_v_iters=20),
                    train_config=cfg)
        curve = t.train().metric_curve()
        assert min(curve[2:]) < curve[0]
