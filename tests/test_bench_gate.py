"""Tests for the CI bench-regression gate (benchmarks/perf/check_regression.py).

The gate has five kinds of checks: absolute rollout throughput (gates
only on comparable hardware), the within-run speedup ratios — rollout
vectorization, the sparse-vs-dense PPO update, the async actor advantage
— which gate on every platform, the absolute telemetry-overhead floor
(enabled/disabled rollout throughput within one run), the absolute
shm pipe-byte ceiling (``ipc.bytes_shm_over_inline``), and the absolute
serving wire-layer floor (``serving.served_over_direct``).  These tests pin
the decision table so the CI step stays a real gate rather than a
decorative one.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "perf" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def bench_doc(steps_per_sec, speedup, python="3.11.7", cpu_count=4,
              machine="x86_64", sparse_speedup=3.0, actor_ratio=1.6,
              telemetry_ratio=0.99, ipc_ratio=0.05, serving_ratio=0.2):
    return {
        "scales": {
            "smoke": {
                "scale": "smoke",
                "rollout": {
                    "vectorized_steps_per_sec": steps_per_sec,
                    "sequential_steps_per_sec": steps_per_sec / speedup,
                    "speedup": speedup,
                },
                "ppo_update": {
                    "sec_per_iter": 0.01,
                    "sparse_speedup": sparse_speedup,
                },
                "telemetry": {
                    "enabled_over_disabled": telemetry_ratio,
                },
                "ipc": {
                    "bytes_shm_over_inline": ipc_ratio,
                },
                "serving": {
                    "served_over_direct": serving_ratio,
                },
                "runtime": {
                    "actor": {
                        "async_over_locked_1w": actor_ratio,
                    },
                },
                "platform": {
                    "python": python,
                    "numpy": "2.4.6",
                    "machine": machine,
                    "cpu_count": cpu_count,
                },
            }
        }
    }


@pytest.fixture
def gate(tmp_path):
    def run(baseline, current, *extra):
        bp = tmp_path / "baseline.json"
        cp = tmp_path / "current.json"
        bp.write_text(json.dumps(baseline))
        cp.write_text(json.dumps(current))
        return check_regression.main(
            ["--baseline", str(bp), "--current", str(cp), "--scale", "smoke",
             *extra]
        )

    return run


class TestThroughputGate:
    def test_ok_when_within_tolerance(self, gate):
        assert gate(bench_doc(30000, 5.0), bench_doc(28000, 5.0)) == 0

    def test_improvement_never_fails(self, gate):
        assert gate(bench_doc(30000, 5.0), bench_doc(90000, 15.0)) == 0

    def test_same_platform_drop_fails(self, gate):
        assert gate(bench_doc(30000, 5.0), bench_doc(15000, 5.0)) == 1

    def test_python_patch_bump_still_gates(self, gate):
        # 3.11.7 vs 3.11.9 is the same platform for throughput purposes;
        # CI runners bump patch versions constantly.
        base = bench_doc(30000, 5.0, python="3.11.7")
        cur = bench_doc(15000, 5.0, python="3.11.9")
        assert gate(base, cur) == 1

    def test_cross_platform_drop_is_advisory(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1)
        cur = bench_doc(15000, 5.0, cpu_count=4)
        assert gate(base, cur) == 0
        assert gate(base, cur, "--strict") == 1

    def test_python_minor_change_is_cross_platform(self, gate):
        base = bench_doc(30000, 5.0, python="3.11.7")
        cur = bench_doc(15000, 5.0, python="3.12.1")
        assert gate(base, cur) == 0


class TestSpeedupRatioGate:
    def test_ratio_collapse_fails_even_cross_platform(self, gate):
        # Throughput drop would be advisory on different hardware, but the
        # speedup ratio is measured within the current run — a collapse
        # toward the sequential path gates everywhere.
        base = bench_doc(30000, 5.0, cpu_count=1)
        cur = bench_doc(15000, 1.2, cpu_count=4)
        assert gate(base, cur) == 1

    def test_ratio_within_tolerance_passes(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1)
        cur = bench_doc(25000, 3.5, cpu_count=4)  # 30% ratio drop < 40%
        assert gate(base, cur) == 0

    def test_ratio_tolerance_flag(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1)
        cur = bench_doc(25000, 3.5, cpu_count=4)
        assert gate(base, cur, "--ratio-tolerance", "0.2") == 1

    def test_missing_ratio_skips_check(self, gate):
        base = bench_doc(30000, 5.0)
        del base["scales"]["smoke"]["rollout"]["speedup"]
        assert gate(base, bench_doc(29000, 5.0)) == 0


class TestSparseSpeedupGate:
    def test_sparse_collapse_fails_even_cross_platform(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1, sparse_speedup=3.0)
        cur = bench_doc(29000, 5.0, cpu_count=4, sparse_speedup=1.1)
        assert gate(base, cur) == 1

    def test_sparse_within_tolerance_passes(self, gate):
        base = bench_doc(30000, 5.0, sparse_speedup=3.0)
        cur = bench_doc(29000, 5.0, sparse_speedup=2.0)  # 33% drop < 40%
        assert gate(base, cur) == 0

    def test_pre_sparse_baseline_skips_check(self, gate):
        # Baselines recorded before the sparse path existed have no
        # ppo_update.sparse_speedup entry — first run seeds it.
        base = bench_doc(30000, 5.0)
        del base["scales"]["smoke"]["ppo_update"]["sparse_speedup"]
        assert gate(base, bench_doc(29000, 5.0, sparse_speedup=2.5)) == 0


class TestActorRatioGate:
    """The async-vs-locked 1-worker ratio lives behind a dotted section
    path (``runtime.actor``) — pin both the lookup and the gate."""

    def test_dotted_lookup(self):
        doc = bench_doc(30000, 5.0, actor_ratio=1.7)["scales"]["smoke"]
        assert check_regression.lookup_ratio(
            doc, "runtime.actor", "async_over_locked_1w") == 1.7
        assert check_regression.lookup_ratio(
            doc, "runtime.missing", "async_over_locked_1w") is None
        assert check_regression.lookup_ratio(doc, "rollout", "speedup") == 5.0

    def test_actor_collapse_fails_even_cross_platform(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1, actor_ratio=1.6)
        cur = bench_doc(29000, 5.0, cpu_count=4, actor_ratio=0.7)
        assert gate(base, cur) == 1

    def test_actor_within_tolerance_passes(self, gate):
        base = bench_doc(30000, 5.0, actor_ratio=1.6)
        cur = bench_doc(29000, 5.0, actor_ratio=1.1)  # 31% drop < 40%
        assert gate(base, cur) == 0

    def test_pre_actor_baseline_skips_check(self, gate):
        base = bench_doc(30000, 5.0)
        del base["scales"]["smoke"]["runtime"]
        assert gate(base, bench_doc(29000, 5.0)) == 0


class TestTelemetryFloorGate:
    """``telemetry.enabled_over_disabled`` gates against an *absolute*
    floor (default 0.95), not the baseline — a telemetry slowdown cannot
    ratchet in one tolerated baseline bump at a time."""

    def test_over_floor_passes(self, gate):
        assert gate(bench_doc(30000, 5.0),
                    bench_doc(29000, 5.0, telemetry_ratio=0.97)) == 0

    def test_under_floor_fails_even_cross_platform(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1)
        cur = bench_doc(29000, 5.0, cpu_count=4, telemetry_ratio=0.90)
        assert gate(base, cur) == 1

    def test_floor_is_absolute_not_baseline_relative(self, gate):
        # A degraded baseline must not excuse a degraded current run.
        base = bench_doc(30000, 5.0, telemetry_ratio=0.80)
        cur = bench_doc(29000, 5.0, telemetry_ratio=0.90)
        assert gate(base, cur) == 1

    def test_floor_flag_overrides(self, gate):
        base = bench_doc(30000, 5.0)
        cur = bench_doc(29000, 5.0, telemetry_ratio=0.90)
        assert gate(base, cur, "--telemetry-floor", "0.85") == 0
        assert gate(base, cur, "--telemetry-floor", "0") == 0  # disabled

    def test_missing_entry_skips_check(self, gate):
        cur = bench_doc(29000, 5.0)
        del cur["scales"]["smoke"]["telemetry"]
        assert gate(bench_doc(30000, 5.0), cur) == 0

    def test_improvement_never_fails(self, gate):
        assert gate(bench_doc(30000, 5.0),
                    bench_doc(29000, 5.0, telemetry_ratio=1.05)) == 0


class TestIpcGate:
    """``ipc.bytes_shm_over_inline`` gates against an *absolute* ceiling
    (default 0.25) — the shm transport must keep at least 4x of the
    array byte volume off the worker pipes, regardless of what the
    baseline recorded."""

    def test_under_ceiling_passes(self, gate):
        assert gate(bench_doc(30000, 5.0),
                    bench_doc(29000, 5.0, ipc_ratio=0.10)) == 0

    def test_over_ceiling_fails_even_cross_platform(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1)
        cur = bench_doc(29000, 5.0, cpu_count=4, ipc_ratio=0.60)
        assert gate(base, cur) == 1

    def test_ceiling_is_absolute_not_baseline_relative(self, gate):
        # A degraded baseline must not excuse a degraded current run.
        base = bench_doc(30000, 5.0, ipc_ratio=0.90)
        cur = bench_doc(29000, 5.0, ipc_ratio=0.40)
        assert gate(base, cur) == 1

    def test_ceiling_flag_overrides(self, gate):
        base = bench_doc(30000, 5.0)
        cur = bench_doc(29000, 5.0, ipc_ratio=0.40)
        assert gate(base, cur, "--ipc-ceiling", "0.5") == 0
        assert gate(base, cur, "--ipc-ceiling", "0") == 0  # disabled

    def test_missing_entry_skips_check(self, gate):
        # Runs recorded before the shm transport existed have no ipc
        # section — first run seeds it.
        cur = bench_doc(29000, 5.0)
        del cur["scales"]["smoke"]["ipc"]
        assert gate(bench_doc(30000, 5.0), cur) == 0


class TestServingFloorGate:
    """``serving.served_over_direct`` gates against an *absolute* floor
    (default 0.05) — the daemon's socket front end must deliver a
    bounded fraction of the in-process dispatch throughput, regardless
    of what the baseline recorded."""

    def test_over_floor_passes(self, gate):
        assert gate(bench_doc(30000, 5.0),
                    bench_doc(29000, 5.0, serving_ratio=0.2)) == 0

    def test_under_floor_fails_even_cross_platform(self, gate):
        base = bench_doc(30000, 5.0, cpu_count=1)
        cur = bench_doc(29000, 5.0, cpu_count=4, serving_ratio=0.01)
        assert gate(base, cur) == 1

    def test_floor_is_absolute_not_baseline_relative(self, gate):
        # A degraded baseline must not excuse a degraded current run.
        base = bench_doc(30000, 5.0, serving_ratio=0.02)
        cur = bench_doc(29000, 5.0, serving_ratio=0.03)
        assert gate(base, cur) == 1

    def test_floor_flag_overrides(self, gate):
        base = bench_doc(30000, 5.0)
        cur = bench_doc(29000, 5.0, serving_ratio=0.03)
        assert gate(base, cur, "--serving-floor", "0.02") == 0
        assert gate(base, cur, "--serving-floor", "0") == 0  # disabled

    def test_missing_entry_skips_check(self, gate):
        # Runs recorded before the serving layer existed have no serving
        # section — first run seeds it.
        cur = bench_doc(29000, 5.0)
        del cur["scales"]["smoke"]["serving"]
        assert gate(bench_doc(30000, 5.0), cur) == 0


class TestInputs:
    def test_missing_baseline_scale_passes(self, gate):
        assert gate({"scales": {}}, bench_doc(30000, 5.0)) == 0

    def test_missing_current_scale_errors(self, gate):
        assert gate(bench_doc(30000, 5.0), {"scales": {}}) == 2

    def test_flat_pre_pr2_baseline_supported(self, gate):
        flat = bench_doc(30000, 5.0)["scales"]["smoke"]
        assert gate(flat, bench_doc(15000, 5.0)) == 1
