"""Fig. 10 reproduction: RLScheduler training curves on the four main
workloads, metric = average bounded slowdown.

Paper result: "RLScheduler converges in all of the workloads within 100
training epoch" (with different convergence patterns per trace variance).
"""

import numpy as np

import repro

from ._helpers import MAIN_TRACES, S, get_trace, print_table, train_configs


def _curves(metric: str) -> dict[str, np.ndarray]:
    out = {}
    for name in MAIN_TRACES:
        env, ppo, train = train_configs(epochs=S.curve_epochs)
        result = repro.train(get_trace(name), metric=metric, env_config=env,
                             ppo_config=ppo, train_config=train)
        out[name] = result.metric_curve()
    return out


def test_fig10_training_curves_bsld(benchmark):
    curves = benchmark.pedantic(lambda: _curves("bsld"), rounds=1, iterations=1)
    rows = [[t] + [f"{v:.1f}" for v in c] for t, c in curves.items()]
    print_table("Fig. 10: training curves, average bounded slowdown",
                ["trace"] + [f"ep{i}" for i in range(S.curve_epochs)], rows)

    for name, curve in curves.items():
        assert (curve >= 1.0).all(), "bsld has a floor of 1"
        # Convergence signal: some later epoch improves on the first.
        assert curve[1:].min() <= curve[0], f"no improvement on {name}"
