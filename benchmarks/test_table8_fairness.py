"""Table VIII reproduction: scheduling towards bounded job slowdown with
Maximal fairness on the two traces that carry user information.

Paper result: "RLScheduler performs the best in both job traces after
considering fairness", with a *large* margin on SDSC-SP2 and only a slight
one on HPC2N (because HPC2N's jobs are dominated by one user, u17, so
fairness binds less often).
"""

from repro.api import compare

from ._helpers import (
    eval_config,
    get_rl_scheduler,
    get_trace,
    heuristics,
    print_table,
)

TRACES = ["SDSC-SP2", "HPC2N"]
METRIC = "fair-bsld-max"


def test_table8_fairness_maximal(benchmark):
    def run():
        grids = {}
        for mode, backfill in (("no-backfill", False), ("backfill", True)):
            grid = {}
            for name in TRACES:
                trace = get_trace(name)
                rl = get_rl_scheduler(name, METRIC)
                rl.name = "RL"
                grid[name] = compare(heuristics() + [rl], trace, metric=METRIC,
                                     backfill=backfill, config=eval_config())
            grids[mode] = grid
        return grids

    grids = benchmark.pedantic(run, rounds=1, iterations=1)
    for mode, grid in grids.items():
        header = ["trace"] + list(next(iter(grid.values())))
        rows = [[t] + [f"{v:.0f}" for v in row.values()]
                for t, row in grid.items()]
        print_table(f"Table VIII ({mode}): max per-user bsld", header, rows)

    for mode, grid in grids.items():
        for t in TRACES:
            heur = {k: v for k, v in grid[t].items() if k != "RL"}
            # RL trained on the fairness reward must be competitive: at
            # worst mid-field at tiny scale, never the worst.
            assert grid[t]["RL"] <= sorted(heur.values())[-2], (
                f"RL not competitive on {t} ({mode}): {grid[t]}"
            )
