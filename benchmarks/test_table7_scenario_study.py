"""Table VII at the scenario level, driven by the study pipeline.

The classic Table VII bench (``test_table7_generalization.py``) crosses
*traces* with hand-rolled model caching; this one runs the actual
:mod:`repro.study` subsystem over *scenarios* — including a
memory-constrained one, so cross-feature-layout deployment (memory-blind
and memory-neutral retargets) is part of the measured protocol.  The
zoo lives under ``benchmarks/.cache/`` next to the other trained models,
so re-runs at the same scale skip training.

Paper claim under test: a learned RL-X model applied to setting Y "will
be no worse than using an inappropriate heuristic scheduler".
"""

from repro.config import StudyConfig
from repro.study import generalization_matrix

from ._helpers import CACHE_DIR, S, SCALE, print_table

#: unconstrained small/default clusters plus the memory-constrained
#: variant — cross-layout retargets occur in both directions
SCENARIOS = ("lublin-64", "lublin-256", "lublin-256-mem")
HEURISTICS = ("FCFS", "WFP3", "UNICEP", "SJF", "F1")


def test_table7_scenario_generalization_study(benchmark):
    config = StudyConfig(
        scenarios=SCENARIOS,
        zoo_dir=str(CACHE_DIR / f"study_zoo_{SCALE}"),
        heuristics=HEURISTICS,
        epochs=S.train_epochs,
        trajectories_per_epoch=S.train_trajectories,
        trajectory_length=S.train_length,
        max_obsv_size=S.max_obsv_size,
        n_jobs=S.n_jobs,
        n_sequences=S.eval_sequences,
        sequence_length=S.eval_length,
    )
    doc = benchmark.pedantic(
        lambda: generalization_matrix(config), rounds=1, iterations=1
    )

    results = doc["results"]
    columns = list(next(iter(results.values())))
    rows = [
        [name] + [f"{row[c]['mean']:.1f}" for c in columns]
        for name, row in results.items()
    ]
    print_table("Table VII (scenarios): RL-X applied to scenario Y (bsld)",
                ["scenario"] + columns, rows)

    policy_names = list(doc["policies"])
    for scen_name, row in results.items():
        worst_heur = max(row[h]["mean"] for h in HEURISTICS)
        for policy in policy_names:
            # Stability low-bound, as in the trace-level bench: at tiny
            # training scale allow 2.5x the worst heuristic.
            assert row[policy]["mean"] <= 2.5 * worst_heur, (
                f"{policy} catastrophic on {scen_name}: "
                f"{row[policy]['mean']:.1f} vs worst heuristic "
                f"{worst_heur:.1f}"
            )
    # Cross-layout deploys must be classified, not silent.
    compat = {p: info["compat"] for p, info in doc["policies"].items()}
    assert compat["RL-lublin-64"]["lublin-256-mem"] == "memory-blind"
    assert compat["RL-lublin-256-mem"]["lublin-64"] == "memory-neutral"
    assert compat["RL-lublin-64"]["lublin-64"] == "native"
