"""Table II reproduction: characteristics of every evaluation trace.

Paper values (size, it, rt, nt):
  SDSC-SP2      128    1055    6687    11
  HPC2N         240     538   17024     6
  PIK-IPLEX    2560     140   30889    12
  ANL-Intrepid 163840   301    5176  5063
  Lublin-1      256     771    4862    22
  Lublin-2      256     460    1695    39
"""

import pytest

from repro.workloads import characterize

from ._helpers import S, get_trace, print_table

PAPER_TABLE2 = {
    "SDSC-SP2": (128, 1055, 6687, 11),
    "HPC2N": (240, 538, 17024, 6),
    "PIK-IPLEX": (2560, 140, 30889, 12),
    "ANL-Intrepid": (163_840, 301, 5176, 5063),
    "Lublin-1": (256, 771, 4862, 22),
    "Lublin-2": (256, 460, 1695, 39),
}


def test_table2_trace_characteristics(benchmark):
    def build():
        rows = []
        stats = {}
        for name, (size, it, rt, nt) in PAPER_TABLE2.items():
            s = characterize(get_trace(name))
            stats[name] = s
            rows.append([
                name, s.n_procs,
                f"{s.mean_interarrival:.0f} (paper {it})",
                f"{s.mean_runtime:.0f} (paper {rt})",
                f"{s.mean_requested_procs:.0f} (paper {nt})",
            ])
        return stats, rows

    stats, rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table("Table II: job trace characteristics",
                ["trace", "size", "it(s)", "rt(s)", "nt"], rows)

    for name, (size, it, rt, nt) in PAPER_TABLE2.items():
        s = stats[name]
        assert s.n_procs == size
        assert s.mean_interarrival == pytest.approx(it, rel=0.30)
        assert s.mean_runtime == pytest.approx(rt, rel=0.20)
        assert s.mean_requested_procs == pytest.approx(nt, rel=0.45)
    # Qualitative orderings the paper's analysis relies on:
    assert stats["PIK-IPLEX"].mean_runtime > stats["HPC2N"].mean_runtime
    assert stats["Lublin-2"].mean_requested_procs > stats["Lublin-1"].mean_requested_procs
