"""Fig. 11 reproduction: training curves targeting resource utilization.

Paper observations: RLScheduler still converges but "with more bumps";
HPC2N improves slowly because utilization barely varies across schedulers
there ("the HPC2N workload is much more uniformed regarding this metrics").
"""

import numpy as np

import repro

from ._helpers import MAIN_TRACES, S, get_trace, print_table, train_configs


def test_fig11_training_curves_utilization(benchmark):
    def run():
        out = {}
        for name in MAIN_TRACES:
            env, ppo, train = train_configs(epochs=S.curve_epochs)
            result = repro.train(get_trace(name), metric="util",
                                 env_config=env, ppo_config=ppo,
                                 train_config=train)
            out[name] = result.metric_curve()
        return out

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[t] + [f"{v:.3f}" for v in c] for t, c in curves.items()]
    print_table("Fig. 11: training curves, resource utilization",
                ["trace"] + [f"ep{i}" for i in range(S.curve_epochs)], rows)

    for name, curve in curves.items():
        assert ((curve > 0.0) & (curve <= 1.0)).all()
    # HPC2N's utilization band is narrow — the paper's "uniformed" trace.
    assert np.ptp(curves["HPC2N"]) < 0.15
