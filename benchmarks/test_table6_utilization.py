"""Table VI reproduction: resource utilization across schedulers/traces.

Paper's qualitative conclusions:
  1. utilization is a *stable* metric — spreads across schedulers are
     narrow (HPC2N nearly flat: 0.636-0.642 in the paper);
  2. backfilling raises utilization;
  3. RL is comparable to the best on each trace;
  4. a scheduler that wins on bsld can lose on utilization (F1 on
     Lublin-2: best bsld, worst util in the paper).
"""

import numpy as np

from repro.api import compare

from ._helpers import (
    MAIN_TRACES,
    eval_config,
    get_rl_scheduler,
    get_trace,
    heuristics,
    print_table,
)


def _grid(backfill: bool):
    results = {}
    for name in MAIN_TRACES:
        trace = get_trace(name)
        rl = get_rl_scheduler(name, "bsld")  # paper reuses trained models
        rl.name = "RL"
        results[name] = compare(heuristics() + [rl], trace, metric="util",
                                backfill=backfill, config=eval_config())
    return results


def test_table6_resource_utilization(benchmark):
    grids = benchmark.pedantic(
        lambda: {"no-backfill": _grid(False), "backfill": _grid(True)},
        rounds=1, iterations=1,
    )

    for mode, grid in grids.items():
        header = ["trace"] + list(next(iter(grid.values())))
        rows = [[t] + [f"{v:.3f}" for v in row.values()]
                for t, row in grid.items()]
        print_table(f"Table VI ({mode}): resource utilization", header, rows)

    nb, bf = grids["no-backfill"], grids["backfill"]
    for t in MAIN_TRACES:
        for mode in (nb, bf):
            values = np.array(list(mode[t].values()))
            assert ((0.0 < values) & (values <= 1.0)).all()
        # (1) narrow spread: max/min within a small factor (paper: <2x
        #     everywhere; HPC2N within 1%).
        spread = max(nb[t].values()) / min(nb[t].values())
        assert spread < 2.5, f"utilization spread too wide on {t}"
        # (2) backfilling never hurts utilization for FCFS.
        assert bf[t]["FCFS"] >= nb[t]["FCFS"] - 0.02
