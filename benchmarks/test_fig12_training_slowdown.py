"""Fig. 12 reproduction (Appendix A): training curves targeting the
*unbounded* average job slowdown.

Paper observation: "similar convergence patterns, but with larger metrics
values (affected by the short jobs)" compared to bounded slowdown (Fig 10).
"""

import numpy as np

import repro

from ._helpers import MAIN_TRACES, S, get_trace, print_table, train_configs

TRACES = MAIN_TRACES[:2] if S.curve_epochs <= 8 else MAIN_TRACES


def test_fig12_training_curves_slowdown(benchmark):
    def run():
        out = {}
        for name in TRACES:
            env, ppo, train = train_configs(epochs=S.curve_epochs)
            bsld = repro.train(get_trace(name), metric="bsld", env_config=env,
                               ppo_config=ppo, train_config=train)
            sld = repro.train(get_trace(name), metric="slowdown",
                              env_config=env, ppo_config=ppo, train_config=train)
            out[name] = (bsld.metric_curve(), sld.metric_curve())
        return out

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for t, (bsld, sld) in curves.items():
        rows.append([f"{t} (bsld)"] + [f"{v:.1f}" for v in bsld])
        rows.append([f"{t} (slowdown)"] + [f"{v:.1f}" for v in sld])
    print_table("Fig. 12: training curves, unbounded job slowdown vs bsld",
                ["trace/metric"] + [f"ep{i}" for i in range(S.curve_epochs)],
                rows)

    for name, (bsld, sld) in curves.items():
        assert (sld >= 1.0).all()
        # the Appendix observation: slowdown values exceed bsld values
        # (short jobs inflate the unbounded ratio).
        assert sld.mean() >= bsld.mean() * 0.8
        assert sld[1:].min() <= sld[0], f"no improvement on {name}"
