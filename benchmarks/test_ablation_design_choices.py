"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables — these probe the *reasons* behind the paper's choices:

1. **Backfilling variant** — EASY vs conservative vs none (the paper
   enables EASY; conservative is the classic stricter alternative).
2. **MAX_OBSV_SIZE** — the paper cuts the queue at 128 jobs; decision
   latency must stay flat as the pending queue grows beyond the cut-off
   (paper: "such a time cost will not grow even when more jobs are
   pending").
3. **Kernel width** — the paper's 32/16/8 kernel is <1,000 parameters;
   scoring quality should not require a wider kernel.
"""

import numpy as np
import pytest

from repro.config import EnvConfig
from repro.nn import KernelPolicy
from repro.schedulers import FCFS, SJF, RLSchedulerPolicy
from repro.sim import Cluster, run_scheduler
from repro.sim.metrics import average_bounded_slowdown, average_waiting_time
from repro.workloads import Job, SequenceSampler

from ._helpers import get_trace, print_table


def test_ablation_backfill_variants(benchmark):
    """EASY should (weakly) dominate conservative, which dominates none."""
    trace = get_trace("Lublin-1")
    sampler = SequenceSampler(trace, 256, seed=5)
    sequences = sampler.sample_many(4)

    def run():
        results = {}
        for mode in (False, "conservative", "easy"):
            waits, bslds = [], []
            for seq in sequences:
                done = run_scheduler([j.copy() for j in seq],
                                     trace.max_procs, FCFS(), backfill=mode)
                waits.append(average_waiting_time(done))
                bslds.append(average_bounded_slowdown(done))
            results[str(mode)] = (float(np.mean(waits)), float(np.mean(bslds)))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[mode, f"{w:.0f}", f"{b:.1f}"] for mode, (w, b) in results.items()]
    print_table("Ablation: backfilling variants (FCFS, Lublin-1)",
                ["mode", "avg wait (s)", "avg bsld"], rows)

    assert results["easy"][0] <= results["False"][0] + 1e-9
    assert results["conservative"][0] <= results["False"][0] + 1e-9
    # EASY's extra-processor rule only adds opportunities.
    assert results["easy"][0] <= results["conservative"][0] * 1.05


def test_ablation_decision_latency_flat_in_queue_depth(benchmark):
    """The observation cut-off bounds RL decision cost regardless of how
    many jobs are actually pending (Table IX's scaling claim)."""
    env_config = EnvConfig(max_obsv_size=128)
    policy = KernelPolicy(env_config.job_features, seed=0)
    rl = RLSchedulerPolicy(policy, n_procs=256, env_config=env_config)
    cluster = Cluster(256)
    rng = np.random.default_rng(0)

    def make_queue(n):
        return [
            Job(job_id=i + 1, submit_time=float(i), run_time=600.0,
                requested_procs=int(rng.integers(1, 64)),
                requested_time=1200.0)
            for i in range(n)
        ]

    import time

    def timed(n, rounds=30):
        queue = make_queue(n)
        start = time.perf_counter()
        for _ in range(rounds):
            rl.select(queue, 1e6, cluster)
        return (time.perf_counter() - start) / rounds

    t_128, t_1024 = benchmark.pedantic(
        lambda: (timed(128), timed(1024)), rounds=1, iterations=1
    )
    print(f"\nAblation: decision latency 128 pending = {t_128 * 1e3:.2f} ms, "
          f"1024 pending = {t_1024 * 1e3:.2f} ms")
    # 8x more pending jobs must NOT cost 8x: the cut-off caps the network
    # input (sorting the queue is the only growing term).
    assert t_1024 < 4.0 * t_128


def test_ablation_kernel_width(benchmark):
    """Parameter budget: the paper's 32/16/8 kernel stays under 1,000
    parameters while wider kernels grow fast; the job-scoring function is
    computable at every width (sanity of the sizing choice)."""
    def run():
        sizes = {}
        for hidden in [(16, 8), (32, 16, 8), (64, 32, 16), (128, 64, 32)]:
            net = KernelPolicy(7, hidden=hidden, seed=0)
            obs = np.random.default_rng(0).random((1, 16, 7))
            logits = net(obs).numpy()
            sizes["/".join(map(str, hidden))] = (net.num_parameters(),
                                                 float(np.std(logits)))
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, n, f"{std:.3f}"] for name, (n, std) in sizes.items()]
    print_table("Ablation: kernel network width vs parameter count",
                ["hidden sizes", "parameters", "score std"], rows)
    assert sizes["32/16/8"][0] < 1000        # the paper's claim
    assert sizes["128/64/32"][0] > 5 * sizes["32/16/8"][0]
