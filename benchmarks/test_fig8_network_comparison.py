"""Fig. 8 reproduction: training efficiency of different policy network
architectures (Table IV) on Lublin-1.

Paper result: "RLScheduler with kernel-based policy network converges much
faster than other networks"; MLP variants are near-indistinguishable from
each other; LeNet underperforms because pooling/dense layers mix job order.
"""

import numpy as np

import repro

from ._helpers import S, get_trace, print_table, train_configs

NETWORKS = ["kernel", "mlp_v2", "lenet"]  # one per architecture family


def _train_curve(trace, preset: str) -> np.ndarray:
    env, ppo, train = train_configs(epochs=S.curve_epochs)
    result = repro.train(trace, metric="bsld", policy_preset=preset,
                         env_config=env, ppo_config=ppo, train_config=train)
    return result.reward_curve()  # -bsld, higher = better (Fig. 8 y-axis)


def test_fig8_kernel_network_vs_alternatives(benchmark):
    trace = get_trace("Lublin-1")

    def run():
        return {preset: _train_curve(trace, preset) for preset in NETWORKS}

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[preset] + [f"{v:.1f}" for v in curve]
            for preset, curve in curves.items()]
    print_table("Fig. 8: training curves (-bsld) by policy network, Lublin-1",
                ["network"] + [f"ep{i}" for i in range(S.curve_epochs)], rows)

    kernel = curves["kernel"]
    # The kernel network must learn: later epochs better than the start.
    assert max(kernel[1:]) > kernel[0]
    # And it should reach at least as good a best-epoch value as every
    # alternative (the paper's headline Fig. 8 result).
    for other in ("mlp_v2", "lenet"):
        assert max(kernel) >= max(curves[other]) - 0.05 * abs(max(curves[other]))
