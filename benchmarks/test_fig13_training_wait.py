"""Fig. 13 reproduction (Appendix B): training curves targeting the
average job waiting time.

Paper observation: "the metrics values in the vertical axis also become
much larger. But we can still observe similar, fast convergence patterns".
"""

import numpy as np

import repro

from ._helpers import MAIN_TRACES, S, get_trace, print_table, train_configs

TRACES = MAIN_TRACES[:2] if S.curve_epochs <= 8 else MAIN_TRACES


def test_fig13_training_curves_waiting_time(benchmark):
    def run():
        out = {}
        for name in TRACES:
            env, ppo, train = train_configs(epochs=S.curve_epochs)
            result = repro.train(get_trace(name), metric="wait",
                                 env_config=env, ppo_config=ppo,
                                 train_config=train)
            out[name] = result.metric_curve()
        return out

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[t] + [f"{v:.0f}" for v in c] for t, c in curves.items()]
    print_table("Fig. 13: training curves, average waiting time (s)",
                ["trace"] + [f"ep{i}" for i in range(S.curve_epochs)], rows)

    for name, curve in curves.items():
        assert (curve >= 0.0).all()
        # waiting-time values are in seconds: much larger than slowdowns.
        assert curve.max() > 50.0
        assert curve[1:].min() <= curve[0], f"no improvement on {name}"
