"""Fig. 7 reproduction: the distribution of SJF-scheduled average bounded
slowdown over randomly sampled 256-job PIK-IPLEX sequences, and the derived
trajectory-filtering range R = (median, 2*mean).

Paper annotations: Mid ~1, Mean ~730, 2*Mean ~1460 — an extremely skewed
distribution where the median sits at the metric floor while rare windows
dominate the mean.
"""

import numpy as np

from repro.rl import TrajectoryFilter, probe_distribution

from ._helpers import S, SCALE, get_trace, print_table


def test_fig7_probe_distribution_and_filter_range(benchmark):
    trace = get_trace("PIK-IPLEX")
    n_samples = 60 if SCALE == "tiny" else 500

    values = benchmark.pedantic(
        lambda: probe_distribution(
            trace, metric="bsld", n_samples=n_samples,
            sequence_length=min(256, S.train_length * 4), seed=0,
        ),
        rounds=1, iterations=1,
    )

    median, mean = float(np.median(values)), float(values.mean())
    # histogram over log-spaced bins
    edges = [1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0, np.inf]
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        count = int(((values >= lo) & (values < hi)).sum())
        rows.append([f"[{lo:g}, {hi:g})", count, "#" * count])
    print_table("Fig. 7: SJF bsld distribution over sampled sequences",
                ["bsld range", "sequences", ""], rows)
    print(f"median={median:.1f}  mean={mean:.1f}  2*mean={2 * mean:.1f}")

    # The paper's skew shape: median at the floor, mean far above it.
    assert median < 2.0
    assert mean > 2.0 * median

    # The filter derives R = (median, 2*mean) from this distribution.
    f = TrajectoryFilter(metric="bsld")
    r = f.fit(trace, n_samples=n_samples,
              sequence_length=min(256, S.train_length * 4), seed=0)
    assert r.low == median
    assert r.high == 2.0 * mean
    # Filtering removes at least the easy half of the mass.
    inside = np.mean([(r.low < v <= r.high) for v in values])
    assert inside <= 0.5
