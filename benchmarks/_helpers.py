"""Shared infrastructure for the table/figure reproduction benches.

Scale control
-------------
``REPRO_BENCH_SCALE`` selects the experiment scale:

* ``tiny``  (default) — minutes on a laptop.  Training runs are shortened
  and evaluation sequences reduced; *qualitative shape* (who wins, rough
  factors, crossovers) is still expected to reproduce.
* ``paper`` — the paper's protocol: 10K-job traces, 100-epoch training,
  10 × 1024-job test sequences.  Hours of CPU.

Model cache
-----------
Several tables need trained policies (Table V/VI/VII/VIII columns "RL").
Training once per (trace, metric) and caching the weights under
``benchmarks/.cache/`` keeps the full bench suite tractable and makes every
table use the *same* model, as the paper does.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.schedulers import F1, FCFS, SJF, UNICEP, WFP3, RLSchedulerPolicy

CACHE_DIR = Path(__file__).parent / ".cache"
CACHE_DIR.mkdir(exist_ok=True)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")
if SCALE not in ("tiny", "paper"):
    raise ValueError(f"REPRO_BENCH_SCALE must be 'tiny' or 'paper', got {SCALE!r}")


@dataclass(frozen=True)
class BenchScale:
    n_jobs: int                 # jobs loaded per trace
    eval_sequences: int         # test sequences per cell
    eval_length: int            # jobs per test sequence
    train_epochs: int
    train_trajectories: int
    train_length: int
    max_obsv_size: int
    pi_iters: int
    curve_epochs: int           # epochs for training-curve figures


SCALES = {
    "tiny": BenchScale(
        n_jobs=4000, eval_sequences=4, eval_length=256,
        train_epochs=16, train_trajectories=14, train_length=64,
        max_obsv_size=32, pi_iters=40, curve_epochs=6,
    ),
    "paper": BenchScale(
        n_jobs=10_000, eval_sequences=10, eval_length=1024,
        train_epochs=100, train_trajectories=100, train_length=256,
        max_obsv_size=128, pi_iters=80, curve_epochs=100,
    ),
}

S = SCALES[SCALE]

#: the four main evaluation traces (Tables V, VI, X, XI; Figs 10-13)
MAIN_TRACES = ["Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"]

_trace_cache: dict[tuple[str, int], object] = {}


def get_trace(name: str, n_jobs: int | None = None, seed: int = 0):
    key = (name, n_jobs or S.n_jobs, seed)
    if key not in _trace_cache:
        _trace_cache[key] = repro.load_trace(name, n_jobs=n_jobs or S.n_jobs,
                                             seed=seed)
    return _trace_cache[key]


def heuristics():
    """Fresh Table III scheduler instances, in the paper's column order."""
    return [FCFS(), WFP3(), UNICEP(), SJF(), F1()]


def eval_config(seed: int = 42) -> repro.EvalConfig:
    return repro.EvalConfig(
        n_sequences=S.eval_sequences, sequence_length=S.eval_length, seed=seed
    )


def train_configs(epochs: int | None = None, use_filter: bool = False,
                  seed: int = 0):
    env = repro.EnvConfig(max_obsv_size=S.max_obsv_size)
    ppo = repro.PPOConfig(train_pi_iters=S.pi_iters, train_v_iters=S.pi_iters)
    train = repro.TrainConfig(
        epochs=epochs or S.train_epochs,
        trajectories_per_epoch=S.train_trajectories,
        trajectory_length=S.train_length,
        seed=seed,
        use_trajectory_filter=use_filter,
        filter_probe_samples=30 if SCALE == "tiny" else 200,
    )
    return env, ppo, train


def get_rl_scheduler(trace_name: str, metric: str = "bsld") -> RLSchedulerPolicy:
    """Train-or-load the RL policy for (trace, metric) at the current scale."""
    path = CACHE_DIR / f"rl_{trace_name}_{metric}_{SCALE}.npz"
    if path.exists():
        return RLSchedulerPolicy.load(path)
    trace = get_trace(trace_name)
    env, ppo, train = train_configs(
        use_filter=(trace_name == "PIK-IPLEX" and metric == "bsld")
    )
    result = repro.train(trace, metric=metric, env_config=env,
                         ppo_config=ppo, train_config=train)
    sched = result.as_scheduler(name=f"RL-{trace_name}")
    sched.save(path)
    return sched


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    """Render one paper-style table to stdout (captured by pytest -s)."""
    widths = [max(len(str(header[i])), *(len(str(r[i])) for r in rows))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} (scale={SCALE}) ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
