"""Table V reproduction: average bounded slowdown of every scheduler on
the four main traces, with and without backfilling.

Paper's qualitative conclusions to preserve:
  1. FCFS/WFP3/UNICEP are far worse than SJF/F1 on the Lublin traces
     without backfilling (orders of magnitude in the paper).
  2. No heuristic wins everywhere (e.g. SJF flips between best and worst).
  3. RLScheduler is comparable to the best scheduler or better on each
     trace ("performs either comparably well to the best or is the best").
"""

from repro.api import compare

from ._helpers import (
    MAIN_TRACES,
    eval_config,
    get_rl_scheduler,
    get_trace,
    heuristics,
    print_table,
)

METRIC = "bsld"


def _grid(backfill: bool):
    results = {}
    for name in MAIN_TRACES:
        trace = get_trace(name)
        rl = get_rl_scheduler(name, METRIC)
        rl.name = "RL"
        scheds = heuristics() + [rl]
        results[name] = compare(scheds, trace, metric=METRIC,
                                backfill=backfill, config=eval_config())
    return results


def test_table5_bounded_slowdown(benchmark):
    grids = benchmark.pedantic(
        lambda: {"no-backfill": _grid(False), "backfill": _grid(True)},
        rounds=1, iterations=1,
    )

    for mode, grid in grids.items():
        header = ["trace"] + list(next(iter(grid.values())))
        rows = [[t] + [f"{v:.1f}" for v in row.values()]
                for t, row in grid.items()]
        print_table(f"Table V ({mode}): average bounded slowdown", header, rows)

    nb = grids["no-backfill"]
    # (1) naive heuristics collapse on Lublin-1 without backfilling.
    assert nb["Lublin-1"]["FCFS"] > 2.0 * nb["Lublin-1"]["SJF"]
    assert nb["Lublin-1"]["WFP3"] > nb["Lublin-1"]["SJF"]
    # (2) informed heuristics (SJF/F1) dominate FCFS on every trace.
    for t in MAIN_TRACES:
        assert min(nb[t]["SJF"], nb[t]["F1"]) <= nb[t]["FCFS"]
    # (3) RL is comparable to the best heuristic on each trace.  At tiny
    #     training scale (16 epochs vs the paper's 100) "comparable" means
    #     within 3x of the best; RL must also never be the worst scheduler.
    for mode, grid in grids.items():
        for t in MAIN_TRACES:
            heur = {k: v for k, v in grid[t].items() if k != "RL"}
            assert grid[t]["RL"] <= 3.0 * min(heur.values()) or (
                grid[t]["RL"] <= sorted(heur.values())[1]
            ), f"RL too far from best on {t} ({mode}): {grid[t]}"
            # Not catastrophic: on congested traces the heuristic envelope
            # is wide and RL must stay inside it; on lightly-loaded traces
            # (narrow envelope, e.g. HPC2N where all heuristics cluster)
            # "comparable" means within 1.6x of the best.
            assert (
                grid[t]["RL"] <= 1.2 * max(heur.values())
                or grid[t]["RL"] <= 1.6 * min(heur.values())
            ), f"RL catastrophically bad on {t} ({mode}): {grid[t]}"
