"""Table VII reproduction: applying a model trained on trace X (RL-X) to
every other trace Y, including ANL-Intrepid (never trained on).

Paper result: "a learned RL-X model, regardless of which job trace it was
trained based on, can be safely applied to other job traces Y, without
making catastrophic scheduling decisions ... its degradation is actually
controlled: it will be no worse than using an inappropriate heuristic
scheduler."
"""

from repro.api import compare, evaluate

from ._helpers import (
    MAIN_TRACES,
    eval_config,
    get_rl_scheduler,
    get_trace,
    heuristics,
    print_table,
)

TARGETS = MAIN_TRACES + ["ANL-Intrepid"]
MODELS = MAIN_TRACES  # paper trains RL-Lublin-1, RL-SDSC-SP2, RL-HPC2N, RL-Lublin-2


def test_table7_cross_trace_generalization(benchmark):
    def run():
        table = {}
        for target in TARGETS:
            trace = get_trace(target)
            heur = compare(heuristics(), trace, metric="bsld",
                           config=eval_config())
            row = {"best-heur": min(heur.values()), "worst-heur": max(heur.values())}
            for model_name in MODELS:
                rl = get_rl_scheduler(model_name, "bsld")
                rl.n_procs = trace.max_procs  # features are size-normalised
                row[f"RL-{model_name}"] = evaluate(
                    rl, trace, metric="bsld", config=eval_config()
                )
            table[target] = row
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    header = ["trace"] + list(next(iter(table.values())))
    rows = [[t] + [f"{v:.1f}" for v in row.values()] for t, row in table.items()]
    print_table("Table VII: RL-X applied to trace Y (bsld, no backfill)",
                header, rows)

    for target, row in table.items():
        worst = row["worst-heur"]
        for model_name in MODELS:
            rl_value = row[f"RL-{model_name}"]
            # The stability low-bound: degradation comparable to picking an
            # inappropriate heuristic.  At tiny training scale (16 epochs vs
            # the paper's 100) models trained on lightly-loaded traces see
            # little reward signal, so allow 2.5x the worst heuristic.
            assert rl_value <= 2.5 * worst, (
                f"RL-{model_name} catastrophic on {target}: "
                f"{rl_value:.1f} vs worst heuristic {worst:.1f}"
            )
    # Self-trained models should be respectable at home: better than the
    # worst heuristic on their own trace.
    for home in MODELS:
        assert table[home][f"RL-{home}"] < table[home]["worst-heur"]
