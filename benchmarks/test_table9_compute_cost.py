"""Table IX reproduction: computational cost of RLScheduler.

Paper numbers (Intel Xeon Silver 4109T):
  SJF sorts 128 jobs and picks one        0.71 ms
  RLScheduler DNN makes a decision        0.30 ms
  RLScheduler DNN training (one epoch)    123 s

The absolute numbers depend on the host; the *shape* to preserve is that
a trained kernel-network decision over 128 pending jobs is the same order
of magnitude as an SJF sort of the same queue (both sub-millisecond-ish,
pure Python), i.e. RL inference is deployable in a scheduler loop.

This file uses pytest-benchmark as a true micro-benchmark (many rounds).
"""

import numpy as np
import pytest

from repro.config import EnvConfig
from repro.nn import KernelPolicy
from repro.schedulers import SJF, RLSchedulerPolicy
from repro.sim import Cluster
from repro.workloads import Job

N_PENDING = 128
N_PROCS = 256


@pytest.fixture(scope="module")
def pending_jobs():
    rng = np.random.default_rng(0)
    return [
        Job(
            job_id=i + 1,
            submit_time=float(rng.integers(0, 10_000)),
            run_time=float(rng.integers(60, 86_400)),
            requested_procs=int(rng.integers(1, N_PROCS)),
            requested_time=float(rng.integers(60, 100_000)),
            user_id=int(rng.integers(0, 64)),
        )
        for i in range(N_PENDING)
    ]


@pytest.fixture(scope="module")
def rl_policy():
    env_config = EnvConfig(max_obsv_size=N_PENDING)
    policy = KernelPolicy(env_config.job_features, seed=0)
    return RLSchedulerPolicy(policy, n_procs=N_PROCS, env_config=env_config)


def test_table9_sjf_sorts_128_jobs(benchmark, pending_jobs):
    cluster = Cluster(N_PROCS)
    sjf = SJF()
    job = benchmark(lambda: sjf.select(pending_jobs, 10_000.0, cluster))
    assert job in pending_jobs


def test_table9_rl_decision_128_jobs(benchmark, pending_jobs, rl_policy):
    cluster = Cluster(N_PROCS)
    job = benchmark(lambda: rl_policy.select(pending_jobs, 10_000.0, cluster))
    assert job in pending_jobs


def test_table9_decision_costs_same_order(pending_jobs, rl_policy):
    """Direct comparison: RL decision within ~20x of the SJF sort (the
    paper measured RL *faster*; our pure-NumPy forward pays more Python
    overhead, but must stay in a deployable range)."""
    import time

    cluster = Cluster(N_PROCS)
    sjf = SJF()

    def time_it(fn, rounds=50):
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        return (time.perf_counter() - start) / rounds

    t_sjf = time_it(lambda: sjf.select(pending_jobs, 10_000.0, cluster))
    t_rl = time_it(lambda: rl_policy.select(pending_jobs, 10_000.0, cluster))
    print(f"\nTable IX: SJF select {t_sjf * 1e3:.2f} ms | "
          f"RL decision {t_rl * 1e3:.2f} ms (paper: 0.71 / 0.30 ms)")
    assert t_rl < 20.0 * max(t_sjf, 1e-4)
    assert t_rl < 0.1, "an RL decision must take well under 100 ms"


def test_table9_training_epoch_cost(benchmark):
    """One miniature training epoch, timed — the Table IX '123 s' row
    scaled down (fewer/shorter trajectories at tiny scale)."""
    import repro

    from ._helpers import get_trace, train_configs

    trace = get_trace("Lublin-1")
    env, ppo, train = train_configs(epochs=1)
    trainer = repro.Trainer(trace, metric="bsld", env_config=env,
                            ppo_config=ppo, train_config=train)

    record = benchmark.pedantic(lambda: trainer.run_epoch(0),
                                rounds=1, iterations=1)
    steps = train.trajectories_per_epoch * train.trajectory_length
    print(f"\nTable IX: one epoch = {record.wall_time:.1f}s for {steps} env "
          f"steps (paper: 123 s at 25,600 steps)")
    assert record.wall_time < 300.0
