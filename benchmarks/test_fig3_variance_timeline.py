"""Fig. 3 reproduction: SJF average bounded slowdown over consecutive
256-job windows of the PIK-IPLEX trace timeline.

The paper's shape: "in most of the time, the job slowdown is close to 1
... but there are short period of time where the average job slowdown
reaches 80K" — a flat baseline with rare catastrophic spikes.
"""

import numpy as np

from repro.schedulers import SJF
from repro.sim import run_scheduler
from repro.sim.metrics import average_bounded_slowdown
from repro.workloads import sample_sequence

from ._helpers import get_trace, print_table

WINDOW = 256


def test_fig3_sjf_timeline_spikes(benchmark):
    trace = get_trace("PIK-IPLEX")
    rng = np.random.default_rng(0)

    def scan():
        series = []
        for start in range(0, len(trace) - WINDOW, WINDOW):
            seq = sample_sequence(trace, WINDOW, rng, start=start)
            done = run_scheduler(seq, trace.max_procs, SJF())
            series.append((start, average_bounded_slowdown(done)))
        return series

    series = benchmark.pedantic(scan, rounds=1, iterations=1)
    values = np.array([v for _, v in series])
    rows = [[start, f"{v:.1f}", "#" * min(int(np.log10(max(v, 1)) * 8), 48)]
            for start, v in series]
    print_table("Fig. 3: SJF bsld over the PIK-IPLEX timeline",
                ["window start", "avg bsld", "profile"], rows)

    # Shape assertions: mostly-calm baseline with a severe spike.
    assert np.median(values) < 2.0, "baseline should sit near bsld=1"
    assert values.max() > 20.0 * np.median(values), (
        "the trace must contain a catastrophic congestion window"
    )
    # Spikes are *rare*: under a third of windows above 10x median.
    frac_spiky = np.mean(values > 10 * np.median(values))
    assert frac_spiky < 0.34
