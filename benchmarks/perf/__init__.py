"""Micro-benchmark harness for the hot paths (see run_perf.py).

Not collected by pytest — run explicitly::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--scale tiny|paper|smoke]
"""
