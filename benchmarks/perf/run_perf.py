"""Hot-path micro-benchmarks: rollout, engine, and PPO-update throughput.

Measures, in one run:

* ``rollout.sequential_steps_per_sec`` — the pre-vectorisation training
  rollout: one environment, the per-job-loop observation builder, and a
  batch-size-1 policy *and* value forward per step (``PPOAgent.act``).
* ``rollout.vectorized_steps_per_sec`` — the same sequences through
  :class:`VecSchedGym`: N environments in lock-step, one batched policy
  forward per step, value estimates deferred to one batched call per
  episode.
* ``rollout.speedup`` — the ratio (the PR-1 acceptance bar is ≥ 5×).
* ``rollout.phase_breakdown`` — where vectorised-rollout wall-time goes:
  env stepping vs policy forwards vs buffer bookkeeping, read from the
  ``rollout.*`` telemetry spans the training collector itself records.
* ``telemetry.enabled_over_disabled`` — paired alternating-rep probe of
  telemetry's rollout cost; the within-run throughput ratio is
  hardware-independent and gated in CI (floor 0.95).
* ``engine.events_per_sec`` — raw discrete-event engine throughput
  (FCFS schedule, no network in the loop).
* ``scenarios.<name>.events_per_sec`` — the same engine throughput per
  registered scenario (workload × cluster, including the backfilling and
  memory-constrained variants), plus forced-backfill ``<name>+backfill``
  twins, so scenario-dependent slowdowns show up in the measured
  trajectory.
* ``ppo_update.sec_per_iter`` — one PPO minibatch iteration (policy or
  value step) on the batch the vectorised rollout collected.
* ``ppo_update.dense_sec_per_iter`` / ``sparse_sec_per_iter`` /
  ``sparse_speedup`` — one policy step through the dense padded-logits
  reference vs the segment-batched sparse autograd path, on identical
  pre-drawn minibatches; the ratio is hardware-independent and gated in
  CI like ``rollout.speedup``.
* ``serving.*`` — scheduler-as-a-service throughput: a two-tenant
  daemon on a loopback socket driven closed-loop by the load generator
  (requests/sec, request/decision latency percentiles), next to a
  direct in-process pass over the same streams.  The within-run
  ``serving.served_over_direct`` ratio is hardware-independent and
  gated in CI — it collapses only when the wire layer itself regresses.
* ``runtime.*`` — worker scaling of the PR-2 execution runtime: rollout
  throughput through :class:`ShardedVecSchedGym` and evaluation
  throughput through :func:`repro.api.evaluate`, at 1/2/4 process
  workers vs the single-process path.  ``runtime.cpu_count`` records how
  many cores the numbers had to share — on a 1-core box process workers
  can only time-slice, so read scaling figures against it.
* ``runtime.actor`` — episode-granular actor-rollout throughput
  (:class:`repro.runtime.ActorRuntime`: in-worker policy inference, one
  IPC transfer per episode) next to the lock-step floor; the
  ``async_over_locked_1w`` within-run ratio is hardware-independent and
  gated in CI.

Results are merged into ``BENCH_perf.json`` (``--out`` overrides) under
``scales.<scale>``, one entry per scale preset, so successive PRs have a
measured trajectory and CI can diff its own scale against the committed
baseline (``check_regression.py``).  Scale presets:

========  =======================================================
scale     meaning
========  =======================================================
smoke     seconds; CI sanity check that the harness runs
tiny      the default; ~a minute on a laptop, stable ratios
paper     paper-protocol sizes (256-job sequences, 128 job slots)
========  =======================================================

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --scale tiny
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.api import evaluate
from repro.config import EnvConfig, EvalConfig, PPOConfig, RuntimeConfig, TrainConfig
from repro.nn import ValueMLP, make_policy
from repro.rl import PPOAgent, TrajectoryBuffer, make_reward
from repro.rl.trainer import Trainer
from repro.telemetry import core as telemetry
from repro.runtime import ShardedVecSchedGym
from repro.sim import SchedulingEngine, VecSchedGym, build_observation_loop, run_scheduler
from repro.schedulers import FCFS, SJF
from repro.workloads import SequenceSampler, load_trace

try:  # runnable both as a module and as a script
    from .legacy import LegacySchedulingEngine, legacy_build_observation
except ImportError:
    from legacy import LegacySchedulingEngine, legacy_build_observation

SCALES = {
    #         n_jobs  n_seqs  seq_len  max_obsv  n_envs
    "smoke": (400, 8, 24, 16, 8),
    "tiny": (2000, 24, 128, 128, 64),
    "paper": (10_000, 100, 256, 128, 32),
}


def rollout_sequential(agent, env_cfg, n_procs, sequences, rng):
    """Pre-PR rollout loop: seed engine, loop-built observations, and a
    batch-1 policy + value forward per step (see legacy.py)."""
    steps = 0
    start = time.perf_counter()
    for jobs in sequences:
        engine = LegacySchedulingEngine(jobs, n_procs)
        engine.advance_until_decision()
        while True:
            obs, mask, visible = legacy_build_observation(
                engine.pending, engine.now, engine.cluster.free_procs,
                n_procs, env_cfg,
            )
            action, _, _ = agent.act(obs, mask, rng=rng)
            engine.commit(visible[action])
            steps += 1
            if not engine.advance_until_decision():
                break
    return steps, time.perf_counter() - start


def check_legacy_replica(env_cfg, n_procs, jobs):
    """Guard: the optimised engine must reproduce the seed schedule and
    observations exactly (FCFS walk over one sequence)."""
    legacy = LegacySchedulingEngine(jobs, n_procs)
    modern = SchedulingEngine([j.copy() for j in jobs], n_procs)
    legacy.advance_until_decision()
    modern.advance_until_decision()
    while True:
        l_obs, l_mask, l_vis = legacy_build_observation(
            legacy.pending, legacy.now, legacy.cluster.free_procs, n_procs, env_cfg
        )
        m_obs, m_mask, m_vis = build_observation_loop(
            modern.pending, modern.now, modern.cluster.free_procs, n_procs, env_cfg
        )
        assert np.array_equal(l_obs, m_obs) and np.array_equal(l_mask, m_mask)
        legacy.commit(l_vis[0])
        modern.commit(m_vis[0])
        l_more = legacy.advance_until_decision()
        m_more = modern.advance_until_decision()
        assert l_more == m_more
        if not l_more:
            break
    assert [j.job_id for j in legacy.completed] == [j.job_id for j in modern.completed]


def rollout_vectorized(agent, env_cfg, n_procs, sequences, n_envs, rng, buffer=None):
    """Vectorised rollout; optionally fills ``buffer`` for the update bench."""
    vec = VecSchedGym(n_envs, n_procs, make_reward("bsld"), config=env_cfg)
    n = min(n_envs, len(sequences))
    steps = 0
    start = time.perf_counter()
    obs, masks = vec.reset(sequences[:n])  # engines copy jobs internally
    vec.queue_sequences(sequences[n:])
    slot_of_env = list(range(n))
    next_slot = n
    while True:
        active_idx = np.flatnonzero(vec.active)
        if not len(active_idx):
            break
        a_obs = obs[active_idx]
        a_masks = masks[active_idx]
        actions, log_probs = agent.act_batch(a_obs, a_masks, rng)
        if buffer is not None:
            buffer.store_batch(
                a_obs, a_masks, actions, log_probs,
                slots=[slot_of_env[i] for i in active_idx],
            )
        full = np.full(vec.n_envs, -1, dtype=np.int64)
        full[active_idx] = actions
        result = vec.step(full)
        steps += len(active_idx)
        for i in active_idx:
            if result.dones[i]:
                slot = slot_of_env[i]
                if buffer is not None:
                    values = agent.value_batch(buffer.staged_obs(slot))
                    buffer.end_slot(slot, result.rewards[i], values=values)
                if result.infos[i].get("auto_reset"):
                    slot_of_env[i] = next_slot
                    next_slot += 1
        obs, masks = result.observations, result.action_masks
    return steps, time.perf_counter() - start


def _phase_trainer(env_cfg, trace, n_sequences, seq_len, n_envs):
    """A serial-runtime Trainer sized to roll the bench sequences through
    the *training* collector — the one instrumentation source for rollout
    phase timing (``rollout.policy_forward`` / ``env_step`` / ``buffer``
    spans)."""
    return Trainer(
        trace,
        metric="bsld",
        env_config=env_cfg,
        train_config=TrainConfig(
            trajectories_per_epoch=n_sequences,
            trajectory_length=seq_len,
            n_envs=n_envs,
            seed=0,
        ),
    )


def rollout_phase_breakdown(env_cfg, trace, sequences, n_envs, rng):
    """Per-phase wall-time split of a vectorised rollout.

    Drives the trainer's own ``_collect_vectorized`` under a telemetry
    session and reads the split from the ``rollout.*`` spans the
    collector records — the bench no longer hand-times a duplicate of the
    collection loop, so these fractions are, by construction, the ones a
    telemetry-enabled training run reports.
    """
    trainer = _phase_trainer(
        env_cfg, trace, len(sequences), len(sequences[0]), n_envs
    )
    try:
        with telemetry.session() as reg:
            trainer._collect_vectorized(
                sequences, list(rng.spawn(len(sequences))), TrajectoryBuffer()
            )
            t_policy = reg.span_seconds("rollout.policy_forward")
            t_env = reg.span_seconds("rollout.env_step")
            t_buffer = reg.span_seconds("rollout.buffer")
    finally:
        trainer.close()
    total = t_env + t_policy + t_buffer
    return {
        "env_step_sec": t_env,
        "policy_forward_sec": t_policy,
        "buffer_sec": t_buffer,
        "env_step_frac": t_env / total,
        "policy_forward_frac": t_policy / total,
        "buffer_frac": t_buffer / total,
    }


def bench_telemetry_overhead(env_cfg, trace, sequences, n_envs, repeat=20):
    """Paired within-run probe of telemetry's rollout cost.

    Telemetry-enabled and -disabled passes of the same instrumented
    collector alternate inside one loop, so the two paths see the same
    machine conditions — hardware-independent like the other gated
    ratios.  The gated ratio compares *total* time across all reps of
    each path: per-rep minima and medians both proved too jittery on a
    loaded 1-core box to resolve a few-percent effect, while the sum
    averages scheduler noise down by ~1/sqrt(repeat) and the alternation
    cancels slow drift.  Returns aggregate throughputs and the
    enabled/disabled ratio (1.0 = free; the CI floor is 0.95).

    Sequences are tiled so one pass is tens of milliseconds even at smoke
    scale: the gated ratio must resolve a few-percent effect, which a
    ~10 ms timing window cannot.
    """
    reps_of = max(1, -(-32 // len(sequences)))
    sequences = list(sequences) * reps_of
    trainer = _phase_trainer(
        env_cfg, trace, len(sequences), len(sequences[0]), n_envs
    )
    reg = telemetry.Telemetry(enabled=True)

    def one_pass():
        rngs = list(np.random.default_rng(5).spawn(len(sequences)))
        start = time.perf_counter()
        trainer._collect_vectorized(sequences, rngs, TrajectoryBuffer())
        return time.perf_counter() - start

    def enabled_pass():
        prev = telemetry.set_active(reg)
        try:
            return one_pass()
        finally:
            telemetry.set_active(prev)
            reg.drain()  # keep per-rep cost flat across reps

    try:
        one_pass()  # warm both paths outside the measured reps
        enabled_pass()
        steps = sum(len(jobs) for jobs in sequences)
        on_times, off_times = [], []
        for rep in range(repeat):
            # alternate pair order so neither path systematically runs in
            # the fresher half of each pair
            if rep % 2 == 0:
                on_times.append(enabled_pass())
                off_times.append(one_pass())
            else:
                off_times.append(one_pass())
                on_times.append(enabled_pass())
        if os.environ.get("PERF_DEBUG"):
            print(f"[perf-debug] telemetry on: "
                  f"{[f'{t*1e3:.1f}ms' for t in on_times]} off: "
                  f"{[f'{t*1e3:.1f}ms' for t in off_times]}")
        t_on, t_off = sum(on_times), sum(off_times)
        return {
            "enabled_steps_per_sec": repeat * steps / t_on,
            "disabled_steps_per_sec": repeat * steps / t_off,
            "enabled_over_disabled": t_off / t_on,
        }
    finally:
        trainer.close()


def rollout_sharded(agent, env_cfg, n_procs, sequences, n_envs, rng, runtime,
                    repeat=5):
    """The lock-step training collection path driven through the PR-2
    sharded vec env: per-step ``act_batch`` in the parent, trajectory
    buffering, and the canonical per-episode value/log-prob targets —
    the same work per episode as the async actor path, so serial,
    process, and actor throughput are measured on identical work.
    Median-of-``repeat`` passes: one pass is a few ms at smoke scale,
    far inside scheduler noise on a loaded box, and the median (unlike
    best-of) is not hijacked by a single lucky low-jitter window."""
    vec = ShardedVecSchedGym(n_envs, n_procs, "bsld", config=env_cfg,
                             runtime=runtime)
    try:
        times = []
        for _ in range(repeat):
            buffer = TrajectoryBuffer()
            # per-trajectory action streams, as in _collect_vectorized
            rngs = rng.spawn(len(sequences))
            n = min(n_envs, len(sequences))
            steps = 0
            start = time.perf_counter()
            obs, masks = vec.reset(sequences[:n])
            vec.queue_sequences(sequences[n:])
            slot_of_env = list(range(n))
            next_slot = n
            while True:
                active_idx = np.flatnonzero(vec.active)
                if not len(active_idx):
                    break
                a_obs = obs[active_idx]
                a_masks = masks[active_idx]
                actions, log_probs = agent.act_batch(
                    a_obs, a_masks, [rngs[slot_of_env[i]] for i in active_idx]
                )
                buffer.store_batch(a_obs, a_masks, actions, log_probs,
                                   slots=[slot_of_env[i] for i in active_idx])
                full = np.full(vec.n_envs, -1, dtype=np.int64)
                full[active_idx] = actions
                result = vec.step(full)
                steps += len(active_idx)
                for i in active_idx:
                    if result.dones[i]:
                        slot = slot_of_env[i]
                        ep_obs = buffer.staged_obs(slot)
                        buffer.end_slot(
                            slot, result.rewards[i],
                            values=agent.value_batch(ep_obs),
                            log_probs=agent.episode_log_probs(
                                ep_obs, buffer.staged_masks(slot),
                                buffer.staged_actions(slot),
                            ),
                        )
                        if result.infos[i].get("auto_reset"):
                            slot_of_env[i] = next_slot
                            next_slot += 1
                obs, masks = result.observations, result.action_masks
            times.append(time.perf_counter() - start)
        if os.environ.get("PERF_DEBUG"):
            print(f"[perf-debug] sharded reps: {[f'{t*1e3:.1f}ms' for t in times]}")
        return steps, float(np.median(times))
    finally:
        vec.close()


def rollout_actor(agent, env_cfg, n_procs, sequences, n_envs, runtime,
                  repeat=5):
    """Episode-granular actor rollout: envs *and* policy replicas live in
    the workers, so IPC is at most one trajectory transfer per episode
    instead of two array transfers per step (the async training path).
    ``n_envs`` splits across the actors so the pool's total lock-step
    width matches the sharded collector's.  Median-of-``repeat`` passes,
    like :func:`rollout_sharded`."""
    from repro.runtime import ActorRuntime

    workers = max(1, runtime.workers)
    width = max(1, -(-min(n_envs, len(sequences)) // workers))
    actors = ActorRuntime(n_procs, "bsld", config=env_cfg, runtime=runtime,
                          n_envs=width, seed=2)
    try:
        actors.install(agent.policy, agent.value)
        times = []
        for rep in range(repeat):
            steps = 0
            start = time.perf_counter()
            actors.submit(rep, list(enumerate(sequences)))
            for _ in range(len(sequences)):
                steps += actors.drain().steps
            times.append(time.perf_counter() - start)
        if os.environ.get("PERF_DEBUG"):
            print(f"[perf-debug] actor reps: {[f'{t*1e3:.1f}ms' for t in times]}")
        return steps, float(np.median(times))
    finally:
        actors.close()


def rollout_locked_vs_actor_1w(agent, env_cfg, n_procs, sequences, n_envs,
                               repeat=13):
    """Paired 1-worker probe for the gated async/locked ratio.

    Locked and actor reps alternate inside one loop so each per-rep
    ratio compares measurements taken milliseconds apart — immune to the
    CPU-speed drift a shared box shows over the tens of seconds the
    separate scaling sweeps span.  Returns ``(locked_steps_per_sec,
    actor_steps_per_sec, ratio)`` with the throughputs as medians and
    the ratio as the median of the per-rep ratios.
    """
    from repro.runtime import ActorRuntime

    runtime = RuntimeConfig(backend="process", workers=1)
    rng = np.random.default_rng(2)
    vec = ShardedVecSchedGym(n_envs, n_procs, "bsld", config=env_cfg,
                             runtime=runtime)
    width = max(1, min(n_envs, len(sequences)))
    actors = ActorRuntime(n_procs, "bsld", config=env_cfg,
                          runtime=RuntimeConfig(backend="process", workers=1),
                          n_envs=width, seed=2)
    try:
        actors.install(agent.policy, agent.value)

        def locked_rep():
            buffer = TrajectoryBuffer()
            rngs = rng.spawn(len(sequences))
            n = min(n_envs, len(sequences))
            steps = 0
            start = time.perf_counter()
            obs, masks = vec.reset(sequences[:n])
            vec.queue_sequences(sequences[n:])
            slot_of_env = list(range(n))
            next_slot = n
            while True:
                active_idx = np.flatnonzero(vec.active)
                if not len(active_idx):
                    break
                a_obs = obs[active_idx]
                a_masks = masks[active_idx]
                actions, log_probs = agent.act_batch(
                    a_obs, a_masks, [rngs[slot_of_env[i]] for i in active_idx]
                )
                buffer.store_batch(a_obs, a_masks, actions, log_probs,
                                   slots=[slot_of_env[i] for i in active_idx])
                full = np.full(vec.n_envs, -1, dtype=np.int64)
                full[active_idx] = actions
                result = vec.step(full)
                steps += len(active_idx)
                for i in active_idx:
                    if result.dones[i]:
                        slot = slot_of_env[i]
                        ep_obs = buffer.staged_obs(slot)
                        buffer.end_slot(
                            slot, result.rewards[i],
                            values=agent.value_batch(ep_obs),
                            log_probs=agent.episode_log_probs(
                                ep_obs, buffer.staged_masks(slot),
                                buffer.staged_actions(slot),
                            ),
                        )
                        if result.infos[i].get("auto_reset"):
                            slot_of_env[i] = next_slot
                            next_slot += 1
                obs, masks = result.observations, result.action_masks
            return steps, time.perf_counter() - start

        def actor_rep(rep):
            steps = 0
            start = time.perf_counter()
            actors.submit(rep, list(enumerate(sequences)))
            for _ in range(len(sequences)):
                steps += actors.drain().steps
            return steps, time.perf_counter() - start

        locked_rep()          # warm both paths outside the measured reps
        actor_rep(0)
        locked, actor, ratios = [], [], []
        for rep in range(1, repeat + 1):
            l_steps, l_time = locked_rep()
            a_steps, a_time = actor_rep(rep)
            locked.append(l_steps / l_time)
            actor.append(a_steps / a_time)
            ratios.append((a_steps / a_time) / (l_steps / l_time))
        if os.environ.get("PERF_DEBUG"):
            print(f"[perf-debug] paired ratios: {[f'{r:.2f}' for r in ratios]}")
        return (float(np.median(locked)), float(np.median(actor)),
                float(np.median(ratios)))
    finally:
        actors.close()
        vec.close()


def bench_ipc(agent, env_cfg, n_procs, sequences, n_envs, epochs=3):
    """Bytes-over-pipe comparison of the two array transports.

    Drives the identical actor training flow — install, per-epoch episode
    submit/drain, weight re-broadcast — through a 1-worker process
    backend under each transport, with telemetry counting the bytes each
    side actually writes (``runtime.ipc.bytes_inline``) and the bytes the
    shm codec moved out-of-band instead (``runtime.ipc.bytes_shm``).
    ``bytes_shm_over_inline`` — pipe bytes under shm over pipe bytes
    under inline pickling — is a pure byte-count ratio, hardware-
    independent, and gated in ``check_regression.py`` (ceiling 0.25,
    i.e. shm must keep at least 4x of the array traffic off the pipes).
    Encode seconds come from the ``runtime.ipc.encode`` span both sides
    record around ``ArrayCodec.dumps``.
    """
    from repro.runtime import ActorRuntime

    width = max(1, min(n_envs, len(sequences)))
    out = {}
    for transport in ("pipe", "shm"):
        runtime = RuntimeConfig(backend="process", workers=1,
                                transport=transport)
        with telemetry.session() as reg:
            actors = ActorRuntime(n_procs, "bsld", config=env_cfg,
                                  runtime=runtime, n_envs=width, seed=2)
            try:
                actors.install(agent.policy, agent.value)
                for epoch in range(epochs):
                    actors.submit(epoch, list(enumerate(sequences)))
                    for _ in range(len(sequences)):
                        actors.drain()
                    actors.push_weights(epoch + 1, agent.export_weights())
            finally:
                actors.close()
            snap = reg.snapshot().aggregated()
        out[transport] = {
            "bytes_inline": int(snap.counters.get("runtime.ipc.bytes_inline", 0)),
            "bytes_shm": int(snap.counters.get("runtime.ipc.bytes_shm", 0)),
            "encode_sec_per_epoch": (
                snap.spans.get("runtime.ipc.encode", {}).get("sum", 0.0) / epochs
            ),
        }
    out["bytes_shm_over_inline"] = (
        out["shm"]["bytes_inline"] / out["pipe"]["bytes_inline"]
    )
    return out


def bench_runtime_scaling(agent, env_cfg, trace, sequences, n_envs,
                          eval_seqs, eval_len, workers_list=(1, 2, 4)):
    """Worker scaling of rollouts (sharded vec env) and evaluation
    (``api.evaluate`` fan-out) vs the single-process serial path."""
    report = {"workers": list(workers_list), "cpu_count": os.cpu_count()}

    # The gated async/locked 1-worker comparison runs as a paired probe
    # (alternating reps) so CPU-speed drift cannot skew the ratio; the
    # remaining worker counts come from the ordinary sweeps below.
    locked_1w, actor_1w, ratio_1w = rollout_locked_vs_actor_1w(
        agent, env_cfg, trace.max_procs, sequences, n_envs
    )

    steps, elapsed = rollout_sharded(
        agent, env_cfg, trace.max_procs, sequences, n_envs,
        np.random.default_rng(2), RuntimeConfig()
    )
    serial_rollout = steps / elapsed
    rollout = {"serial": serial_rollout, "process": {"1": locked_1w}}
    for w in workers_list:
        if w == 1:
            continue
        steps, elapsed = rollout_sharded(
            agent, env_cfg, trace.max_procs, sequences, n_envs,
            np.random.default_rng(2),
            RuntimeConfig(backend="process", workers=w),
        )
        rollout["process"][str(w)] = steps / elapsed
    rollout["speedup_at_max_workers"] = (
        rollout["process"][str(workers_list[-1])] / serial_rollout
    )
    report["rollout_steps_per_sec"] = rollout

    # Episode-granular actor throughput next to the lock-step floor.  The
    # 1-worker async/locked ratio is hardware-independent (identical work,
    # identical process count — only the IPC granularity differs) and is
    # gated in check_regression.py.
    actor = {"serial": None, "process": {"1": actor_1w}}
    steps, elapsed = rollout_actor(
        agent, env_cfg, trace.max_procs, sequences, n_envs, RuntimeConfig()
    )
    actor["serial"] = steps / elapsed
    for w in workers_list:
        if w == 1:
            continue
        steps, elapsed = rollout_actor(
            agent, env_cfg, trace.max_procs, sequences, n_envs,
            RuntimeConfig(backend="process", workers=w),
        )
        actor["process"][str(w)] = steps / elapsed
    actor["locked_1w_steps_per_sec"] = locked_1w
    actor["async_over_locked_1w"] = ratio_1w
    report["actor"] = actor

    def eval_once(runtime):
        cfg = EvalConfig(n_sequences=eval_seqs, sequence_length=eval_len,
                         seed=7, runtime=runtime)
        start = time.perf_counter()
        evaluate(SJF(), trace, metric="bsld", config=cfg)
        return eval_seqs / (time.perf_counter() - start)

    serial_eval = eval_once(RuntimeConfig())
    evaluation = {"serial": serial_eval, "process": {}}
    for w in workers_list:
        evaluation["process"][str(w)] = eval_once(
            RuntimeConfig(backend="process", workers=w)
        )
    evaluation["speedup_at_max_workers"] = (
        evaluation["process"][str(workers_list[-1])] / serial_eval
    )
    report["eval_sequences_per_sec"] = evaluation
    return report


def bench_engine(trace, n_jobs):
    """Raw event-engine throughput: FCFS, no network in the loop."""
    jobs = [j.copy() for j in trace.jobs[:n_jobs]]
    start = time.perf_counter()
    run_scheduler(jobs, trace.max_procs, FCFS())
    elapsed = time.perf_counter() - start
    return 2 * len(jobs) / elapsed  # one arrival + one finish per job


#: Scenario spread for the per-scenario engine bench: the default, a
#: different job-shape mix, a bursty-arrival cluster, and the
#: memory-constrained variant (exercises the resource-vector hot path).
BENCH_SCENARIOS = (
    "lublin-256", "lublin-256-wide", "bursty-sdsc", "lublin-256-mem"
)

#: Scenarios additionally benched with backfilling forced on (the
#: expensive engine path: shadow-budget scans per decision), recorded as
#: ``<name>+backfill`` twins next to the protocol-mode entries.
BENCH_BACKFILL_SCENARIOS = ("lublin-256", "lublin-256-mem")


def bench_scenarios(n_jobs):
    """Per-scenario engine throughput (FCFS under each scenario's cluster
    and protocol backfill mode, plus forced-backfill twins)."""
    from repro.scenarios import get_scenario

    out = {}
    runs = [(name, None) for name in BENCH_SCENARIOS]
    runs += [(name, True) for name in BENCH_BACKFILL_SCENARIOS]
    for name, backfill in runs:
        scen = get_scenario(name)
        trace = scen.build_trace(n_jobs=n_jobs)
        if backfill is None:
            backfill = bool(scen.protocol.backfill)
            key = name
        else:
            key = f"{name}+backfill"
        start = time.perf_counter()
        run_scheduler(trace.jobs, scen.cluster, FCFS(), backfill=backfill)
        elapsed = time.perf_counter() - start
        out[key] = {
            "events_per_sec": 2 * len(trace) / elapsed,
            "n_jobs": len(trace),
            "backfill": backfill,
        }
    return out


def bench_serving(trace, n_jobs_each):
    """Closed-loop serving throughput over a live loopback daemon.

    Two tenants (FCFS+easy backfill, SJF) run behind one asyncio daemon
    on an ephemeral port; the load generator submits every job over the
    real socket, closed loop.  The same streams are then pushed straight
    into an in-process :class:`SchedulerRouter` — identical decisions,
    no sockets, no JSON — giving a within-run overhead ratio:
    ``served_over_direct`` = socket requests/sec over direct
    requests/sec.  That ratio is hardware-independent and gated in CI
    (floor in ``check_regression.py``): a collapse means the wire layer
    (framing, dispatch, event loop) got expensive relative to the
    scheduling work it fronts, which no runner change can excuse.
    """
    import asyncio
    import threading

    from repro.config import ServeConfig, TenantConfig
    from repro.serve import (
        SchedulerRouter,
        ServeClient,
        ServeDaemon,
        run_closed_loop,
        trace_jobs,
    )

    tenants = (
        TenantConfig(name="alpha", scheduler="FCFS",
                     n_procs=trace.max_procs, backfill="easy"),
        TenantConfig(name="beta", scheduler="SJF", n_procs=trace.max_procs),
    )
    streams = {
        "alpha": trace_jobs(trace, n_jobs_each, seed=1,
                            max_procs=trace.max_procs),
        "beta": trace_jobs(trace, n_jobs_each, seed=2,
                           max_procs=trace.max_procs),
    }

    # direct pass: the same decisions with the wire layer removed
    router = SchedulerRouter(ServeConfig(port=0, tenants=tenants))
    from repro.serve.protocol import PROTOCOL_VERSION, job_to_wire
    wire = {
        name: [{"v": PROTOCOL_VERSION, "op": "submit", "tenant": name,
                "job": job_to_wire(job)} for job in jobs]
        for name, jobs in streams.items()
    }
    start = time.perf_counter()
    direct_requests = 0
    for name, messages in wire.items():
        for message in messages:
            router.dispatch(message)
            direct_requests += 1
    router.drain_all()
    direct_elapsed = time.perf_counter() - start
    direct_rps = direct_requests / direct_elapsed

    # served pass: the identical streams through the live socket daemon
    daemon = ServeDaemon(ServeConfig(port=0, tenants=tenants))
    outcome = {}

    def _run():
        outcome["rc"] = asyncio.run(daemon.run_async())

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    deadline = time.perf_counter() + 30
    while daemon.address is None and time.perf_counter() < deadline:
        if not thread.is_alive():
            raise RuntimeError("serve daemon died before binding")
        time.sleep(0.01)
    assert daemon.address is not None, "serve daemon never bound"
    try:
        loadgen = run_closed_loop(*daemon.address, streams)
    finally:
        with ServeClient(*daemon.address) as client:
            client.drain(stop=True)
        thread.join(timeout=30)
    assert outcome.get("rc") == 0, "serve daemon did not exit cleanly"

    return {
        "tenants": [t.name for t in tenants],
        "jobs_per_tenant": n_jobs_each,
        "requests": loadgen["requests"],
        "requests_per_sec": loadgen["requests_per_sec"],
        "decisions": loadgen["decisions"],
        "request_latency_sec": loadgen["request_latency_sec"],
        "decision_latency_sec": loadgen["decision_latency_sec"],
        "direct_requests_per_sec": direct_rps,
        "served_over_direct": loadgen["requests_per_sec"] / direct_rps,
    }


def bench_ppo_update(agent, buffer, ppo_cfg, max_obsv, job_features):
    """Full-update timing plus a dense-vs-sparse policy-step comparison.

    The comparison runs two fresh same-seed agents over identical
    pre-drawn minibatch index lists, so the update arithmetic (padded
    dense logits vs segment-batched sparse autograd) is the only thing
    that differs between the two timings.
    """
    data = buffer.get()
    start = time.perf_counter()
    stats = agent.update(data)
    elapsed = time.perf_counter() - start
    iters = stats.pi_iters_run + ppo_cfg.train_v_iters
    report = {
        "sec_per_iter": elapsed / iters,
        "batch_steps": len(data["actions"]),
    }

    n = len(data["actions"])
    batch = min(ppo_cfg.minibatch_size, n)
    rng = np.random.default_rng(11)
    idx_lists = [
        rng.choice(n, size=batch, replace=False) if batch < n else np.arange(n)
        for _ in range(ppo_cfg.train_pi_iters)
    ]
    for path in ("dense", "sparse"):
        path_agent = PPOAgent(
            make_policy("kernel", max_obsv, job_features, seed=0),
            ValueMLP(max_obsv, job_features, seed=1),
            replace(ppo_cfg, update_path=path),
            seed=0,
        )
        path_agent._policy_step(data, idx_lists[0])  # warm-up
        start = time.perf_counter()
        for idx in idx_lists:
            path_agent._policy_step(data, idx)
        report[f"{path}_sec_per_iter"] = (
            (time.perf_counter() - start) / len(idx_lists)
        )
    report["sparse_speedup"] = (
        report["dense_sec_per_iter"] / report["sparse_sec_per_iter"]
    )
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=os.environ.get("REPRO_BENCH_SCALE", "tiny"),
    )
    parser.add_argument("--n-envs", type=int, default=None)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_perf.json",
    )
    args = parser.parse_args(argv)

    n_jobs, n_seqs, seq_len, max_obsv, n_envs = SCALES[args.scale]
    if args.n_envs:
        n_envs = args.n_envs
    env_cfg = EnvConfig(max_obsv_size=max_obsv)
    ppo_cfg = PPOConfig(train_pi_iters=10, train_v_iters=10)

    trace = load_trace("Lublin-1", n_jobs=n_jobs, seed=3)
    sampler = SequenceSampler(trace, seq_len, seed=1)
    sequences = sampler.sample_many(n_seqs)

    policy = make_policy("kernel", max_obsv, env_cfg.job_features, seed=0)
    value = ValueMLP(max_obsv, env_cfg.job_features, seed=1)
    agent = PPOAgent(policy, value, ppo_cfg, seed=0)

    check_legacy_replica(env_cfg, trace.max_procs, sequences[0])

    # Warm-up both paths (first-call allocation noise), then measure.
    warm = sequences[:1]
    rollout_sequential(agent, env_cfg, trace.max_procs, warm, np.random.default_rng(0))
    rollout_vectorized(agent, env_cfg, trace.max_procs, warm, n_envs,
                       np.random.default_rng(0))

    print(f"[perf] scale={args.scale}: {n_seqs} sequences x {seq_len} jobs, "
          f"M={max_obsv}, n_envs={n_envs}")
    seq_steps, seq_time = rollout_sequential(
        agent, env_cfg, trace.max_procs, sequences, np.random.default_rng(1)
    )
    print(f"[perf] sequential: {seq_steps} steps in {seq_time:.2f}s "
          f"({seq_steps / seq_time:,.0f} steps/s)")

    # Best of three: this number gates CI (check_regression.py), and at
    # smoke scale a single run is a ~10 ms timing window — too noisy.
    vec_steps, vec_time = min(
        (
            rollout_vectorized(
                agent, env_cfg, trace.max_procs, sequences, n_envs,
                np.random.default_rng(1),
            )
            for _ in range(3)
        ),
        key=lambda run: run[1],
    )
    print(f"[perf] vectorized: {vec_steps} steps in {vec_time:.2f}s "
          f"({vec_steps / vec_time:,.0f} steps/s, best of 3)")

    speedup = (vec_steps / vec_time) / (seq_steps / seq_time)
    print(f"[perf] rollout speedup: {speedup:.2f}x")

    phase_breakdown = rollout_phase_breakdown(
        env_cfg, trace, sequences, n_envs, np.random.default_rng(1)
    )
    print(f"[perf] rollout phases: env {phase_breakdown['env_step_frac']:.0%}, "
          f"policy {phase_breakdown['policy_forward_frac']:.0%}, "
          f"buffer {phase_breakdown['buffer_frac']:.0%}")

    telemetry_report = bench_telemetry_overhead(
        env_cfg, trace, sequences, n_envs
    )
    print(f"[perf] telemetry overhead: enabled/disabled rollout throughput "
          f"{telemetry_report['enabled_over_disabled']:.3f}x")

    events_per_sec = bench_engine(trace, min(n_jobs, 4000))
    print(f"[perf] engine: {events_per_sec:,.0f} events/s")

    scenario_report = bench_scenarios(min(n_jobs, 4000))
    print("[perf] scenarios: " + ", ".join(
        f"{name} {entry['events_per_sec']:,.0f} ev/s"
        for name, entry in scenario_report.items()
    ))

    # Untimed buffered collection feeds the PPO-update bench.
    buffer = TrajectoryBuffer(gamma=ppo_cfg.gamma, lam=ppo_cfg.lam)
    rollout_vectorized(agent, env_cfg, trace.max_procs, sequences, n_envs,
                       np.random.default_rng(1), buffer=buffer)

    ppo_report = bench_ppo_update(
        agent, buffer, ppo_cfg, max_obsv, env_cfg.job_features
    )
    print(f"[perf] ppo update: {ppo_report['sec_per_iter'] * 1e3:.1f} ms/iter "
          f"(batch of {ppo_report['batch_steps']} steps)")
    print(f"[perf]   policy step: dense "
          f"{ppo_report['dense_sec_per_iter'] * 1e3:.1f} ms vs sparse "
          f"{ppo_report['sparse_sec_per_iter'] * 1e3:.1f} ms "
          f"({ppo_report['sparse_speedup']:.2f}x)")

    runtime_report = bench_runtime_scaling(
        agent, env_cfg, trace, sequences, n_envs,
        eval_seqs=n_seqs, eval_len=seq_len,
    )
    rr, er = runtime_report["rollout_steps_per_sec"], runtime_report["eval_sequences_per_sec"]
    print(f"[perf] runtime scaling over {runtime_report['cpu_count']} cores "
          f"(workers {runtime_report['workers']}):")
    print(f"[perf]   rollout serial {rr['serial']:,.0f} steps/s; process "
          + ", ".join(f"{w}w {v:,.0f}" for w, v in rr["process"].items())
          + f" ({rr['speedup_at_max_workers']:.2f}x at max workers)")
    ar = runtime_report["actor"]
    print(f"[perf]   actor serial {ar['serial']:,.0f} steps/s; process "
          + ", ".join(f"{w}w {v:,.0f}" for w, v in ar["process"].items())
          + (f" (async/locked at 1w: {ar['async_over_locked_1w']:.2f}x)"
             if "async_over_locked_1w" in ar else ""))
    print(f"[perf]   evaluate serial {er['serial']:,.1f} seqs/s; process "
          + ", ".join(f"{w}w {v:,.1f}" for w, v in er["process"].items())
          + f" ({er['speedup_at_max_workers']:.2f}x at max workers)")

    ipc_report = bench_ipc(
        agent, env_cfg, trace.max_procs, sequences[:min(4, n_seqs)], n_envs,
    )
    print(f"[perf] ipc: pipe bytes {ipc_report['pipe']['bytes_inline']:,}; "
          f"shm pipe bytes {ipc_report['shm']['bytes_inline']:,} "
          f"+ {ipc_report['shm']['bytes_shm']:,} out-of-band "
          f"({ipc_report['bytes_shm_over_inline']:.3f}x of inline)")

    serving_report = bench_serving(trace, max(100, min(500, n_jobs // 4)))
    print(f"[perf] serving: {serving_report['requests_per_sec']:,.0f} req/s "
          f"over the socket vs {serving_report['direct_requests_per_sec']:,.0f} "
          f"direct ({serving_report['served_over_direct']:.3f}x); decision "
          f"p50 {serving_report['decision_latency_sec']['p50'] * 1e6:,.0f} us, "
          f"p99 {serving_report['decision_latency_sec']['p99'] * 1e6:,.0f} us")

    report = {
        "scale": args.scale,
        "policy_preset": "kernel",
        "config": {
            "n_jobs": n_jobs,
            "n_sequences": n_seqs,
            "sequence_length": seq_len,
            "max_obsv_size": max_obsv,
            "n_envs": n_envs,
        },
        "rollout": {
            "sequential_steps_per_sec": seq_steps / seq_time,
            "vectorized_steps_per_sec": vec_steps / vec_time,
            "sequential_steps": seq_steps,
            "vectorized_steps": vec_steps,
            "speedup": speedup,
            "phase_breakdown": phase_breakdown,
        },
        "engine": {"events_per_sec": events_per_sec},
        "scenarios": scenario_report,
        "ppo_update": ppo_report,
        "telemetry": telemetry_report,
        "runtime": runtime_report,
        "ipc": ipc_report,
        "serving": serving_report,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
    }
    merged = merge_report(args.out, args.scale, report)
    args.out.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"[perf] wrote {args.out} (scales: {sorted(merged['scales'])})")
    return report


def merge_report(path: Path, scale: str, report: dict) -> dict:
    """Fold this run into the multi-scale document at ``path``.

    The document keys one report per scale preset under ``scales`` so a
    smoke run in CI never clobbers the committed tiny/paper entries.  A
    pre-PR-2 flat document (single top-level ``scale``) is migrated in
    place.
    """
    merged = {"scales": {}}
    if path.exists():
        try:
            old = json.loads(path.read_text())
        except json.JSONDecodeError:
            old = {}
        if "scales" in old:
            merged = old
        elif "scale" in old:
            merged["scales"][old["scale"]] = old
    merged["scales"][scale] = report
    return merged


if __name__ == "__main__":
    main()
