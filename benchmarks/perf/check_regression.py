"""Bench-regression gate: fail CI when rollout throughput drops.

Compares a fresh ``run_perf.py`` result against the committed
``BENCH_perf.json`` baseline at the same scale and exits non-zero when
rollout performance regressed.  Two checks run, covering the two ways a
regression can hide:

* **absolute throughput** (``rollout.vectorized_steps_per_sec``): gates
  when the baseline was recorded on comparable hardware (same machine /
  core count / python major.minor); on different hardware a drop is
  reported as advisory instead of failing — unless ``--strict`` forces
  the gate.  Absolute steps/s across differently-sized CI runners would
  otherwise be a standing false alarm.
* **within-run speedup ratios** (``rollout.speedup`` — vectorized vs
  sequential rollout throughput —, ``ppo_update.sparse_speedup`` —
  sparse vs dense policy-step time — and
  ``runtime.actor.async_over_locked_1w`` — per-episode vs per-step IPC
  at one process worker): each is measured *within one run*, so it is
  hardware-independent and gates on **every** platform.  The
  tolerance is looser (``--ratio-tolerance``, default 40%) because tiny
  smoke runs are noisy; the checks exist to catch an optimised path
  collapsing toward its reference, which no runner change can excuse.

A third check is an **absolute floor**, not a baseline comparison:
``telemetry.enabled_over_disabled`` (telemetry-enabled over -disabled
rollout throughput, paired reps within one run) must stay at or above
``--telemetry-floor`` (default 0.95 — "telemetry costs at most 5%").
Being within-run it gates on every platform; being absolute it cannot
drift downward one tolerated baseline bump at a time.

A fourth check is an **absolute ceiling** on the same within-run
pattern: ``ipc.bytes_shm_over_inline`` (bytes actually written to the
worker pipes under the shm transport over the same traffic inline-
pickled) must stay at or below ``--ipc-ceiling`` (default 0.25 — "shm
keeps at least 4x of the array traffic off the pipes").  Byte counts
are exact, so no tolerance applies; 0 disables the check.

A fifth check is an **absolute floor** on the serving layer:
``serving.served_over_direct`` (closed-loop requests/sec through the
daemon's socket front end over the same submission streams dispatched
to the router in-process, within one run) must stay at or above
``--serving-floor`` (default 0.05 — "the wire layer costs at most
~20x the scheduling work it fronts"; measured ~0.22 at seed).  Like
the telemetry floor it is within-run, so it gates on every platform,
and being absolute it cannot drift downward one baseline bump at a
time.  0 disables the check.

Improvements and unrelated-metric noise never fail.  A baseline with no
entry for the requested scale passes with a notice (first run on a new
scale seeds the baseline).

Usage::

    cp BENCH_perf.json /tmp/baseline.json
    PYTHONPATH=src python benchmarks/perf/run_perf.py --scale smoke
    python benchmarks/perf/check_regression.py \
        --baseline /tmp/baseline.json --current BENCH_perf.json --scale smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

METRIC = ("rollout", "vectorized_steps_per_sec")
#: (section, key, what fell) — all within-run, hardware-independent
#: ratios; the section may be a dotted path into nested report dicts
RATIO_METRICS = (
    ("rollout", "speedup", "vectorization speedup"),
    ("ppo_update", "sparse_speedup", "sparse-update speedup"),
    ("runtime.actor", "async_over_locked_1w", "async actor-rollout advantage"),
)


def lookup_ratio(report: dict, section: str, key: str):
    """``report["a"]["b"][key]`` for a dotted ``section`` path ``"a.b"``."""
    node = report
    for part in section.split("."):
        node = node.get(part)
        if not isinstance(node, dict):
            return None
    return node.get(key)


def load_scale(path: Path, scale: str) -> dict | None:
    doc = json.loads(path.read_text())
    if "scales" in doc:
        return doc["scales"].get(scale)
    # pre-PR-2 flat document
    return doc if doc.get("scale") == scale else None


def describe(report: dict) -> str:
    plat = report.get("platform", {})
    return (f"python {plat.get('python', '?')}, numpy {plat.get('numpy', '?')}, "
            f"{plat.get('machine', '?')}, {plat.get('cpu_count', '?')} cores")


def _python_series(version) -> str:
    """``"3.11.7" -> "3.11"`` — patch releases are throughput-comparable."""
    return ".".join(str(version).split(".")[:2])


def same_platform(a: dict, b: dict) -> bool:
    pa, pb = a.get("platform", {}), b.get("platform", {})
    if _python_series(pa.get("python")) != _python_series(pb.get("python")):
        return False
    return all(pa.get(k) == pb.get(k) for k in ("machine", "cpu_count"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional throughput drop (0.2 = 20%%)")
    parser.add_argument("--ratio-tolerance", type=float, default=0.4,
                        help="allowed fractional drop of the vectorization "
                             "speedup ratio; gates on any hardware "
                             "(0.4 = 40%%)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on throughput drops even across platform "
                             "changes")
    parser.add_argument("--telemetry-floor", type=float, default=0.95,
                        help="absolute floor for the within-run "
                             "telemetry-enabled/disabled rollout throughput "
                             "ratio (0.95 = at most 5%% overhead); 0 "
                             "disables the check")
    parser.add_argument("--serving-floor", type=float, default=0.05,
                        help="absolute floor for the within-run "
                             "served-over-direct request-throughput ratio "
                             "of the serving daemon (socket front end vs "
                             "in-process dispatch); 0 disables the check")
    parser.add_argument("--ipc-ceiling", type=float, default=0.25,
                        help="absolute ceiling for the within-run "
                             "shm-over-inline pipe-byte ratio (0.25 = shm "
                             "moves at least 4x of the array bytes out of "
                             "band); 0 disables the check")
    args = parser.parse_args(argv)

    if not 0 <= args.tolerance < 1:
        parser.error("tolerance must be in [0, 1)")
    if not 0 <= args.ratio_tolerance < 1:
        parser.error("ratio-tolerance must be in [0, 1)")
    if not 0 <= args.telemetry_floor <= 1:
        parser.error("telemetry-floor must be in [0, 1]")
    if not 0 <= args.ipc_ceiling <= 1:
        parser.error("ipc-ceiling must be in [0, 1]")
    if not 0 <= args.serving_floor <= 1:
        parser.error("serving-floor must be in [0, 1]")

    base = load_scale(args.baseline, args.scale)
    if base is None:
        print(f"[bench-check] no {args.scale!r} baseline in {args.baseline}; "
              "nothing to compare (baseline will seed on commit)")
        return 0
    cur = load_scale(args.current, args.scale)
    if cur is None:
        print(f"[bench-check] current run {args.current} has no "
              f"{args.scale!r} entry", file=sys.stderr)
        return 2

    failed = False

    # -- absolute throughput: gates on comparable hardware only ----------
    section, key = METRIC
    base_v = base[section][key]
    cur_v = cur[section][key]
    floor = base_v * (1.0 - args.tolerance)
    print(f"[bench-check] scale={args.scale} {section}.{key}: "
          f"baseline {base_v:,.0f} ({describe(base)})")
    print(f"[bench-check]   current {cur_v:,.0f} ({describe(cur)}); "
          f"floor {floor:,.0f} at {args.tolerance:.0%} tolerance")
    if cur_v < floor:
        drop = f"rollout throughput dropped {1 - cur_v / base_v:.1%} " \
               f"(> {args.tolerance:.0%})"
        if args.strict or same_platform(base, cur):
            print(f"[bench-check] FAIL: {drop}", file=sys.stderr)
            failed = True
        else:
            print(f"[bench-check] ADVISORY: {drop}, but the baseline was "
                  "recorded on different hardware — not gating (use "
                  "--strict to force)")

    # -- speedup ratios: hardware-independent, gate everywhere -----------
    for section, key, label in RATIO_METRICS:
        base_r = lookup_ratio(base, section, key)
        cur_r = lookup_ratio(cur, section, key)
        if base_r is None or cur_r is None:
            print(f"[bench-check] {section}.{key}: missing on one side; "
                  "skipping ratio check")
            continue
        ratio_floor = base_r * (1.0 - args.ratio_tolerance)
        print(f"[bench-check] scale={args.scale} {section}.{key}: "
              f"baseline {base_r:.2f}x, current {cur_r:.2f}x; floor "
              f"{ratio_floor:.2f}x at {args.ratio_tolerance:.0%} tolerance")
        if cur_r < ratio_floor:
            print(f"[bench-check] FAIL: {label} fell "
                  f"{1 - cur_r / base_r:.1%} (> {args.ratio_tolerance:.0%}) "
                  "— this ratio is measured within one run, so hardware "
                  "differences do not excuse it", file=sys.stderr)
            failed = True

    # -- telemetry overhead: absolute within-run floor -------------------
    tel = lookup_ratio(cur, "telemetry", "enabled_over_disabled")
    if args.telemetry_floor == 0:
        print("[bench-check] telemetry.enabled_over_disabled: check disabled")
    elif tel is None:
        print("[bench-check] telemetry.enabled_over_disabled: missing from "
              "current run; skipping overhead check")
    else:
        print(f"[bench-check] scale={args.scale} "
              f"telemetry.enabled_over_disabled: {tel:.3f} "
              f"(floor {args.telemetry_floor:.2f})")
        if tel < args.telemetry_floor:
            print(f"[bench-check] FAIL: telemetry-enabled rollout throughput "
                  f"is {tel:.3f}x the disabled path (< "
                  f"{args.telemetry_floor:.2f}) — instrumentation overhead "
                  "exceeds the budget; this is within-run, so hardware "
                  "differences do not excuse it", file=sys.stderr)
            failed = True

    # -- shm pipe-byte reduction: absolute within-run ceiling ------------
    ipc = lookup_ratio(cur, "ipc", "bytes_shm_over_inline")
    if args.ipc_ceiling == 0:
        print("[bench-check] ipc.bytes_shm_over_inline: check disabled")
    elif ipc is None:
        print("[bench-check] ipc.bytes_shm_over_inline: missing from "
              "current run; skipping ipc check")
    else:
        print(f"[bench-check] scale={args.scale} "
              f"ipc.bytes_shm_over_inline: {ipc:.3f} "
              f"(ceiling {args.ipc_ceiling:.2f})")
        if ipc > args.ipc_ceiling:
            print(f"[bench-check] FAIL: the shm transport still writes "
                  f"{ipc:.3f}x of the inline byte volume to the worker "
                  f"pipes (> {args.ipc_ceiling:.2f}) — large arrays are "
                  "leaking back in-band; this is an exact within-run byte "
                  "count, so hardware differences do not excuse it",
                  file=sys.stderr)
            failed = True

    # -- serving wire-layer overhead: absolute within-run floor ----------
    srv = lookup_ratio(cur, "serving", "served_over_direct")
    if args.serving_floor == 0:
        print("[bench-check] serving.served_over_direct: check disabled")
    elif srv is None:
        print("[bench-check] serving.served_over_direct: missing from "
              "current run; skipping serving check")
    else:
        print(f"[bench-check] scale={args.scale} "
              f"serving.served_over_direct: {srv:.3f} "
              f"(floor {args.serving_floor:.2f})")
        if srv < args.serving_floor:
            print(f"[bench-check] FAIL: the daemon's socket front end "
                  f"delivers only {srv:.3f}x of the in-process dispatch "
                  f"throughput (< {args.serving_floor:.2f}) — the wire "
                  "layer (framing, dispatch, event loop) regressed; this "
                  "is within-run, so hardware differences do not excuse "
                  "it", file=sys.stderr)
            failed = True

    if failed:
        return 1
    print("[bench-check] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
