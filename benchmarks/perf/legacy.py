"""Verbatim replica of the pre-vectorisation (seed) hot path, for benching.

The acceptance bar for the vectorised rollout engine is a speedup ratio
*measured in the same run* against the pre-PR sequential path.  The live
code has since been optimised (sorted pending list, id-keyed running map,
tuple event heap, cached observation columns), so measuring against it
would understate the ratio.  This module preserves the seed
implementation — dataclass-compare event heap, O(n) ``list.remove`` with
full-field equality, a queue re-sort plus per-job Python loop on every
observation — exactly as committed, so the baseline cost is the real one.

Only used by ``run_perf.py``; never imported by library code.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.config import EnvConfig
from repro.sim.cluster import Cluster
from repro.sim.backfill import backfill_candidates, conservative_backfill_candidates
from repro.sim.env import stable_user_hash
from repro.sim.events import EventKind
from repro.workloads.job import Job

__all__ = ["LegacySchedulingEngine", "legacy_build_observation", "legacy_copy"]


def legacy_copy(job: Job) -> Job:
    """Seed-era ``Job.copy``: dataclasses.replace re-runs validation."""
    return replace(job, start_time=-1.0)


@dataclass(order=True, slots=True)
class _LegacyEvent:
    time: float
    kind: EventKind
    job_id: int
    job: Job = field(compare=False)


class _LegacyEventQueue:
    """Seed event heap: dataclass elements, Python ``__lt__`` per sift."""

    def __init__(self) -> None:
        self._heap: list[_LegacyEvent] = []

    def push(self, time: float, kind: EventKind, job: Job) -> None:
        heapq.heappush(self._heap, _LegacyEvent(time, kind, job.job_id, job))

    def pop(self) -> _LegacyEvent:
        return heapq.heappop(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class LegacySchedulingEngine:
    """The seed engine, byte-for-byte semantics (plain lists, O(n) scans)."""

    def __init__(self, jobs: Sequence[Job], n_procs: int, backfill: bool | str = False):
        self.jobs = [
            legacy_copy(j)
            for j in sorted(jobs, key=lambda x: (x.submit_time, x.job_id))
        ]
        self.cluster = Cluster(n_procs)
        self.backfill = backfill
        self.now = 0.0
        self.pending: list[Job] = []
        self.running: list[Job] = []
        self.completed: list[Job] = []
        self._events = _LegacyEventQueue()
        for j in self.jobs:
            self._events.push(j.submit_time, EventKind.ARRIVAL, j)

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.jobs)

    def _start(self, job: Job) -> None:
        self.cluster.allocate(job)
        job.start_time = self.now
        self.pending.remove(job)
        self.running.append(job)
        self._events.push(job.start_time + job.run_time, EventKind.FINISH, job)

    def _process_next_event(self) -> None:
        event = self._events.pop()
        self.now = event.time
        if event.kind is EventKind.FINISH:
            self.cluster.release(event.job)
            self.running.remove(event.job)
            self.completed.append(event.job)
        else:
            self.pending.append(event.job)

    def advance_until_decision(self) -> bool:
        while not self.pending:
            if not self._events:
                return False
            self._process_next_event()
        return True

    def commit(self, job: Job) -> None:
        if job not in self.pending:
            raise ValueError(f"job {job.job_id} is not pending")
        while not self.cluster.can_allocate(job):
            if self.backfill:
                for candidate in self._backfill_pass(job):
                    self._start(candidate)
                if self.cluster.can_allocate(job):
                    break
            if not self._events:
                raise RuntimeError("deadlock")
            self._process_next_event()
        self._start(job)

    def _backfill_pass(self, head: Job) -> list[Job]:
        if self.backfill == "conservative":
            return conservative_backfill_candidates(
                head, self.pending, self.running, self.cluster, self.now
            )
        return backfill_candidates(
            head, self.pending, self.running, self.cluster, self.now
        )


def legacy_build_observation(
    pending: Sequence[Job],
    now: float,
    free_procs: int,
    n_procs: int,
    config: EnvConfig,
) -> tuple[np.ndarray, np.ndarray, list[Job]]:
    """Seed observation builder: full re-sort + per-job Python loop.

    (The seed hashed user ids with the salted built-in ``hash``; the
    stable hash is used here so baseline and vectorised paths compute the
    same features — the arithmetic cost is equivalent.)
    """
    visible = sorted(pending, key=lambda j: (j.submit_time, j.job_id))
    visible = visible[: config.max_obsv_size]

    obs = np.zeros(config.observation_shape, dtype=np.float32)
    free_frac = free_procs / n_procs
    log_cap = math.log(config.runtime_scale)
    for i, job in enumerate(visible):
        wait = now - job.submit_time
        obs[i, 0] = wait / (wait + config.wait_scale)
        obs[i, 1] = min(math.log(max(job.requested_time, 1.0)) / log_cap, 1.0)
        obs[i, 2] = job.requested_procs / n_procs
        obs[i, 3] = free_frac
        obs[i, 4] = 1.0 if job.requested_procs <= free_procs else 0.0
        obs[i, 5] = stable_user_hash(job.user_id)
        obs[i, 6] = 1.0

    mask = np.zeros(config.max_obsv_size, dtype=bool)
    mask[: len(visible)] = True
    return obs, mask, visible
