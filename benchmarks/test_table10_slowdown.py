"""Table X reproduction (Appendix A): *unbounded* average job slowdown for
every scheduler on the four main traces, with and without backfilling.

Paper observations: values exceed the bounded-slowdown table (short jobs
inflate the ratio); the SJF/F1 vs FCFS/WFP3/UNICEP split persists; RL is
comparable or better.
"""

from repro.api import compare

from ._helpers import (
    MAIN_TRACES,
    eval_config,
    get_rl_scheduler,
    get_trace,
    heuristics,
    print_table,
)


def _grid(backfill: bool):
    results = {}
    for name in MAIN_TRACES:
        trace = get_trace(name)
        rl = get_rl_scheduler(name, "bsld")  # paper reuses the bsld models
        rl.name = "RL"
        results[name] = compare(heuristics() + [rl], trace, metric="slowdown",
                                backfill=backfill, config=eval_config())
    return results


def test_table10_unbounded_slowdown(benchmark):
    grids = benchmark.pedantic(
        lambda: {"no-backfill": _grid(False), "backfill": _grid(True)},
        rounds=1, iterations=1,
    )
    for mode, grid in grids.items():
        header = ["trace"] + list(next(iter(grid.values())))
        rows = [[t] + [f"{v:.1f}" for v in row.values()]
                for t, row in grid.items()]
        print_table(f"Table X ({mode}): average (unbounded) slowdown",
                    header, rows)

    nb = grids["no-backfill"]
    for t in MAIN_TRACES:
        # slowdown >= 1 by definition and SJF/F1 dominate FCFS.
        assert all(v >= 1.0 for v in nb[t].values())
        assert min(nb[t]["SJF"], nb[t]["F1"]) <= nb[t]["FCFS"]
        # RL within the heuristic envelope (never catastrophically worst).
        heur = {k: v for k, v in nb[t].items() if k != "RL"}
        assert nb[t]["RL"] <= 1.5 * max(heur.values())
