"""Table XI reproduction (Appendix B): average job waiting time (seconds)
for every scheduler on the four main traces, with/without backfilling.

Paper observations: values are large (seconds of wall-clock wait);
backfilling reduces waiting dramatically for FCFS; RL is best or close.
"""

from repro.api import compare

from ._helpers import (
    MAIN_TRACES,
    eval_config,
    get_rl_scheduler,
    get_trace,
    heuristics,
    print_table,
)


def _grid(backfill: bool):
    results = {}
    for name in MAIN_TRACES:
        trace = get_trace(name)
        rl = get_rl_scheduler(name, "bsld")
        rl.name = "RL"
        results[name] = compare(heuristics() + [rl], trace, metric="wait",
                                backfill=backfill, config=eval_config())
    return results


def test_table11_waiting_time(benchmark):
    grids = benchmark.pedantic(
        lambda: {"no-backfill": _grid(False), "backfill": _grid(True)},
        rounds=1, iterations=1,
    )
    for mode, grid in grids.items():
        header = ["trace"] + list(next(iter(grid.values())))
        rows = [[t] + [f"{v:.0f}" for v in row.values()]
                for t, row in grid.items()]
        print_table(f"Table XI ({mode}): average waiting time (s)", header, rows)

    nb, bf = grids["no-backfill"], grids["backfill"]
    for t in MAIN_TRACES:
        # backfilling reduces FCFS waiting substantially on congested traces.
        assert bf[t]["FCFS"] <= nb[t]["FCFS"]
        # the informed heuristics beat FCFS without backfilling.
        assert min(nb[t]["SJF"], nb[t]["F1"]) <= nb[t]["FCFS"]
        # RL inside the heuristic envelope.
        heur = {k: v for k, v in nb[t].items() if k != "RL"}
        assert nb[t]["RL"] <= 1.5 * max(heur.values())
