"""Fig. 9 reproduction: RLScheduler training on PIK-IPLEX-2009 with and
without trajectory filtering.

Paper result: "without trajectory filtering, the training does not converge
even after 100 epoch; with trajectory filtering enabled ... RLScheduler
converges" — the filter removes the destructive high-variance sequences.
"""

import numpy as np

import repro

from ._helpers import S, get_trace, print_table, train_configs


def _train(trace, use_filter: bool) -> np.ndarray:
    env, ppo, train = train_configs(epochs=S.curve_epochs, use_filter=use_filter)
    result = repro.train(trace, metric="bsld", env_config=env,
                         ppo_config=ppo, train_config=train)
    return result.metric_curve()  # bsld per epoch (lower = better)


def test_fig9_filtering_stabilises_pik_training(benchmark):
    trace = get_trace("PIK-IPLEX")

    def run():
        return {
            "without filtering": _train(trace, use_filter=False),
            "with filtering": _train(trace, use_filter=True),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name] + [f"{v:.1f}" for v in curve]
            for name, curve in curves.items()]
    print_table("Fig. 9: PIK-IPLEX training, trajectory filtering on/off",
                ["variant"] + [f"ep{i}" for i in range(S.curve_epochs)], rows)

    unfiltered = curves["without filtering"]
    filtered = curves["with filtering"]

    # Filtering controls the variance of what the agent *sees*: the
    # per-epoch metric of the filtered run must fluctuate far less.
    # (Unfiltered epochs mix bsld~1 windows with catastrophic ones.)
    spread_unfiltered = np.std(unfiltered) / max(np.mean(unfiltered), 1e-9)
    spread_filtered = np.std(filtered) / max(np.mean(filtered), 1e-9)
    print(f"relative spread: unfiltered={spread_unfiltered:.2f} "
          f"filtered={spread_filtered:.2f}")
    assert spread_filtered < spread_unfiltered

    # Filtered training sequences sit inside R=(median, 2*mean): their bsld
    # is bounded away from the catastrophic tail.
    assert np.max(filtered) < max(np.max(unfiltered), 2.0)
