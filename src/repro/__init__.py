"""RLScheduler (SC'20) reproduction.

An automated HPC batch job scheduler using reinforcement learning, rebuilt
as a self-contained NumPy library: SWF workloads, a discrete-event cluster
simulator with EASY backfilling (SchedGym), Table III heuristic baselines,
a from-scratch autodiff/NN stack, and PPO training with the paper's
kernel-based policy network and trajectory filtering.

Quickstart::

    import repro

    trace = repro.load_trace("Lublin-1", n_jobs=2000)
    result = repro.train(trace, metric="bsld",
                         train_config=repro.TrainConfig(epochs=20,
                                                        trajectories_per_epoch=20,
                                                        trajectory_length=64))
    scores = repro.compare(
        [repro.schedulers.SJF(), repro.schedulers.F1(), result.as_scheduler()],
        trace,
        metric="bsld",
    )
"""

from . import (
    api,
    config,
    nn,
    rl,
    runtime,
    scenarios,
    schedulers,
    sim,
    study,
    telemetry,
    workloads,
)
from .api import (
    EvalResult,
    compare,
    evaluate,
    generalization_matrix,
    scenario_matrix,
    train,
    train_matrix,
)
from .config import (
    EnvConfig,
    EvalConfig,
    FeatureLayoutError,
    PPOConfig,
    RuntimeConfig,
    ScenarioConfig,
    ServeConfig,
    StudyConfig,
    TelemetryConfig,
    TenantConfig,
    TrainConfig,
)
from .rl import Trainer, TrainingResult
from .scenarios import Scenario, available_scenarios, get_scenario
from .schedulers import RLSchedulerPolicy
from .sim import ClusterSpec, SchedGym, run_scheduler
from .workloads import load_trace

__version__ = "1.0.0"

__all__ = [
    "api",
    "config",
    "nn",
    "rl",
    "runtime",
    "scenarios",
    "schedulers",
    "sim",
    "study",
    "telemetry",
    "workloads",
    "train",
    "evaluate",
    "compare",
    "scenario_matrix",
    "train_matrix",
    "generalization_matrix",
    "EvalResult",
    "EnvConfig",
    "PPOConfig",
    "TrainConfig",
    "EvalConfig",
    "RuntimeConfig",
    "ScenarioConfig",
    "ServeConfig",
    "TenantConfig",
    "StudyConfig",
    "TelemetryConfig",
    "FeatureLayoutError",
    "Trainer",
    "TrainingResult",
    "RLSchedulerPolicy",
    "Scenario",
    "available_scenarios",
    "get_scenario",
    "ClusterSpec",
    "SchedGym",
    "run_scheduler",
    "load_trace",
    "__version__",
]
