"""Reinforcement-learning core: rewards, GAE buffer, PPO, trajectory
filtering, and the epoch training loop."""

from .reward import RewardFn, combine_rewards, make_reward, reward_names
from .buffer import TrajectoryBuffer, discount_cumsum
from .ppo import PPOAgent, UpdateStats
from .filtering import FilterRange, TrajectoryFilter, probe_distribution
from .trainer import EpochRecord, Trainer, TrainingResult, train

__all__ = [
    "RewardFn",
    "make_reward",
    "combine_rewards",
    "reward_names",
    "TrajectoryBuffer",
    "discount_cumsum",
    "PPOAgent",
    "UpdateStats",
    "FilterRange",
    "TrajectoryFilter",
    "probe_distribution",
    "EpochRecord",
    "Trainer",
    "TrainingResult",
    "train",
]
