"""Proximal Policy Optimization (clip variant) — the paper's training
algorithm, "based on the PPO algorithm from OpenAI Spinning Up".

Actor-critic: the policy network scores visible jobs (any Table IV
architecture), the value network predicts the expected sequence reward.
Per epoch, ``train_pi_iters`` clipped-surrogate steps update the policy
(with early stopping once the sampled KL divergence exceeds
``1.5 × target_kl``) and ``train_v_iters`` regression steps fit the value
function — the SpinningUp procedure.  Updates run on random minibatches so
peak memory stays bounded on full paper-scale batches (25,600 steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Sequence

import numpy as np

from repro.config import PPOConfig, RuntimeConfig
from repro.nn import (
    Adam,
    Module,
    Tensor,
    clip_grad_norm,
    log_prob_of,
    masked_log_softmax,
    no_grad,
    sample_action,
    sample_action_batch,
    segment_log_prob_of,
    segment_log_softmax,
    segment_sum,
    valid_rows,
)
from repro.runtime.grad import GradientReducer
from repro.telemetry import core as _telemetry

__all__ = ["PPOAgent", "UpdateStats"]


@dataclass(frozen=True)
class UpdateStats:
    """Diagnostics of one epoch update.

    ``kl`` is the mean sampled KL across the minibatch iterations this
    epoch actually ran; ``kl_last`` keeps the final iteration's value
    (what the early-stop check saw last).
    """

    policy_loss: float
    value_loss: float
    kl: float
    entropy: float
    pi_iters_run: int
    early_stopped: bool
    kl_last: float = float("nan")


def _policy_terms(
    policy: Module,
    batch: dict[str, np.ndarray],
    clip_ratio: float,
    update_path: str,
) -> tuple[Tensor, Tensor, Tensor]:
    """Per-row PPO-clip terms: ``(surrogate, entropy_rows, logp)``.

    The one forward pass both update paths share.  ``update_path="dense"``
    scores the padded ``(B, M)`` block and masks; ``"sparse"`` gathers the
    K valid rows across the minibatch, forwards only those through the
    policy's gradient-capable row scorer, and works on the flat vector
    with CSR segment ops — no ``-1e9`` padding anywhere.  Both paths
    produce the same values to float64 round-off.
    """
    obs = batch["obs"]
    masks = batch["masks"]
    actions = batch["actions"]
    if update_path == "sparse":
        b_idx, s_idx, indptr = valid_rows(masks)
        scores = policy.score_rows_grad(obs[b_idx, s_idx])
        log_probs = segment_log_softmax(scores, indptr)
        logp = segment_log_prob_of(log_probs, masks, actions, indptr)
        ent_rows = -segment_sum(log_probs.exp() * log_probs, indptr)
    else:
        logits = policy(obs, masks)
        log_probs = masked_log_softmax(logits, masks)
        logp = log_prob_of(log_probs, actions)
        ent_rows = -(log_probs.exp() * log_probs).sum(axis=-1)
    ratio = (logp - Tensor(batch["log_probs"])).exp()
    adv_t = Tensor(batch["advantages"])
    clipped = ratio.clip(1.0 - clip_ratio, 1.0 + clip_ratio) * adv_t
    surrogate = (ratio * adv_t).minimum(clipped)
    return surrogate, ent_rows, logp


def _policy_shard_loss(
    policy: Module,
    shard: dict[str, np.ndarray],
    clip_ratio: float = 0.2,
    entropy_coef: float = 0.0,
    update_path: str = "dense",
) -> tuple[Tensor, dict[str, float]]:
    """Sum-reduced policy loss on one shard (GradientReducer contract)."""
    surrogate, ent_rows, logp = _policy_terms(
        policy, shard, clip_ratio, update_path
    )
    loss_sum = -surrogate.sum()
    ent_sum = ent_rows.sum()
    if entropy_coef > 0:
        loss_sum = loss_sum - entropy_coef * ent_sum
    aux = {
        "loss": float(loss_sum.item()),
        "kl": float(np.sum(shard["log_probs"] - logp.numpy())),
        "entropy": float(ent_sum.item()),
    }
    return loss_sum, aux


def _value_shard_loss(
    value: Module, shard: dict[str, np.ndarray]
) -> tuple[Tensor, dict[str, float]]:
    """Sum-reduced value-regression loss on one shard."""
    values = value(shard["obs"])
    loss_sum = ((values - Tensor(shard["returns"])) ** 2.0).sum()
    return loss_sum, {"loss": float(loss_sum.item())}


class PPOAgent:
    """Actor-critic agent with PPO-clip updates.

    ``config.update_path`` selects the dense reference update or the
    segment-batched sparse one (needs a policy exposing
    ``score_rows_grad``, i.e. :class:`KernelPolicy`).  ``grad_runtime``
    shards minibatch gradients across runtime workers (data-parallel;
    ``None`` keeps the classic in-process backward pass).
    """

    def __init__(
        self,
        policy: Module,
        value: Module,
        config: PPOConfig | None = None,
        seed: int = 0,
        grad_runtime: RuntimeConfig | None = None,
    ):
        self.policy = policy
        self.value = value
        self.config = config or PPOConfig()
        if self.config.update_path == "sparse" and not callable(
            getattr(policy, "score_rows_grad", None)
        ):
            raise TypeError(
                "update_path='sparse' requires a policy with a "
                f"score_rows_grad() method; {type(policy).__name__} scores "
                "jobs jointly and has no per-row twin — use the dense path"
            )
        self.rng = np.random.default_rng(seed)
        self.pi_optimizer = Adam(policy.parameters(), lr=self.config.pi_lr)
        self.v_optimizer = Adam(value.parameters(), lr=self.config.vf_lr)
        self._grad_runtime = grad_runtime
        self._grad_reducer: GradientReducer | None = None

    def _reducer(self) -> GradientReducer:
        """Lazily build the gradient reducer and install module replicas."""
        if self._grad_reducer is None:
            self._grad_reducer = GradientReducer(self._grad_runtime)
            self._grad_reducer.install(
                {"policy": self.policy, "value": self.value}
            )
        return self._grad_reducer

    def close(self) -> None:
        """Release the gradient-reduction workers (no-op when unsharded)."""
        if self._grad_reducer is not None:
            self._grad_reducer.close()
            self._grad_reducer = None

    # ------------------------------------------------------------------
    # weight snapshots (actor-runtime weight streaming)
    # ------------------------------------------------------------------
    def export_weights(self) -> dict[str, dict[str, np.ndarray]]:
        """Picklable snapshot of both networks' parameters.

        ``state_dict`` copies each array, so the snapshot is immune to the
        optimizers' in-place parameter updates — an actor replica loading
        it later sees exactly the weights at export time.
        """
        return {
            "policy": self.policy.state_dict(),
            "value": self.value.state_dict(),
        }

    def load_weights(self, snapshot: dict[str, dict[str, np.ndarray]]) -> None:
        """Install an :meth:`export_weights` snapshot into both networks."""
        self.policy.load_state_dict(snapshot["policy"])
        self.value.load_state_dict(snapshot["value"])

    # ------------------------------------------------------------------
    # acting
    # ------------------------------------------------------------------
    def act(
        self,
        obs: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> tuple[int, float, float]:
        """Sample an action for one observation (batch-size-1 legacy path).

        Returns ``(action, log_prob, value_estimate)`` — what the buffer
        stores per step.  ``rng`` overrides the agent's sampling stream.
        Note the trainer does NOT use this method: its rollouts go through
        :meth:`act_batch`, whose inverse-CDF sampler consumes the
        generator differently (one ``rng.random()`` per step vs
        ``rng.choice``), so the two paths draw different actions from the
        same stream.  This entry point serves simple scripted use and the
        pre-vectorisation perf baseline.
        """
        with no_grad():
            logits = self.policy(obs[None], mask[None])
            log_probs = masked_log_softmax(logits, mask[None]).numpy()[0]
            value = float(self.value(obs[None]).numpy()[0])
        action = sample_action(log_probs, rng if rng is not None else self.rng)
        return action, float(log_probs[action]), value

    def log_probs_batch(self, obs: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Masked log-softmax over a batch, as a plain array (no grad).

        Policies that score jobs independently (:class:`KernelPolicy`
        exposes ``score_rows``) take a sparse path: only the K valid rows
        across the batch go through the network instead of all N·M padded
        slots.  The scattered logits match the dense forward row-for-row,
        and the softmax arithmetic below mirrors
        :func:`masked_log_softmax` operation-for-operation, so both paths
        produce bit-identical log-probabilities.
        """
        masks = np.asarray(masks, dtype=bool)
        if not masks.any(axis=-1).all():
            raise ValueError("every row must have at least one valid action")
        score_rows = getattr(self.policy, "score_rows", None)
        if score_rows is None:
            with no_grad():
                logits = self.policy(obs, masks)
                return masked_log_softmax(logits, masks).numpy()
        i_idx, m_idx = np.nonzero(masks)
        with no_grad():
            scores = score_rows(obs[i_idx, m_idx])
        logits = np.full(masks.shape, -1e9, dtype=np.float64)
        logits[i_idx, m_idx] = scores
        shift = logits.max(axis=-1, keepdims=True)
        shifted = logits - shift
        log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        return shifted - log_norm

    def act_batch(
        self,
        obs: np.ndarray,
        masks: np.ndarray,
        rngs: "Sequence[np.random.Generator] | np.random.Generator | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample actions for a batch of observations in one forward pass.

        ``obs`` is ``(N, M, F)``, ``masks`` ``(N, M)``.  ``rngs`` is either
        one generator shared by all rows or a sequence of N per-row
        generators (the vectorised trainer passes per-trajectory streams).
        Returns ``(actions, log_probs)``, both length N.  Value estimates
        are intentionally *not* computed here — fetch them once per
        finished episode via :meth:`value_batch`, which is both faster and
        numerically identical between sequential and vectorised rollouts.
        """
        obs = np.asarray(obs)
        n = obs.shape[0]
        log_probs = self.log_probs_batch(obs, masks)
        if rngs is None:
            rngs = self.rng
        if isinstance(rngs, np.random.Generator):
            uniforms = rngs.random(n)
        else:
            # One draw per row from that row's own stream, in row order —
            # a trajectory's sample depends only on its own generator.
            uniforms = np.array([rng.random() for rng in rngs])
        actions = sample_action_batch(log_probs, uniforms)
        return actions, log_probs[np.arange(n), actions]

    def value_batch(self, obs: np.ndarray) -> np.ndarray:
        """Value estimates for a batch of observations: ``(B, M, F) -> (B,)``."""
        with no_grad():
            return self.value(np.asarray(obs)).numpy().copy()

    def act_greedy(self, obs: np.ndarray, mask: np.ndarray) -> int:
        """Deterministic test-time action (highest probability)."""
        with no_grad():
            logits = self.policy(obs[None], mask[None])
            log_probs = masked_log_softmax(logits, mask[None]).numpy()[0]
        return int(np.argmax(log_probs))

    def act_greedy_batch(self, obs: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Deterministic actions for a batch: argmax per row."""
        return np.argmax(self.log_probs_batch(np.asarray(obs), masks), axis=-1)

    def episode_log_probs(
        self, obs: np.ndarray, masks: np.ndarray, actions: np.ndarray
    ) -> np.ndarray:
        """Canonical behaviour log-probs for one finished episode.

        ``act_batch``'s per-step forwards batch *across environments*, and
        BLAS kernels are not bit-reproducible across batch shapes — the
        same observation scored inside different batches can differ in the
        last ulp.  That never flips a sampled action, but it would leak
        batch-layout noise into the stored log-probs.  Re-deriving them
        from one per-episode ``(T, M, F)`` batch (same shape and content
        whether the episode was collected sequentially or vectorised)
        makes the recorded trajectory data exactly
        collection-order-independent.
        """
        log_probs = self.log_probs_batch(np.asarray(obs), masks)
        return log_probs[np.arange(len(actions)), np.asarray(actions)]

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def update(self, data: dict[str, np.ndarray]) -> UpdateStats:
        """One epoch of PPO updates from a :class:`TrajectoryBuffer` dump."""
        cfg = self.config
        n = len(data["actions"])
        if n == 0:
            raise ValueError("empty update batch")
        batch_size = min(cfg.minibatch_size, n)

        # Per-iteration spans carry the update path in the name so dense
        # and sparse timings stay distinguishable in one trace; KL rides
        # as a gauge (clip-frac is recorded inside _policy_step, where the
        # ratios exist).
        reg = _telemetry.current()
        pi_span = f"update.policy_iter.{cfg.update_path}"
        kl_gauge = reg.gauge("update.kl")

        pi_losses, kls, entropies = [], [], []
        early_stopped = False
        iters_run = 0
        for _ in range(cfg.train_pi_iters):
            idx = self._minibatch_indices(n, batch_size)
            with reg.span(pi_span):
                loss_pi, kl, ent = self._policy_step(data, idx)
            iters_run += 1
            kl_gauge.set(kl)
            pi_losses.append(loss_pi)
            kls.append(kl)
            entropies.append(ent)
            if kl > 1.5 * cfg.target_kl:
                early_stopped = True
                break

        v_losses = []
        for _ in range(cfg.train_v_iters):
            idx = self._minibatch_indices(n, batch_size)
            with reg.span("update.value_iter"):
                v_losses.append(self._value_step(data, idx))

        return UpdateStats(
            policy_loss=float(np.mean(pi_losses)),
            value_loss=float(np.mean(v_losses)),
            kl=float(np.mean(kls)),
            entropy=float(np.mean(entropies)),
            pi_iters_run=iters_run,
            early_stopped=early_stopped,
            kl_last=float(kls[-1]),
        )

    def _minibatch_indices(self, n: int, batch_size: int) -> np.ndarray:
        if batch_size >= n:
            return np.arange(n)
        return self.rng.choice(n, size=batch_size, replace=False)

    def _policy_step(
        self, data: dict[str, np.ndarray], idx: np.ndarray
    ) -> tuple[float, float, float]:
        cfg = self.config
        batch = {
            k: data[k][idx]
            for k in ("obs", "masks", "actions", "log_probs", "advantages")
        }
        if self._grad_runtime is not None:
            return self._policy_step_sharded(batch)

        surrogate, ent_rows, logp = _policy_terms(
            self.policy, batch, cfg.clip_ratio, cfg.update_path
        )
        loss = -surrogate.mean()
        ent = ent_rows.mean()
        if cfg.entropy_coef > 0:
            loss = loss - cfg.entropy_coef * ent

        self.pi_optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.pi_optimizer.params, cfg.max_grad_norm)
        self.pi_optimizer.step()

        reg = _telemetry.current()
        if reg.enabled:
            # Fraction of samples whose importance ratio hit the clip
            # boundary — pure read of already-computed values, so the
            # update itself is bit-identical with telemetry off.
            ratio = np.exp(logp.numpy() - batch["log_probs"])
            clip_frac = float(np.mean(np.abs(ratio - 1.0) > cfg.clip_ratio))
            reg.gauge("update.clip_frac").set(clip_frac)

        kl = float(np.mean(batch["log_probs"] - logp.numpy()))
        return float(loss.item()), kl, float(ent.item())

    def _policy_step_sharded(
        self, batch: dict[str, np.ndarray]
    ) -> tuple[float, float, float]:
        cfg = self.config
        loss_fn = partial(
            _policy_shard_loss,
            clip_ratio=cfg.clip_ratio,
            entropy_coef=cfg.entropy_coef,
            update_path=cfg.update_path,
        )
        grads, aux, n = self._reducer().grad_sums(
            "policy", self.policy, loss_fn, batch
        )
        self._apply_grads(self.pi_optimizer, grads, n)
        return aux["loss"] / n, aux["kl"] / n, aux["entropy"] / n

    def _value_step(self, data: dict[str, np.ndarray], idx: np.ndarray) -> float:
        obs = data["obs"][idx]
        if self._grad_runtime is not None:
            batch = {"obs": obs, "returns": data["returns"][idx]}
            grads, aux, n = self._reducer().grad_sums(
                "value", self.value, _value_shard_loss, batch
            )
            self._apply_grads(self.v_optimizer, grads, n)
            return aux["loss"] / n
        returns = Tensor(data["returns"][idx])
        values = self.value(obs)
        loss = ((values - returns) ** 2.0).mean()
        self.v_optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.v_optimizer.params, self.config.max_grad_norm)
        self.v_optimizer.step()
        return float(loss.item())

    def _apply_grads(self, optimizer: Adam, grads: list, n: int) -> None:
        """Load mean-loss gradients into the params, clip, and step."""
        for p, g in zip(optimizer.params, grads):
            p.grad = g / n
        clip_grad_norm(optimizer.params, self.config.max_grad_norm)
        optimizer.step()
