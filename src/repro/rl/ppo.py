"""Proximal Policy Optimization (clip variant) — the paper's training
algorithm, "based on the PPO algorithm from OpenAI Spinning Up".

Actor-critic: the policy network scores visible jobs (any Table IV
architecture), the value network predicts the expected sequence reward.
Per epoch, ``train_pi_iters`` clipped-surrogate steps update the policy
(with early stopping once the sampled KL divergence exceeds
``1.5 × target_kl``) and ``train_v_iters`` regression steps fit the value
function — the SpinningUp procedure.  Updates run on random minibatches so
peak memory stays bounded on full paper-scale batches (25,600 steps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PPOConfig
from repro.nn import (
    Adam,
    Module,
    Tensor,
    clip_grad_norm,
    entropy,
    log_prob_of,
    masked_log_softmax,
    no_grad,
    sample_action,
)

__all__ = ["PPOAgent", "UpdateStats"]


@dataclass(frozen=True)
class UpdateStats:
    """Diagnostics of one epoch update."""

    policy_loss: float
    value_loss: float
    kl: float
    entropy: float
    pi_iters_run: int
    early_stopped: bool


class PPOAgent:
    """Actor-critic agent with PPO-clip updates."""

    def __init__(
        self,
        policy: Module,
        value: Module,
        config: PPOConfig | None = None,
        seed: int = 0,
    ):
        self.policy = policy
        self.value = value
        self.config = config or PPOConfig()
        self.rng = np.random.default_rng(seed)
        self.pi_optimizer = Adam(policy.parameters(), lr=self.config.pi_lr)
        self.v_optimizer = Adam(value.parameters(), lr=self.config.vf_lr)

    # ------------------------------------------------------------------
    # acting
    # ------------------------------------------------------------------
    def act(self, obs: np.ndarray, mask: np.ndarray) -> tuple[int, float, float]:
        """Sample an action for one observation.

        Returns ``(action, log_prob, value_estimate)`` — what the buffer
        stores per step.
        """
        with no_grad():
            logits = self.policy(obs[None], mask[None])
            log_probs = masked_log_softmax(logits, mask[None]).numpy()[0]
            value = float(self.value(obs[None]).numpy()[0])
        action = sample_action(log_probs, self.rng)
        return action, float(log_probs[action]), value

    def act_greedy(self, obs: np.ndarray, mask: np.ndarray) -> int:
        """Deterministic test-time action (highest probability)."""
        with no_grad():
            logits = self.policy(obs[None], mask[None])
            log_probs = masked_log_softmax(logits, mask[None]).numpy()[0]
        return int(np.argmax(log_probs))

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def update(self, data: dict[str, np.ndarray]) -> UpdateStats:
        """One epoch of PPO updates from a :class:`TrajectoryBuffer` dump."""
        cfg = self.config
        n = len(data["actions"])
        if n == 0:
            raise ValueError("empty update batch")
        batch_size = min(cfg.minibatch_size, n)

        pi_losses, kls, entropies = [], [], []
        early_stopped = False
        iters_run = 0
        for _ in range(cfg.train_pi_iters):
            idx = self._minibatch_indices(n, batch_size)
            loss_pi, kl, ent = self._policy_step(data, idx)
            iters_run += 1
            pi_losses.append(loss_pi)
            kls.append(kl)
            entropies.append(ent)
            if kl > 1.5 * cfg.target_kl:
                early_stopped = True
                break

        v_losses = []
        for _ in range(cfg.train_v_iters):
            idx = self._minibatch_indices(n, batch_size)
            v_losses.append(self._value_step(data, idx))

        return UpdateStats(
            policy_loss=float(np.mean(pi_losses)),
            value_loss=float(np.mean(v_losses)),
            kl=float(kls[-1]),
            entropy=float(np.mean(entropies)),
            pi_iters_run=iters_run,
            early_stopped=early_stopped,
        )

    def _minibatch_indices(self, n: int, batch_size: int) -> np.ndarray:
        if batch_size >= n:
            return np.arange(n)
        return self.rng.choice(n, size=batch_size, replace=False)

    def _policy_step(
        self, data: dict[str, np.ndarray], idx: np.ndarray
    ) -> tuple[float, float, float]:
        cfg = self.config
        obs = data["obs"][idx]
        masks = data["masks"][idx]
        actions = data["actions"][idx]
        logp_old = data["log_probs"][idx]
        adv = data["advantages"][idx]

        logits = self.policy(obs, masks)
        log_probs = masked_log_softmax(logits, masks)
        logp = log_prob_of(log_probs, actions)

        ratio = (logp - Tensor(logp_old)).exp()
        adv_t = Tensor(adv)
        clipped = ratio.clip(1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio) * adv_t
        surrogate = (ratio * adv_t).minimum(clipped)
        loss = -surrogate.mean()
        ent = entropy(log_probs)
        if cfg.entropy_coef > 0:
            loss = loss - cfg.entropy_coef * ent

        self.pi_optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.pi_optimizer.params, cfg.max_grad_norm)
        self.pi_optimizer.step()

        kl = float(np.mean(logp_old - logp.numpy()))
        return float(loss.item()), kl, float(ent.item())

    def _value_step(self, data: dict[str, np.ndarray], idx: np.ndarray) -> float:
        obs = data["obs"][idx]
        returns = Tensor(data["returns"][idx])
        values = self.value(obs)
        loss = ((values - returns) ** 2.0).mean()
        self.v_optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.v_optimizer.params, self.config.max_grad_norm)
        self.v_optimizer.step()
        return float(loss.item())
