"""Reward functions (paper §IV-A and §V-F).

"Reward is a function addressing a user-given optimization goal": for a
minimise-metric like bounded slowdown the reward is its negation; for
utilization the reward is the metric itself.  Fairness goals aggregate a
per-user metric (e.g. ``Maximal`` average bounded slowdown over users).

Reward functions have signature ``f(completed_jobs, n_procs) -> float``,
evaluated once at the end of a scheduled sequence, and are oriented so
**higher is always better** — the environment hands them to PPO unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.metrics import METRICS, metric_by_name
from repro.workloads.job import Job

__all__ = ["RewardFn", "make_reward", "combine_rewards", "reward_names"]

RewardFn = Callable[[Sequence[Job], int], float]


def make_reward(metric: str = "bsld") -> RewardFn:
    """Reward for one named metric (see :data:`repro.sim.metrics.METRICS`).

    Examples: ``make_reward("bsld")`` → ``-average_bounded_slowdown``;
    ``make_reward("util")`` → ``+resource_utilization``;
    ``make_reward("fair-bsld-max")`` → the §V-F Maximal-fairness goal.
    """
    fn, higher_is_better = metric_by_name(metric)
    sign = 1.0 if higher_is_better else -1.0

    def reward(jobs: Sequence[Job], n_procs: int) -> float:
        return sign * fn(jobs, n_procs)

    reward.__name__ = f"reward_{metric.replace('-', '_')}"
    return reward


def combine_rewards(weighted: dict[str, float]) -> RewardFn:
    """Weighted sum of named rewards — the paper's "combined scheduling
    metrics" direction (e.g. minimise slowdown *and* maximise utilization:
    ``combine_rewards({"bsld": 1.0, "util": 100.0})``)."""
    if not weighted:
        raise ValueError("need at least one metric")
    parts = [(make_reward(name), weight) for name, weight in weighted.items()]

    def reward(jobs: Sequence[Job], n_procs: int) -> float:
        return sum(weight * fn(jobs, n_procs) for fn, weight in parts)

    return reward


def reward_names() -> list[str]:
    """All metric names accepted by :func:`make_reward`."""
    return sorted(METRICS)
