"""The RLScheduler training loop (paper §V-A).

Per epoch: sample ``trajectories_per_epoch`` job sequences of
``trajectory_length`` continuous jobs from the trace, roll each through
SchedGym with the current (stochastic) policy, then run the PPO update.
With trajectory filtering enabled, the first ``filter_phase1_fraction`` of
epochs trains only on sequences whose SJF-probe metric falls inside the
fitted range (two-step schedule of §IV-C); the remaining epochs see
everything.

The per-epoch mean metric values form the training curves of
Figs. 8-13.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import EnvConfig, PPOConfig, TrainConfig
from repro.nn import Module, ValueMLP, make_policy
from repro.schedulers.rl_scheduler import RLSchedulerPolicy
from repro.sim.env import SchedGym
from repro.sim.metrics import metric_by_name
from repro.workloads.sampler import SequenceSampler
from repro.workloads.swf import SWFTrace

from .buffer import TrajectoryBuffer
from .filtering import TrajectoryFilter
from .ppo import PPOAgent, UpdateStats
from .reward import make_reward

__all__ = ["EpochRecord", "TrainingResult", "Trainer", "train"]


@dataclass(frozen=True)
class EpochRecord:
    """One point of a training curve."""

    epoch: int
    mean_metric: float          # raw metric (e.g. average bounded slowdown)
    mean_reward: float          # signed reward the agent maximises
    stats: UpdateStats
    n_rejected: int             # sequences rejected by the trajectory filter
    wall_time: float            # seconds spent in this epoch
    filtered_phase: bool
    val_reward: float = float("nan")  # greedy-policy reward on held-out seqs


@dataclass
class TrainingResult:
    """Everything a training run produced."""

    trace_name: str
    metric: str
    policy_preset: str
    curve: list[EpochRecord] = field(default_factory=list)
    policy: Module | None = None
    value: Module | None = None
    n_procs: int = 0
    env_config: EnvConfig | None = None
    best_policy_state: dict | None = None  # snapshot of the best epoch
    best_epoch: int = -1

    def metric_curve(self) -> np.ndarray:
        """Per-epoch mean metric values (the Fig. 10-13 y-axis)."""
        return np.array([r.mean_metric for r in self.curve])

    def reward_curve(self) -> np.ndarray:
        """Per-epoch mean rewards (the Fig. 8 y-axis, −bsld)."""
        return np.array([r.mean_reward for r in self.curve])

    def as_scheduler(
        self, name: str | None = None, use_best: bool = True
    ) -> RLSchedulerPolicy:
        """Wrap the trained policy for greedy deployment (Table V-XI).

        ``use_best`` restores the snapshot from the best training epoch
        (by mean reward); per-epoch stochasticity means the *final* epoch
        is not necessarily the strongest policy.
        """
        if self.policy is None:
            raise RuntimeError("training has not run yet")
        if use_best and self.best_policy_state is not None:
            self.policy.load_state_dict(self.best_policy_state)
        return RLSchedulerPolicy(
            self.policy,
            n_procs=self.n_procs,
            env_config=self.env_config,
            preset=self.policy_preset,
            name=name or f"RL-{self.trace_name}",
        )


class Trainer:
    """Drives PPO training of a scheduling policy on one trace."""

    #: give up resampling a filtered sequence after this many rejections
    MAX_FILTER_TRIES = 64

    def __init__(
        self,
        trace: SWFTrace,
        metric: str = "bsld",
        policy_preset: str = "kernel",
        env_config: EnvConfig | None = None,
        ppo_config: PPOConfig | None = None,
        train_config: TrainConfig | None = None,
        policy: Module | None = None,
    ):
        self.trace = trace
        self.metric = metric
        self.policy_preset = policy_preset
        self.env_config = env_config or EnvConfig()
        self.ppo_config = ppo_config or PPOConfig()
        self.train_config = train_config or TrainConfig()

        _, self._higher_is_better = metric_by_name(metric)
        self.env = SchedGym(
            trace.max_procs, make_reward(metric), config=self.env_config
        )
        m, f = self.env_config.max_obsv_size, self.env_config.job_features
        seed = self.train_config.seed
        self.policy = policy or make_policy(policy_preset, m, f, seed=seed)
        self.value = ValueMLP(m, f, seed=seed + 1)
        self.agent = PPOAgent(self.policy, self.value, self.ppo_config, seed=seed)
        self.sampler = SequenceSampler(
            trace, self.train_config.trajectory_length, seed=seed
        )
        self._sample_rng = np.random.default_rng(seed + 2)

        # Terminal rewards span orders of magnitude across metrics (bsld in
        # the hundreds, util in [0,1]).  The value network regresses raw
        # returns, so rescale rewards to unit-ish magnitude using the first
        # epoch's spread; a constant rescale leaves the (normalised)
        # advantages — hence the policy updates — unchanged, but keeps the
        # value regression well-conditioned.
        self._reward_scale: float | None = None

        # Held-out validation sequences for checkpoint selection: the
        # deployed policy acts *greedily*, so the best checkpoint must be
        # chosen by greedy performance, not by the stochastic rollout
        # reward (they can diverge substantially early in training).
        val_sampler = SequenceSampler(
            trace, self.train_config.trajectory_length, seed=seed + 4
        )
        self._val_sequences = val_sampler.sample_many(3)

        self.filter: TrajectoryFilter | None = None
        if self.train_config.use_trajectory_filter:
            self.filter = TrajectoryFilter(
                metric=metric, backfill=self.env_config.backfill
            )
            self.filter.fit(
                trace,
                n_samples=self.train_config.filter_probe_samples,
                sequence_length=self.train_config.trajectory_length,
                seed=seed + 3,
            )

    # ------------------------------------------------------------------
    def _sample_sequence(self, filtered: bool) -> tuple[list, int]:
        """A training sequence, honouring the filter in phase 1."""
        rejected = 0
        while True:
            jobs = self.sampler.sample()
            if not filtered or self.filter is None:
                return jobs, rejected
            if self.filter.accepts(jobs, self.trace.max_procs):
                return jobs, rejected
            rejected += 1
            if rejected >= self.MAX_FILTER_TRIES:
                # Pathological trace/filter combination: train on the last
                # sample rather than spinning forever.
                return jobs, rejected

    def _rollout(self, jobs, buffer: TrajectoryBuffer) -> float:
        """One trajectory through SchedGym; returns the raw terminal reward."""
        obs, mask = self.env.reset(jobs)
        while True:
            action, log_prob, value = self.agent.act(obs, mask)
            buffer.store(obs, mask, action, log_prob, value)
            result = self.env.step(action)
            if result.done:
                scale = self._reward_scale or 1.0
                buffer.end_episode(result.reward / scale)
                return result.reward
            obs, mask = result.observation, result.action_mask

    def run_epoch(self, epoch: int) -> EpochRecord:
        cfg = self.train_config
        phase1_epochs = int(round(cfg.epochs * cfg.filter_phase1_fraction))
        filtered = self.filter is not None and epoch < phase1_epochs

        start = time.perf_counter()
        buffer = TrajectoryBuffer(
            gamma=self.ppo_config.gamma, lam=self.ppo_config.lam
        )
        if self._reward_scale is None:
            # Calibrate the reward scale with one throwaway rollout so the
            # very first update already sees well-conditioned value targets.
            probe_jobs, _ = self._sample_sequence(filtered)
            probe_reward = self._rollout(probe_jobs, TrajectoryBuffer())
            self._reward_scale = max(abs(probe_reward), 1e-6)

        rewards, total_rejected = [], 0
        for _ in range(cfg.trajectories_per_epoch):
            jobs, rejected = self._sample_sequence(filtered)
            total_rejected += rejected
            rewards.append(self._rollout(jobs, buffer))

        stats = self.agent.update(buffer.get())
        mean_reward = float(np.mean(rewards))
        sign = 1.0 if self._higher_is_better else -1.0
        return EpochRecord(
            epoch=epoch,
            mean_metric=sign * mean_reward,
            mean_reward=mean_reward,
            stats=stats,
            n_rejected=total_rejected,
            wall_time=time.perf_counter() - start,
            filtered_phase=filtered,
            val_reward=self._validate(),
        )

    def _validate(self) -> float:
        """Greedy-policy reward over the held-out validation sequences."""
        rewards = []
        for jobs in self._val_sequences:
            obs, mask = self.env.reset([j.copy() for j in jobs])
            while True:
                result = self.env.step(self.agent.act_greedy(obs, mask))
                if result.done:
                    rewards.append(result.reward)
                    break
                obs, mask = result.observation, result.action_mask
        return float(np.mean(rewards))

    def train(self, progress: bool = False) -> TrainingResult:
        result = TrainingResult(
            trace_name=self.trace.name,
            metric=self.metric,
            policy_preset=self.policy_preset,
            policy=self.policy,
            value=self.value,
            n_procs=self.trace.max_procs,
            env_config=self.env_config,
        )
        best_reward = -np.inf
        for epoch in range(self.train_config.epochs):
            record = self.run_epoch(epoch)
            result.curve.append(record)
            if record.val_reward > best_reward:
                best_reward = record.val_reward
                result.best_policy_state = self.policy.state_dict()
                result.best_epoch = epoch
            if progress:
                print(
                    f"epoch {epoch:3d}  metric={record.mean_metric:10.2f}  "
                    f"kl={record.stats.kl:.4f}  "
                    f"pi_iters={record.stats.pi_iters_run}  "
                    f"{record.wall_time:5.1f}s"
                    + ("  [filtered]" if record.filtered_phase else "")
                )
        return result


def train(
    trace: SWFTrace,
    metric: str = "bsld",
    policy_preset: str = "kernel",
    **kwargs,
) -> TrainingResult:
    """One-call training entry point (see :class:`Trainer` for knobs)."""
    return Trainer(trace, metric=metric, policy_preset=policy_preset, **kwargs).train()
