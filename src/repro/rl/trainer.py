"""The RLScheduler training loop (paper §V-A).

Per epoch: sample ``trajectories_per_epoch`` job sequences of
``trajectory_length`` continuous jobs from the trace, roll each through
SchedGym with the current (stochastic) policy, then run the PPO update.
With trajectory filtering enabled, the first ``filter_phase1_fraction`` of
epochs trains only on sequences whose SJF-probe metric falls inside the
fitted range (two-step schedule of §IV-C); the remaining epochs see
everything.

The per-epoch mean metric values form the training curves of
Figs. 8-13.

Vectorised rollouts
-------------------
With ``TrainConfig.vectorized`` (the default) the epoch's trajectories are
collected through :class:`~repro.runtime.ShardedVecSchedGym`:
``TrainConfig.n_envs`` environments step in lock-step — sharded over
``TrainConfig.runtime`` workers (in-process by default, a process pool
with ``RuntimeConfig(backend="process", workers=N)``) — and every policy
forward serves all of them at once via :meth:`PPOAgent.act_batch`.  The
workers only run env stepping and observation building; the policy
forward and the PPO update stay in the parent, so worker count is a pure
throughput knob and trajectories are bit-identical to the serial path
under the per-trajectory RNG streams.  Value
estimates are deferred to one batched :meth:`PPOAgent.value_batch` call
per finished episode in *both* modes, so the two collection paths produce
bit-identical trajectories, advantages and update statistics for the same
seed:

* each trajectory owns a dedicated action-sampling RNG stream derived from
  ``(seed, epoch, trajectory index)`` — interleaving environments cannot
  reorder anybody's random draws;
* sequences are sampled (and filter-checked) in trajectory order before
  stepping begins;
* episodes enter the :class:`TrajectoryBuffer` in trajectory order.

``benchmarks/perf/run_perf.py`` measures the resulting rollout speedup and
records it in ``BENCH_perf.json``.

Asynchronous rollouts
---------------------
``TrainConfig.rollout_mode="async"`` replaces the lock-step collector
with the episode-granular :class:`~repro.runtime.ActorRuntime`: workers
hold env + policy replicas, run whole episodes locally and stream
finished trajectories back (one IPC transfer per episode instead of two
per step).  ``TrainConfig.staleness`` bounds how far collection may run
ahead of learning: epoch ``e + k`` (``k <= staleness``) is submitted
while epoch ``e`` is still training, so its episodes act on weights up
to ``k`` updates old.  PPO's importance ratios use the stored behaviour
log-probs, so bounded off-policyness is absorbed by the update
(``stale_mode="reweight"``) or over-stale episodes are excluded from the
batch (``"drop"``); both are counted in :class:`EpochRecord`.  With
``staleness=0`` nothing is prefetched and every episode acts on the
current weights — that mode is **bit-identical** to the lock-step path
(same sequences, same RNG streams, same per-episode target batches),
which the async golden tests pin across serial and process backends.
"""

from __future__ import annotations

import copy
import dataclasses
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import EnvConfig, PPOConfig, RuntimeConfig, TrainConfig
from repro.telemetry import core as _telemetry
from repro.telemetry.sink import TelemetrySink, render_summary
from repro.nn import Module, ValueMLP, make_policy
from repro.runtime import ActorRuntime, EpisodeSlice, ShardedVecSchedGym
from repro.runtime.seeding import stream_rng
from repro.schedulers.rl_scheduler import RLSchedulerPolicy
from repro.sim.cluster import ClusterSpec
from repro.sim.env import SchedGym
from repro.sim.metrics import metric_by_name
from repro.sim.vec_env import VecSchedGym
from repro.workloads.sampler import SequenceSampler
from repro.workloads.swf import SWFTrace

from .buffer import TrajectoryBuffer
from .filtering import TrajectoryFilter
from .ppo import PPOAgent, UpdateStats
from .reward import make_reward

__all__ = ["EpochRecord", "TrainingResult", "Trainer", "train"]

logger = logging.getLogger("repro.rl.trainer")


@dataclass(frozen=True)
class EpochRecord:
    """One point of a training curve."""

    epoch: int
    mean_metric: float          # raw metric (e.g. average bounded slowdown)
    mean_reward: float          # signed reward the agent maximises
    stats: UpdateStats
    n_rejected: int             # sequences rejected by the trajectory filter
    wall_time: float            # seconds spent in this epoch
    filtered_phase: bool
    val_reward: float = float("nan")  # greedy-policy reward on held-out seqs
    #: async rollouts only: episodes past the staleness bound that were
    #: excluded from (dropped) or importance-reweighted into this update
    n_stale_dropped: int = 0
    n_stale_reweighted: int = 0
    #: telemetry runs only: per-phase wall seconds for this epoch
    #: (``rollout`` / ``update`` / ``broadcast`` / ``validate``), read
    #: from the epoch spans; ``None`` when telemetry is disabled.  Old
    #: records without the field load with the default (the ``kl_last``
    #: compat pattern).
    phase_times: dict | None = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EpochRecord":
        data = dict(data)
        data["stats"] = UpdateStats(**data["stats"])
        return cls(**data)


@dataclass
class TrainingResult:
    """Everything a training run produced."""

    trace_name: str
    metric: str
    policy_preset: str
    curve: list[EpochRecord] = field(default_factory=list)
    policy: Module | None = None
    value: Module | None = None
    n_procs: int = 0
    env_config: EnvConfig | None = None
    best_policy_state: dict | None = None  # snapshot of the best epoch
    best_epoch: int = -1
    #: free-form training provenance (seed, epoch budget, ...) carried
    #: through save/load — callers that checkpoint results (the study
    #: zoo) record how a checkpoint was produced so a restore can detect
    #: config drift instead of silently reporting the current run's
    #: settings as the checkpoint's
    train_meta: dict | None = None

    def metric_curve(self) -> np.ndarray:
        """Per-epoch mean metric values (the Fig. 10-13 y-axis)."""
        return np.array([r.mean_metric for r in self.curve])

    def reward_curve(self) -> np.ndarray:
        """Per-epoch mean rewards (the Fig. 8 y-axis, −bsld)."""
        return np.array([r.mean_reward for r in self.curve])

    def as_scheduler(
        self, name: str | None = None, use_best: bool = True
    ) -> RLSchedulerPolicy:
        """Wrap the trained policy for greedy deployment (Table V-XI).

        ``use_best`` restores the snapshot from the best training epoch
        (by held-out greedy validation reward); per-epoch stochasticity
        means the *final* epoch is not necessarily the strongest policy.
        The snapshot is loaded into a fresh copy of the policy module —
        ``self.policy`` keeps the final-epoch weights, so resumed
        training and a later ``as_scheduler(use_best=False)`` are
        unaffected.
        """
        if self.policy is None:
            raise RuntimeError("training has not run yet")
        policy = self.policy
        if use_best and self.best_policy_state is not None:
            policy = copy.deepcopy(self.policy)
            policy.load_state_dict(self.best_policy_state)
        return RLSchedulerPolicy(
            policy,
            n_procs=self.n_procs,
            env_config=self.env_config,
            preset=self.policy_preset,
            name=name or f"RL-{self.trace_name}",
        )

    # -- checkpointing ---------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the complete result as one ``.npz`` checkpoint.

        Stores the final policy weights, the best-epoch snapshot, the
        value-network weights, and a JSON metadata blob holding the
        training curve and provenance (trace name, metric, preset,
        cluster size, the full :class:`EnvConfig`).  :meth:`load`
        round-trips everything, so a restored checkpoint deploys and
        reports identically to the in-memory result — the resume
        contract of the generalization study's policy zoo.

        Requires a preset-buildable policy (``policy_preset`` must name a
        registered preset so :meth:`load` can rebuild the network).
        """
        if self.policy is None:
            raise RuntimeError("training has not run yet")
        state: dict[str, np.ndarray] = {
            f"policy/{k}": v for k, v in self.policy.state_dict().items()
        }
        if self.best_policy_state is not None:
            state.update(
                (f"best/{k}", np.asarray(v))
                for k, v in self.best_policy_state.items()
            )
        if self.value is not None:
            state.update(
                (f"value/{k}", v) for k, v in self.value.state_dict().items()
            )
        meta = {
            "trace_name": self.trace_name,
            "metric": self.metric,
            "policy_preset": self.policy_preset,
            "n_procs": self.n_procs,
            "best_epoch": self.best_epoch,
            "env_config": (
                None if self.env_config is None
                else dataclasses.asdict(self.env_config)
            ),
            "train_meta": self.train_meta,
            "curve": [r.to_dict() for r in self.curve],
        }
        state["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        # Write-then-rename so an interrupted save never leaves a
        # truncated .npz behind — a half-written checkpoint would satisfy
        # the zoo's exists() resume check and crash the restore.
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp.npz")
        np.savez(tmp, **state)
        tmp.replace(path)

    @classmethod
    def load(cls, path: str | Path) -> "TrainingResult":
        """Rebuild a :meth:`save`d result (weights, curve, provenance)."""
        groups: dict[str, dict[str, np.ndarray]] = {
            "policy": {}, "best": {}, "value": {}
        }
        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"]).decode())
            for key in data.files:
                if key == "__meta__":
                    continue
                group, _, name = key.partition("/")
                groups[group][name] = data[key]
        env_config = (
            EnvConfig() if meta["env_config"] is None
            else EnvConfig(**meta["env_config"])
        )
        m, f = env_config.max_obsv_size, env_config.job_features
        policy = make_policy(meta["policy_preset"], m, f)
        policy.load_state_dict(groups["policy"])
        value = None
        if groups["value"]:
            value = ValueMLP(m, f)
            value.load_state_dict(groups["value"])
        return cls(
            trace_name=meta["trace_name"],
            metric=meta["metric"],
            policy_preset=meta["policy_preset"],
            curve=[EpochRecord.from_dict(r) for r in meta["curve"]],
            policy=policy,
            value=value,
            n_procs=meta["n_procs"],
            env_config=env_config,
            best_policy_state=groups["best"] or None,
            best_epoch=meta["best_epoch"],
            train_meta=meta.get("train_meta"),
        )


class Trainer:
    """Drives PPO training of a scheduling policy on one trace."""

    #: give up resampling a filtered sequence after this many rejections
    MAX_FILTER_TRIES = 64

    #: RNG-stream tags: each trajectory samples actions from
    #: default_rng([seed, tag, ...]) so sequential and vectorised rollouts
    #: draw identical action sequences regardless of interleaving.
    _ACT_STREAM = 7919
    _PROBE_STREAM = 104_729

    def __init__(
        self,
        trace: SWFTrace | None = None,
        metric: str = "bsld",
        policy_preset: str = "kernel",
        env_config: EnvConfig | None = None,
        ppo_config: PPOConfig | None = None,
        train_config: TrainConfig | None = None,
        policy: Module | None = None,
        cluster: ClusterSpec | None = None,
    ):
        self.train_config = train_config or TrainConfig()
        if self.train_config.scenario is not None:
            # Scenario training: the scenario supplies whatever the caller
            # did not pass explicitly — trace, cluster, and (for
            # memory-constrained clusters) the per-resource feature config.
            from repro.scenarios import get_scenario, resolve_scenario_config

            if trace is None:
                scenario, trace = resolve_scenario_config(
                    self.train_config.scenario
                )
            else:
                scenario = get_scenario(self.train_config.scenario.name)
            cluster = cluster or scenario.cluster
            env_config = scenario.env_config(env_config)
        if trace is None:
            raise ValueError(
                "Trainer needs a trace (or a TrainConfig with a scenario)"
            )
        self.trace = trace
        self.metric = metric
        self.policy_preset = policy_preset
        self.env_config = env_config or EnvConfig()
        self.ppo_config = ppo_config or PPOConfig()
        self.cluster_spec = cluster or ClusterSpec(trace.max_procs)

        _, self._higher_is_better = metric_by_name(metric)
        self.env = SchedGym(
            self.cluster_spec, make_reward(metric), config=self.env_config
        )
        m, f = self.env_config.max_obsv_size, self.env_config.job_features
        seed = self.train_config.seed
        self.policy = policy or make_policy(policy_preset, m, f, seed=seed)
        self.value = ValueMLP(m, f, seed=seed + 1)
        # grad_workers > 1 shards minibatch gradients over a process pool;
        # 1 keeps the classic in-process backward (grad_runtime=None).
        grad_runtime = (
            RuntimeConfig.from_workers(
                self.train_config.grad_workers,
                transport=self.train_config.runtime.transport,
            )
            if self.train_config.grad_workers > 1
            else None
        )
        self.agent = PPOAgent(
            self.policy,
            self.value,
            self.ppo_config,
            seed=seed,
            grad_runtime=grad_runtime,
        )
        self.sampler = SequenceSampler(
            trace, self.train_config.trajectory_length, seed=seed
        )
        # Built on first vectorised collection — a non-vectorised run must
        # not spawn (and hold) idle worker processes.
        self._vec_env: ShardedVecSchedGym | None = None

        # Async rollout state (rollout_mode="async"): the actor pool, the
        # learner's update counter (= weight version), per-epoch sampled
        # sequences, which epochs have been submitted, and episodes that
        # arrived before their epoch was collected.
        self._actor_runtime: ActorRuntime | None = None
        self._n_updates = 0
        self._epoch_sequences: dict[int, tuple[list, int]] = {}
        self._submitted_epochs: set[int] = set()
        self._early_episodes: dict[int, list[EpisodeSlice]] = {}

        # Terminal rewards span orders of magnitude across metrics (bsld in
        # the hundreds, util in [0,1]).  The value network regresses raw
        # returns, so rescale rewards to unit-ish magnitude using the first
        # epoch's spread; a constant rescale leaves the (normalised)
        # advantages — hence the policy updates — unchanged, but keeps the
        # value regression well-conditioned.
        self._reward_scale: float | None = None

        # Held-out validation sequences for checkpoint selection: the
        # deployed policy acts *greedily*, so the best checkpoint must be
        # chosen by greedy performance, not by the stochastic rollout
        # reward (they can diverge substantially early in training).
        val_sampler = SequenceSampler(
            trace, self.train_config.trajectory_length, seed=seed + 4
        )
        self._val_sequences = val_sampler.sample_many(3)
        self._val_env = VecSchedGym(
            len(self._val_sequences),
            self.cluster_spec,
            make_reward(metric),
            config=self.env_config,
        )

        # Telemetry ownership: a TrainConfig that asks for telemetry
        # activates the process-wide registry unless an enclosing run
        # (study, bench session) already owns one — in that case this
        # trainer just records into it.  Activation happens here, before
        # any backend starts, so pool workers inherit the enabled flag.
        tcfg = self.train_config.telemetry
        self._owns_telemetry = False
        self._tel_prev: _telemetry.Telemetry | None = None
        self._sink: TelemetrySink | None = None
        if tcfg is not None and tcfg.enabled:
            if not _telemetry.enabled():
                self._tel_prev = _telemetry.set_active(
                    _telemetry.Telemetry(enabled=True)
                )
                self._owns_telemetry = True
            if tcfg.path:
                self._sink = TelemetrySink(
                    tcfg.path,
                    meta={
                        "command": "train",
                        "trace": trace.name,
                        "metric": metric,
                        "epochs": self.train_config.epochs,
                        "rollout_mode": self.train_config.rollout_mode,
                        "workers": self.train_config.runtime.workers,
                    },
                )

        self.filter: TrajectoryFilter | None = None
        if self.train_config.use_trajectory_filter:
            self.filter = TrajectoryFilter(
                metric=metric, backfill=self.env_config.backfill
            )
            self.filter.fit(
                trace,
                n_samples=self.train_config.filter_probe_samples,
                sequence_length=self.train_config.trajectory_length,
                seed=seed + 3,
                cluster=self.cluster_spec,
            )

    # ------------------------------------------------------------------
    def _sample_sequence(self, filtered: bool) -> tuple[list, int]:
        """A training sequence, honouring the filter in phase 1."""
        rejected = 0
        while True:
            jobs = self.sampler.sample()
            if not filtered or self.filter is None:
                return jobs, rejected
            if self.filter.accepts(jobs, self.cluster_spec):
                return jobs, rejected
            rejected += 1
            if rejected >= self.MAX_FILTER_TRIES:
                # Pathological trace/filter combination: train on the last
                # sample rather than spinning forever.
                return jobs, rejected

    @property
    def vec_env(self) -> ShardedVecSchedGym:
        """The rollout-collection env shards, created on first use.

        Passing the metric *name* keeps the reward picklable, so process
        workers rebuild it locally instead of shipping a closure.
        """
        if self._vec_env is None:
            n_vec = min(
                self.train_config.n_envs, self.train_config.trajectories_per_epoch
            )
            self._vec_env = ShardedVecSchedGym(
                n_vec,
                self.cluster_spec,
                self.metric,
                config=self.env_config,
                runtime=self.train_config.runtime,
            )
        return self._vec_env

    @property
    def actor_runtime(self) -> ActorRuntime:
        """The episode-granular actor pool, created on first async epoch.

        Like :attr:`vec_env`, passing the metric *name* keeps the reward
        picklable; the networks are replicated at install time and
        re-streamed as snapshots after every update.  The lock-step width
        splits across the actors so the pool's total concurrent envs
        matches the locked collector's.
        """
        if self._actor_runtime is None:
            cfg = self.train_config
            n_vec = min(cfg.n_envs, cfg.trajectories_per_epoch)
            width = max(1, -(-n_vec // max(1, cfg.runtime.workers)))
            self._actor_runtime = ActorRuntime(
                self.cluster_spec,
                self.metric,
                config=self.env_config,
                runtime=cfg.runtime,
                n_envs=width,
                seed=cfg.seed,
                act_stream=self._ACT_STREAM,
            )
            self._actor_runtime.install(
                self.policy, self.value, version=self._n_updates
            )
        return self._actor_runtime

    def _traj_rng(self, epoch: int, traj: int) -> np.random.Generator:
        """The action-sampling stream owned by one trajectory."""
        return stream_rng(self.train_config.seed, self._ACT_STREAM, epoch, traj)

    def _rollout(
        self,
        jobs,
        buffer: TrajectoryBuffer,
        rng: np.random.Generator,
        slot: int = 0,
    ) -> float:
        """One trajectory through SchedGym; returns the raw terminal reward.

        Uses the same batched agent entry points as the vectorised
        collector (with batch width 1) and defers value estimation to one
        per-episode forward, so both collection modes are numerically
        interchangeable.
        """
        obs, mask = self.env.reset(jobs)
        while True:
            actions, log_probs = self.agent.act_batch(obs[None], mask[None], [rng])
            buffer.store_batch(obs[None], mask[None], actions, log_probs, slots=[slot])
            result = self.env.step(int(actions[0]))
            if result.done:
                scale = self._reward_scale or 1.0
                buffer.end_slot(
                    slot, result.reward / scale, **self._episode_targets(buffer, slot)
                )
                return result.reward
            obs, mask = result.observation, result.action_mask

    def _episode_targets(self, buffer: TrajectoryBuffer, slot: int) -> dict:
        """Per-episode value estimates and canonical behaviour log-probs.

        Both run on one ``(T, M, F)`` batch of the finished episode, so the
        numbers are identical whether the episode was collected
        sequentially or inside a vectorised wave (BLAS results depend on
        batch shape; per-episode batches make the shape canonical)."""
        ep_obs = buffer.staged_obs(slot)
        ep_masks = buffer.staged_masks(slot)
        ep_actions = buffer.staged_actions(slot)
        return {
            "values": self.agent.value_batch(ep_obs),
            "log_probs": self.agent.episode_log_probs(ep_obs, ep_masks, ep_actions),
        }

    def _collect_vectorized(
        self,
        sequences: list,
        rngs: list[np.random.Generator],
        buffer: TrajectoryBuffer,
    ) -> list[float]:
        """Roll all sequences through the vec env; rewards by trajectory.

        Phase timing (``rollout.policy_forward`` / ``rollout.env_step`` /
        ``rollout.buffer``) is accumulated locally and flushed to the
        registry once per call — the per-step cost when telemetry is off
        is a single boolean test, and when on it is two clock reads per
        phase.  These spans are the single instrumentation source for
        phase fractions; the perf bench reads the same names.
        """
        vec = self.vec_env
        n = min(vec.n_envs, len(sequences))
        obs, masks = vec.reset(sequences[:n])
        vec.queue_sequences(sequences[n:])
        traj_of_env = list(range(n))
        next_traj = n
        rewards: list[float] = [0.0] * len(sequences)
        scale = self._reward_scale or 1.0
        reg = _telemetry.current()
        timed = reg.enabled
        perf = time.perf_counter
        t_policy = t_env = t_buffer = 0.0
        n_waves = 0
        n_env_steps = 0
        while True:
            active_idx = np.flatnonzero(vec.active)
            if not len(active_idx):
                break
            slots = [traj_of_env[i] for i in active_idx]
            a_obs = obs[active_idx]
            a_masks = masks[active_idx]
            if timed:
                t0 = perf()
            actions, log_probs = self.agent.act_batch(
                a_obs, a_masks, [rngs[s] for s in slots]
            )
            if timed:
                t1 = perf()
                t_policy += t1 - t0
            buffer.store_batch(a_obs, a_masks, actions, log_probs, slots=slots)
            full_actions = np.full(vec.n_envs, -1, dtype=np.int64)
            full_actions[active_idx] = actions
            if timed:
                t0 = perf()
                t_buffer += t0 - t1
            result = vec.step(full_actions)
            if timed:
                t1 = perf()
                t_env += t1 - t0
                n_waves += 1
                n_env_steps += len(active_idx)
            for i in active_idx:
                if not result.dones[i]:
                    continue
                slot = traj_of_env[i]
                buffer.end_slot(
                    slot,
                    result.rewards[i] / scale,
                    **self._episode_targets(buffer, slot),
                )
                rewards[slot] = float(result.rewards[i])
                if result.infos[i].get("auto_reset"):
                    traj_of_env[i] = next_traj
                    next_traj += 1
            if timed:
                t_buffer += perf() - t1
            obs, masks = result.observations, result.action_masks
        if timed and n_waves:
            reg.add_span_time("rollout.policy_forward", t_policy, n_waves)
            reg.add_span_time("rollout.env_step", t_env, n_waves)
            reg.add_span_time("rollout.buffer", t_buffer, n_waves)
            reg.counter("rollout.env_steps").add(n_env_steps)
        return rewards

    # -- async (episode-granular) collection ----------------------------
    def _epoch_filtered(self, epoch: int) -> bool:
        """Whether the trajectory filter applies to this epoch (phase 1)."""
        cfg = self.train_config
        phase1_epochs = int(round(cfg.epochs * cfg.filter_phase1_fraction))
        return self.filter is not None and epoch < phase1_epochs

    def _sample_epoch_sequences(self, epoch: int) -> tuple[list, int]:
        """Sample (once) and cache one epoch's training sequences.

        Async prefetch samples future epochs early; caching by epoch keeps
        the sampler's draw order identical to the lock-step path (strictly
        increasing epoch, trajectory order within an epoch) — the
        foundation of the ``locked == async(staleness=0)`` golden tests.
        """
        if epoch not in self._epoch_sequences:
            filtered = self._epoch_filtered(epoch)
            sequences, total_rejected = [], 0
            for _ in range(self.train_config.trajectories_per_epoch):
                jobs, rejected = self._sample_sequence(filtered)
                total_rejected += rejected
                sequences.append(jobs)
            self._epoch_sequences[epoch] = (sequences, total_rejected)
        return self._epoch_sequences[epoch]

    def _submit_epoch(self, epoch: int) -> None:
        """Queue one epoch's episodes on the actors (idempotent)."""
        if epoch in self._submitted_epochs or epoch >= self.train_config.epochs:
            return
        sequences, _ = self._sample_epoch_sequences(epoch)
        self.actor_runtime.submit(epoch, list(enumerate(sequences)))
        self._submitted_epochs.add(epoch)

    def _collect_async(
        self, epoch: int, buffer: TrajectoryBuffer
    ) -> tuple[list[float], int, int, int, int]:
        """Collect one epoch's episodes from the actor pool.

        Submits this epoch plus up to ``staleness`` future epochs (the
        prefetch window that lets actors work ahead of the learner), then
        drains until this epoch is complete — episodes of future epochs
        arriving early are parked for their own collection pass.  Returns
        ``(rewards, n_dropped, n_reweighted, n_kept, n_rejected)``.
        """
        cfg = self.train_config
        self._submit_epoch(epoch)
        for future in range(epoch + 1, min(epoch + 1 + cfg.staleness, cfg.epochs)):
            self._submit_epoch(future)
        sequences, total_rejected = self._epoch_sequences.pop(epoch)

        episodes = self._early_episodes.pop(epoch, [])
        while len(episodes) < len(sequences):
            ep = self.actor_runtime.drain()
            if ep.epoch == epoch:
                episodes.append(ep)
            else:
                self._early_episodes.setdefault(ep.epoch, []).append(ep)
        # Trajectory order: arrival order across workers is scheduling
        # noise; the buffer contents must not depend on it.
        episodes.sort(key=lambda e: e.traj)

        scale = self._reward_scale or 1.0
        rewards: list[float] = []
        n_dropped = n_reweighted = n_kept = 0
        reg = _telemetry.current()
        tel_staleness = (
            reg.histogram("rollout.staleness", bounds=_telemetry.INT_BOUNDS)
            if reg.enabled
            else None
        )
        for ep in episodes:
            rewards.append(ep.reward)
            # Staleness at *consumption* time: updates run since the
            # episode's weights were current (drain() stamps its own view,
            # but early-arriving episodes age while parked).
            staleness = self._n_updates - ep.version
            if tel_staleness is not None:
                tel_staleness.record(staleness)
            if staleness > cfg.staleness:
                if cfg.stale_mode == "drop":
                    n_dropped += 1
                    continue
                n_reweighted += 1
            buffer.store_batch(
                ep.obs, ep.masks, ep.actions, ep.log_probs,
                slots=[ep.traj] * ep.steps,
            )
            buffer.end_slot(
                ep.traj, ep.reward / scale, values=ep.values, log_probs=ep.log_probs
            )
            n_kept += 1
        return rewards, n_dropped, n_reweighted, n_kept, total_rejected

    def run_epoch(self, epoch: int) -> EpochRecord:
        cfg = self.train_config
        filtered = self._epoch_filtered(epoch)
        reg = _telemetry.current()

        start = time.perf_counter()
        buffer = TrajectoryBuffer(
            gamma=self.ppo_config.gamma, lam=self.ppo_config.lam
        )
        with reg.span("epoch.rollout") as sp_rollout:
            if self._reward_scale is None:
                # Calibrate the reward scale with one throwaway rollout so
                # the very first update already sees well-conditioned value
                # targets.
                probe_jobs, _ = self._sample_sequence(filtered)
                probe_rng = stream_rng(cfg.seed, self._PROBE_STREAM, epoch)
                probe_reward = self._rollout(
                    probe_jobs, TrajectoryBuffer(), probe_rng
                )
                self._reward_scale = max(abs(probe_reward), 1e-6)

            n_dropped = n_reweighted = 0
            if cfg.rollout_mode == "async":
                rewards, n_dropped, n_reweighted, n_kept, total_rejected = (
                    self._collect_async(epoch, buffer)
                )
            else:
                sequences, total_rejected = self._sample_epoch_sequences(epoch)
                self._epoch_sequences.pop(epoch)
                rngs = [self._traj_rng(epoch, t) for t in range(len(sequences))]
                if cfg.vectorized:
                    rewards = self._collect_vectorized(sequences, rngs, buffer)
                else:
                    rewards = [
                        self._rollout(jobs, buffer, rngs[t], slot=t)
                        for t, jobs in enumerate(sequences)
                    ]
                n_kept = len(sequences)

        with reg.span("epoch.update") as sp_update:
            if n_kept == 0:
                # Every episode fell past the staleness bound in drop mode;
                # there is nothing to update on.  Record a no-op epoch
                # rather than crash — the weights (and version) stay put.
                stats = UpdateStats(
                    policy_loss=float("nan"), value_loss=float("nan"),
                    kl=float("nan"), entropy=float("nan"),
                    pi_iters_run=0, early_stopped=False,
                )
            else:
                stats = self.agent.update(buffer.get())
        with reg.span("epoch.broadcast") as sp_broadcast:
            if cfg.rollout_mode == "async" and n_kept > 0:
                self._n_updates += 1
                self.actor_runtime.push_weights(
                    self._n_updates, self.agent.export_weights()
                )
        mean_reward = float(np.mean(rewards))
        sign = 1.0 if self._higher_is_better else -1.0
        with reg.span("epoch.validate") as sp_validate:
            val_reward = self._validate()
        phase_times = None
        if reg.enabled:
            phase_times = {
                "rollout": sp_rollout.elapsed,
                "update": sp_update.elapsed,
                "broadcast": sp_broadcast.elapsed,
                "validate": sp_validate.elapsed,
            }
        return EpochRecord(
            epoch=epoch,
            mean_metric=sign * mean_reward,
            mean_reward=mean_reward,
            stats=stats,
            n_rejected=total_rejected,
            wall_time=time.perf_counter() - start,
            filtered_phase=filtered,
            val_reward=val_reward,
            n_stale_dropped=n_dropped,
            n_stale_reweighted=n_reweighted,
            phase_times=phase_times,
        )

    def _validate(self) -> float:
        """Greedy-policy reward over the held-out validation sequences.

        Runs all validation sequences through a small vec env so each
        policy forward serves every sequence at once.
        """
        vec = self._val_env
        obs, masks = vec.reset(
            [[j.copy() for j in jobs] for jobs in self._val_sequences]
        )
        rewards = np.zeros(vec.n_envs)
        while True:
            active_idx = np.flatnonzero(vec.active)
            if not len(active_idx):
                break
            actions = self.agent.act_greedy_batch(obs[active_idx], masks[active_idx])
            full_actions = np.full(vec.n_envs, -1, dtype=np.int64)
            full_actions[active_idx] = actions
            result = vec.step(full_actions)
            rewards[result.dones] = result.rewards[result.dones]
            obs, masks = result.observations, result.action_masks
        return float(np.mean(rewards))

    def close(self) -> None:
        """Release rollout, actor and gradient workers (no-op if never
        spawned).

        Chained ``finally`` blocks: a teardown failure in one subsystem
        must not leak the others' worker processes — this is what lets the
        CLI paths guarantee no orphaned children on any exit path.
        """
        try:
            if self._vec_env is not None:
                self._vec_env.close()
                self._vec_env = None
        finally:
            try:
                if self._actor_runtime is not None:
                    self._actor_runtime.close()
                    self._actor_runtime = None
            finally:
                try:
                    self.agent.close()
                finally:
                    if self._sink is not None:
                        self._sink.close()
                        self._sink = None
                    if self._owns_telemetry:
                        _telemetry.set_active(self._tel_prev)
                        self._owns_telemetry = False

    def __enter__(self) -> "Trainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def train(self, progress: bool = False) -> TrainingResult:
        result = TrainingResult(
            trace_name=self.trace.name,
            metric=self.metric,
            policy_preset=self.policy_preset,
            policy=self.policy,
            value=self.value,
            n_procs=self.cluster_spec.n_procs,
            env_config=self.env_config,
        )
        best_reward = -np.inf
        for epoch in range(self.train_config.epochs):
            record = self.run_epoch(epoch)
            result.curve.append(record)
            if record.val_reward > best_reward:
                best_reward = record.val_reward
                result.best_policy_state = self.policy.state_dict()
                result.best_epoch = epoch
            if progress:
                print(
                    f"epoch {epoch:3d}  metric={record.mean_metric:10.2f}  "
                    f"kl={record.stats.kl:.4f}  "
                    f"pi_iters={record.stats.pi_iters_run}  "
                    f"{record.wall_time:5.1f}s"
                    + ("  [filtered]" if record.filtered_phase else "")
                )
            if record.phase_times is not None:
                pt = record.phase_times
                logger.info(
                    "epoch %3d  rollout %.2fs  update %.2fs  broadcast %.2fs  "
                    "validate %.2fs  kl %.4f",
                    epoch, pt["rollout"], pt["update"], pt["broadcast"],
                    pt["validate"], record.stats.kl,
                )
            if self._sink is not None:
                self._sink.write_event(
                    "epoch",
                    epoch=epoch,
                    mean_metric=record.mean_metric,
                    mean_reward=record.mean_reward,
                    val_reward=record.val_reward,
                    kl=record.stats.kl,
                    wall_time=record.wall_time,
                    phases=record.phase_times,
                )
        tcfg = self.train_config.telemetry
        if tcfg is not None and tcfg.enabled:
            snap = _telemetry.current().snapshot()
            if self._sink is not None:
                self._sink.write_snapshot(snap)
            if tcfg.summary and not snap.empty:
                logger.info(render_summary(snap))
        return result


def train(
    trace: SWFTrace,
    metric: str = "bsld",
    policy_preset: str = "kernel",
    **kwargs,
) -> TrainingResult:
    """One-call training entry point (see :class:`Trainer` for knobs)."""
    with Trainer(trace, metric=metric, policy_preset=policy_preset, **kwargs) as t:
        return t.train()
