"""Trajectory filtering (paper §IV-C, Fig. 7).

High-variance traces (PIK-IPLEX) mix "easy sequences" — any policy scores
well, so nothing is learned — with rare catastrophic "hard sequences" that
wreck whatever the agent has learned.  The paper's remedy:

1. schedule many randomly sampled sequences with a *known heuristic* (SJF)
   and collect the metric distribution;
2. keep only sequences whose SJF metric falls in
   ``R = (median, 2 × mean)`` — dropping the easy half (below the median)
   and the extreme tail (above twice the mean, small in a skewed
   distribution) — for the first training phase;
3. train a second phase on everything once the policy has converged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.schedulers.heuristics import SJF
from repro.sim.cluster import ClusterSpec
from repro.sim.metrics import metric_by_name
from repro.sim.simulator import run_scheduler
from repro.workloads.job import Job
from repro.workloads.sampler import SequenceSampler
from repro.workloads.swf import SWFTrace

__all__ = ["FilterRange", "TrajectoryFilter", "probe_distribution"]


@dataclass(frozen=True)
class FilterRange:
    """The accepted metric interval ``(low, high]`` with its provenance."""

    low: float      # median of the probe distribution
    high: float     # 2 * mean of the probe distribution
    median: float
    mean: float
    skewness: float

    def accepts(self, value: float) -> bool:
        return self.low < value <= self.high


def probe_distribution(
    trace: SWFTrace,
    metric: str = "bsld",
    n_samples: int = 200,
    sequence_length: int = 256,
    seed: int = 0,
    backfill: bool = False,
    cluster: "ClusterSpec | int | None" = None,
) -> np.ndarray:
    """SJF-scheduled metric values over random sequence windows (Fig. 7).

    ``cluster`` lets scenario training probe on the scenario's (possibly
    memory-constrained) cluster; the default is the trace's own size.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    fn, _ = metric_by_name(metric)
    cluster = ClusterSpec.coerce(
        trace.max_procs if cluster is None else cluster
    )
    sampler = SequenceSampler(trace, sequence_length, seed=seed)
    sjf = SJF()
    values = np.empty(n_samples)
    for i in range(n_samples):
        completed = run_scheduler(
            sampler.sample(), cluster, sjf, backfill=backfill
        )
        values[i] = fn(completed, cluster.n_procs)
    return values


class TrajectoryFilter:
    """Accept/reject training sequences by their SJF-probe metric."""

    def __init__(self, metric: str = "bsld", backfill: bool = False):
        self.metric = metric
        self.backfill = backfill
        self._fn, _ = metric_by_name(metric)
        self.range: FilterRange | None = None

    def fit(
        self,
        trace: SWFTrace,
        n_samples: int = 200,
        sequence_length: int = 256,
        seed: int = 0,
        cluster: "ClusterSpec | int | None" = None,
    ) -> FilterRange:
        """Build the Fig. 7 distribution and derive ``R = (median, 2·mean)``."""
        values = probe_distribution(
            trace,
            metric=self.metric,
            n_samples=n_samples,
            sequence_length=sequence_length,
            seed=seed,
            backfill=self.backfill,
            cluster=cluster,
        )
        mean = float(values.mean())
        median = float(np.median(values))
        std = float(values.std())
        skew = float(((values - mean) ** 3).mean() / std**3) if std > 0 else 0.0
        self.range = FilterRange(
            low=median, high=2.0 * mean, median=median, mean=mean, skewness=skew
        )
        return self.range

    def sequence_value(
        self, jobs: Sequence[Job], n_procs: "int | ClusterSpec"
    ) -> float:
        """The SJF metric of one candidate sequence (the filter criterion)."""
        cluster = ClusterSpec.coerce(n_procs)
        completed = run_scheduler(jobs, cluster, SJF(), backfill=self.backfill)
        return self._fn(completed, cluster.n_procs)

    def accepts(self, jobs: Sequence[Job], n_procs: "int | ClusterSpec") -> bool:
        if self.range is None:
            raise RuntimeError("call fit() before filtering")
        return self.range.accepts(self.sequence_value(jobs, n_procs))
