"""Trajectory storage with GAE-λ advantage estimation.

PPO consumes fixed arrays of (observation, mask, action, log-prob, return,
advantage).  Episodes here are whole job sequences whose reward arrives
only at the terminal step (paper §IV-A), so with γ=1 the return-to-go of
every step equals the terminal reward; GAE still shapes per-step
advantages through the value-network baseline ("we can use (r - expr) to
train the policy").

Two ingestion paths share the same finalisation code:

* the legacy scalar path — :meth:`TrajectoryBuffer.store` once per step,
  then :meth:`TrajectoryBuffer.end_episode`;
* the batched path used by the vectorised rollout engine —
  :meth:`TrajectoryBuffer.store_batch` appends one step for each of K
  concurrently-running episodes ("slots"), and
  :meth:`TrajectoryBuffer.end_slot` closes a single slot when its episode
  terminates.  Value estimates may be deferred to ``end_slot`` so the
  value network runs once per episode on a ``(T, M, F)`` batch instead of
  T batch-size-1 calls.

Episodes are ordered deterministically in the PPO batch: slot-closed
episodes sort by their slot id, scalar-path episodes by completion order.
The vectorised trainer uses the trajectory index as the slot id, so its
``get()`` arrays are identical to a sequential rollout's even when
episodes finish out of order (e.g. ragged lengths under backfilling).
Do not mix the scalar and slot paths in one buffer — their ordering keys
are independent.

The discounted recurrences are evaluated by :func:`discount_cumsum` — a
linear-filter formulation that matches the reversed Python loop
bit-for-bit while running in C.
"""

from __future__ import annotations

import numpy as np

try:  # scipy is optional; the pure-Python fallback is exact but slower
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - scipy is present in CI
    _lfilter = None

__all__ = ["TrajectoryBuffer", "discount_cumsum"]


def discount_cumsum(x: np.ndarray, discount: float) -> np.ndarray:
    """Reverse discounted cumulative sum: ``y[t] = x[t] + discount·y[t+1]``.

    The SpinningUp formulation via a single-pole IIR filter.  ``lfilter``
    evaluates exactly ``y[n] = x[n] + discount·y[n-1]`` in C, the same
    multiply-then-add per element as the naive reversed loop, so results
    are bit-identical to it.
    """
    x = np.asarray(x, dtype=np.float64)
    if _lfilter is not None:
        return _lfilter([1.0], [1.0, -discount], x[::-1])[::-1]
    out = np.empty_like(x)
    acc = 0.0
    for t in range(len(x) - 1, -1, -1):
        acc = x[t] + discount * acc
        out[t] = acc
    return out


class _Stage:
    """Per-step storage for one open (unfinalised) episode."""

    __slots__ = ("obs", "masks", "actions", "log_probs", "values", "rewards")

    def __init__(self) -> None:
        self.obs: list[np.ndarray] = []
        self.masks: list[np.ndarray] = []
        self.actions: list[int] = []
        self.log_probs: list[float] = []
        self.values: list[float | None] = []
        self.rewards: list[float] = []

    def append(self, obs, mask, action, log_prob, value, reward) -> None:
        self.obs.append(np.asarray(obs, dtype=np.float32))
        self.masks.append(np.asarray(mask, dtype=bool))
        self.actions.append(int(action))
        self.log_probs.append(float(log_prob))
        self.values.append(None if value is None else float(value))
        self.rewards.append(float(reward))

    def __len__(self) -> int:
        return len(self.actions)


class TrajectoryBuffer:
    """Append-only store for one epoch of interactions.

    Scalar usage::

        buf.store(obs, mask, action, log_prob, value)   # per step
        buf.end_episode(terminal_reward)                 # per sequence
        data = buf.get()                                 # once per epoch

    Batched usage (one call per lock-step of N environments)::

        buf.store_batch(obs_batch, mask_batch, actions, log_probs,
                        slots=traj_ids)
        ...
        buf.end_slot(traj_id, terminal_reward, values=values_for_episode)
    """

    def __init__(self, gamma: float = 1.0, lam: float = 0.97):
        if not (0.0 <= gamma <= 1.0 and 0.0 <= lam <= 1.0):
            raise ValueError("gamma and lam must be in [0, 1]")
        self.gamma = gamma
        self.lam = lam
        self._reset_storage()

    def _reset_storage(self) -> None:
        self._open = _Stage()                  # legacy single-episode stage
        self._slots: dict[int, _Stage] = {}    # batched per-slot stages
        self._order: list[int] = []            # sort key per finalised episode
        self._next_order = 0                   # key counter for the scalar path
        self._obs: list[np.ndarray] = []       # finalised episodes, stacked
        self._masks: list[np.ndarray] = []
        self._actions: list[np.ndarray] = []
        self._log_probs: list[np.ndarray] = []
        self._advantages: list[np.ndarray] = []
        self._returns: list[np.ndarray] = []
        self._episode_rewards: list[float] = []

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def store(
        self,
        obs: np.ndarray,
        mask: np.ndarray,
        action: int,
        log_prob: float,
        value: float,
        reward: float = 0.0,
    ) -> None:
        self._open.append(obs, mask, action, log_prob, value, reward)

    def end_episode(self, terminal_reward: float = 0.0) -> None:
        """Close the current episode, folding the terminal reward into the
        last stored step and computing its advantages/returns."""
        stage, self._open = self._open, _Stage()
        self._finalize(stage, terminal_reward, values=None, order=self._next_order)
        self._next_order += 1

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def store_batch(
        self,
        obs: np.ndarray,
        masks: np.ndarray,
        actions: np.ndarray,
        log_probs: np.ndarray,
        values: np.ndarray | None = None,
        rewards: np.ndarray | None = None,
        slots: "list[int] | np.ndarray | None" = None,
    ) -> None:
        """Append one step for each of K concurrent episodes.

        ``obs`` is ``(K, M, F)``, ``masks`` ``(K, M)``; the remaining
        arrays are length K.  ``slots[k]`` names the episode row ``k``
        belongs to (default ``k``).  ``values`` may be omitted entirely
        and supplied once per episode to :meth:`end_slot` instead — the
        deferred-value path that lets the value network run batched.
        """
        k = len(actions)
        if slots is None:
            slots = range(k)
        for j, slot in enumerate(slots):
            stage = self._slots.get(slot)
            if stage is None:
                stage = self._slots[slot] = _Stage()
            stage.append(
                obs[j],
                masks[j],
                actions[j],
                log_probs[j],
                None if values is None else values[j],
                0.0 if rewards is None else rewards[j],
            )

    def staged_obs(self, slot: int) -> np.ndarray:
        """Observations of an open slot as one ``(T, M, F)`` array."""
        stage = self._slots[slot]
        return np.stack(stage.obs)

    def staged_masks(self, slot: int) -> np.ndarray:
        """Action masks of an open slot as one ``(T, M)`` array."""
        stage = self._slots[slot]
        return np.stack(stage.masks)

    def staged_actions(self, slot: int) -> np.ndarray:
        """Actions of an open slot as one ``(T,)`` array."""
        stage = self._slots[slot]
        return np.array(stage.actions, dtype=np.int64)

    def end_slot(
        self,
        slot: int,
        terminal_reward: float = 0.0,
        values: np.ndarray | None = None,
        log_probs: np.ndarray | None = None,
    ) -> None:
        """Close one batched episode.

        ``values`` supplies deferred value estimates (length T) if they
        were not stored per step; ``log_probs`` likewise replaces the
        per-step log-probs with canonical per-episode ones (see
        :meth:`PPOAgent.episode_log_probs`)."""
        try:
            stage = self._slots.pop(slot)
        except KeyError:
            raise RuntimeError(f"slot {slot!r} has no stored steps") from None
        if log_probs is not None:
            if len(log_probs) != len(stage):
                raise ValueError(
                    f"expected {len(stage)} log-probs, got {len(log_probs)}"
                )
            stage.log_probs = [float(lp) for lp in log_probs]
        self._finalize(stage, terminal_reward, values=values, order=int(slot))

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def _finalize(
        self,
        stage: _Stage,
        terminal_reward: float,
        values: np.ndarray | None,
        order: int,
    ) -> None:
        if not len(stage):
            raise RuntimeError("end_episode() with no stored steps")
        if values is None:
            if any(v is None for v in stage.values):
                raise RuntimeError(
                    "episode has deferred value estimates; pass values= when "
                    "ending it"
                )
            values = np.array(stage.values, dtype=np.float64)
        else:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != (len(stage),):
                raise ValueError(
                    f"expected {len(stage)} value estimates, got {values.shape}"
                )

        rewards = np.array(stage.rewards, dtype=np.float64)
        rewards[-1] += float(terminal_reward)
        next_values = np.append(values[1:], 0.0)  # terminal value is 0

        deltas = rewards + self.gamma * next_values - values
        adv = discount_cumsum(deltas, self.gamma * self.lam)
        rets = discount_cumsum(rewards, self.gamma)

        self._order.append(order)
        self._obs.append(np.stack(stage.obs))
        self._masks.append(np.stack(stage.masks))
        self._actions.append(np.array(stage.actions, dtype=np.int64))
        self._log_probs.append(np.array(stage.log_probs, dtype=np.float64))
        self._advantages.append(adv)
        self._returns.append(rets)
        self._episode_rewards.append(float(rewards.sum()))

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        finalized = sum(len(a) for a in self._actions)
        staged = len(self._open) + sum(len(s) for s in self._slots.values())
        return finalized + staged

    @property
    def n_episodes(self) -> int:
        return len(self._episode_rewards)

    @property
    def episode_rewards(self) -> list[float]:
        return list(self._episode_rewards)

    def get(self, normalize_advantages: bool = True) -> dict[str, np.ndarray]:
        """All completed-episode data, advantage-normalised for PPO."""
        if len(self._open) or self._slots:
            raise RuntimeError("an episode is still open; call end_episode()")
        if not self._advantages:
            raise RuntimeError("buffer is empty")
        rank = sorted(range(len(self._order)), key=self._order.__getitem__)
        adv = np.concatenate([self._advantages[i] for i in rank])
        if normalize_advantages:
            adv = (adv - adv.mean()) / (adv.std() + 1e-8)
        return {
            "obs": np.concatenate([self._obs[i] for i in rank]),
            "masks": np.concatenate([self._masks[i] for i in rank]),
            "actions": np.concatenate([self._actions[i] for i in rank]),
            "log_probs": np.concatenate([self._log_probs[i] for i in rank]),
            "advantages": adv,
            "returns": np.concatenate([self._returns[i] for i in rank]),
        }

    def clear(self) -> None:
        """Explicitly drop all stored steps and episodes (gamma/lam kept)."""
        self._reset_storage()
