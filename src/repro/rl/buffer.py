"""Trajectory storage with GAE-λ advantage estimation.

PPO consumes fixed arrays of (observation, mask, action, log-prob, return,
advantage).  Episodes here are whole job sequences whose reward arrives
only at the terminal step (paper §IV-A), so with γ=1 the return-to-go of
every step equals the terminal reward; GAE still shapes per-step
advantages through the value-network baseline ("we can use (r - expr) to
train the policy").
"""

from __future__ import annotations

import numpy as np

__all__ = ["TrajectoryBuffer"]


class TrajectoryBuffer:
    """Append-only store for one epoch of interactions.

    Usage::

        buf.store(obs, mask, action, log_prob, value)   # per step
        buf.end_episode(terminal_reward)                 # per sequence
        data = buf.get()                                 # once per epoch
    """

    def __init__(self, gamma: float = 1.0, lam: float = 0.97):
        if not (0.0 <= gamma <= 1.0 and 0.0 <= lam <= 1.0):
            raise ValueError("gamma and lam must be in [0, 1]")
        self.gamma = gamma
        self.lam = lam
        self._obs: list[np.ndarray] = []
        self._masks: list[np.ndarray] = []
        self._actions: list[int] = []
        self._log_probs: list[float] = []
        self._values: list[float] = []
        self._rewards: list[float] = []
        self._episode_start = 0
        self._advantages: list[np.ndarray] = []
        self._returns: list[np.ndarray] = []
        self._episode_rewards: list[float] = []

    # ------------------------------------------------------------------
    def store(
        self,
        obs: np.ndarray,
        mask: np.ndarray,
        action: int,
        log_prob: float,
        value: float,
        reward: float = 0.0,
    ) -> None:
        self._obs.append(np.asarray(obs, dtype=np.float32))
        self._masks.append(np.asarray(mask, dtype=bool))
        self._actions.append(int(action))
        self._log_probs.append(float(log_prob))
        self._values.append(float(value))
        self._rewards.append(float(reward))

    def end_episode(self, terminal_reward: float = 0.0) -> None:
        """Close the current episode, folding the terminal reward into the
        last stored step and computing its advantages/returns."""
        start, end = self._episode_start, len(self._rewards)
        if end == start:
            raise RuntimeError("end_episode() with no stored steps")
        self._rewards[end - 1] += float(terminal_reward)

        rewards = np.array(self._rewards[start:end])
        values = np.array(self._values[start:end])
        next_values = np.append(values[1:], 0.0)  # terminal value is 0

        deltas = rewards + self.gamma * next_values - values
        adv = np.empty_like(deltas)
        acc = 0.0
        for t in range(len(deltas) - 1, -1, -1):
            acc = deltas[t] + self.gamma * self.lam * acc
            adv[t] = acc

        rets = np.empty_like(rewards)
        acc = 0.0
        for t in range(len(rewards) - 1, -1, -1):
            acc = rewards[t] + self.gamma * acc
            rets[t] = acc

        self._advantages.append(adv)
        self._returns.append(rets)
        self._episode_rewards.append(float(rewards.sum()))
        self._episode_start = end

    # ------------------------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self._actions)

    @property
    def n_episodes(self) -> int:
        return len(self._episode_rewards)

    @property
    def episode_rewards(self) -> list[float]:
        return list(self._episode_rewards)

    def get(self, normalize_advantages: bool = True) -> dict[str, np.ndarray]:
        """All completed-episode data, advantage-normalised for PPO."""
        if self._episode_start != len(self._rewards):
            raise RuntimeError("an episode is still open; call end_episode()")
        if not self._advantages:
            raise RuntimeError("buffer is empty")
        adv = np.concatenate(self._advantages)
        if normalize_advantages:
            adv = (adv - adv.mean()) / (adv.std() + 1e-8)
        return {
            "obs": np.stack(self._obs),
            "masks": np.stack(self._masks),
            "actions": np.array(self._actions, dtype=np.int64),
            "log_probs": np.array(self._log_probs),
            "advantages": adv,
            "returns": np.concatenate(self._returns),
        }

    def clear(self) -> None:
        self.__init__(gamma=self.gamma, lam=self.lam)
