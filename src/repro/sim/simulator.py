"""Discrete-event scheduling engine — the heart of SchedGym (paper §IV-D).

The engine replays a job sequence against a homogeneous cluster, asking a
decision source (heuristic scheduler or RL agent) to pick one waiting job
at each scheduling point.  Semantics follow the paper's SchedGym:

* the cluster starts idle; jobs arrive per their submit times;
* once a job is *selected* the engine commits to it: if it cannot start
  immediately, the engine advances time (completing running jobs, admitting
  arrivals) until it fits — optionally EASY-backfilling other waiting jobs
  that cannot delay it;
* actual runtimes come from the trace and are hidden from deciders; only
  requested runtimes are visible (used for backfill planning);
* the episode ends when every job in the sequence has completed.

:class:`SchedulingEngine` is the low-level stepper shared by
:func:`run_scheduler` (heuristics / trained policies, used by all the table
benches) and :class:`repro.sim.env.SchedGym` (the RL training env).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.telemetry import core as _telemetry
from repro.workloads.job import Job

from .backfill import backfill_candidates, conservative_backfill_candidates
from .cluster import Cluster, ClusterSpec, mem_demand
from .events import EventKind, EventQueue

__all__ = ["SchedulingEngine", "run_scheduler"]


class SchedulingEngine:
    """Event-driven stepper over one job sequence.

    The driver loop is::

        engine = SchedulingEngine(jobs, n_procs, backfill=True)
        engine.advance_until_decision()
        while not engine.done:
            job = <pick one of engine.pending>
            engine.commit(job)
            engine.advance_until_decision()
        completed = engine.completed

    Hot-path invariants (relied on by the vectorised rollout path):

    * ``pending`` is kept sorted by ``(submit_time, job_id)`` — FCFS order —
      at all times, so observation building never re-sorts it.  Arrivals
      pop off the event heap in exactly that order, so maintaining the
      invariant is an O(1) append; removals locate the job by bisection.
    * running jobs are tracked in an insertion-ordered id map, making the
      per-finish-event removal O(1) instead of an O(n) list scan with the
      full dataclass ``__eq__``.
    """

    #: accepted backfilling modes (True is an alias for "easy")
    BACKFILL_MODES = (False, True, "easy", "conservative")

    def __init__(
        self,
        jobs: Sequence[Job],
        n_procs: int | ClusterSpec,
        backfill: bool | str = False,
    ):
        if not jobs:
            raise ValueError("cannot simulate an empty job sequence")
        if backfill not in self.BACKFILL_MODES:
            raise ValueError(
                f"backfill must be one of {self.BACKFILL_MODES}, got {backfill!r}"
            )
        spec = ClusterSpec.coerce(n_procs)
        self.jobs = [j.copy() for j in sorted(jobs, key=lambda x: (x.submit_time, x.job_id))]
        for j in self.jobs:
            if j.requested_procs > spec.n_procs:
                raise ValueError(
                    f"job {j.job_id} requests {j.requested_procs} procs but the "
                    f"cluster has {spec.n_procs}"
                )
            if mem_demand(j) > spec.total_mem:
                raise ValueError(
                    f"job {j.job_id} needs {mem_demand(j):g} memory units but "
                    f"the cluster has {spec.total_mem:g}"
                )
        self.cluster = spec.build()
        self.backfill = backfill
        self.now = 0.0
        #: waiting jobs, always sorted by (submit_time, job_id) — FCFS order
        self.pending: list[Job] = []
        self._pending_keys: list[tuple[float, int]] = []  # parallel to pending
        #: row index of each pending job within ``self.jobs`` (parallel to
        #: ``pending``); observation builders gather precomputed per-job
        #: feature columns by these rows without any per-step lookups
        self.pending_rows: list[int] = []
        self._row_of = {j.job_id: i for i, j in enumerate(self.jobs)}
        self._running: dict[int, Job] = {}  # job_id -> Job, insertion-ordered
        self.completed: list[Job] = []
        self._events = EventQueue()
        #: events processed so far (arrivals + finishes); drives the
        #: telemetry events/s rate without touching the per-event path
        self.n_events = 0
        # The pending-depth instrument is resolved once per episode: the
        # decision loop pays a single None check when telemetry is off.
        _reg = _telemetry.current()
        self._tel_depth = (
            _reg.histogram("engine.pending_depth", bounds=_telemetry.INT_BOUNDS)
            if _reg.enabled
            else None
        )
        for j in self.jobs:
            self._events.push(j.submit_time, EventKind.ARRIVAL, j)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.jobs)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def running(self) -> list[Job]:
        """Currently executing jobs, in start order."""
        return list(self._running.values())

    # ------------------------------------------------------------------
    def _pending_index(self, job: Job) -> int:
        """Index of ``job`` in the sorted pending list, or -1."""
        key = (job.submit_time, job.job_id)
        i = bisect_left(self._pending_keys, key)
        if i < len(self.pending):
            found = self.pending[i]
            # identity first: committed jobs are the engine's own objects,
            # and the dataclass __eq__ compares all 19 fields
            if found is job or found == job:
                return i
        return -1

    def _start(self, job: Job) -> None:
        """Allocate and launch ``job`` at the current time."""
        self.cluster.allocate(job)
        job.start_time = self.now
        i = self._pending_index(job)
        if i < 0:  # mirrors the old list.remove(job) contract
            raise ValueError(f"job {job.job_id} is not pending")
        del self.pending[i]
        del self._pending_keys[i]
        del self.pending_rows[i]
        self._running[job.job_id] = job
        self._events.push(job.end_time, EventKind.FINISH, job)

    def _process_next_event(self) -> None:
        """Advance the clock to the next event and apply it."""
        time, kind, job_id, job = self._events.pop_raw()
        assert time >= self.now, "event queue went backwards in time"
        self.now = time
        self.n_events += 1
        if kind == EventKind.FINISH:
            self.cluster.release(job)
            del self._running[job_id]
            self.completed.append(job)
        else:
            # Arrivals pop in (time, job_id) order, so appending preserves
            # the FCFS sort; the bisect branch is a safety net for exotic
            # callers that push out-of-order arrivals.
            key = (time, job_id)
            if not self._pending_keys or key >= self._pending_keys[-1]:
                self.pending.append(job)
                self._pending_keys.append(key)
                self.pending_rows.append(self._row_of[job_id])
            else:
                i = bisect_left(self._pending_keys, key)
                self.pending.insert(i, job)
                self._pending_keys.insert(i, key)
                self.pending_rows.insert(i, self._row_of[job_id])

    def advance_until_decision(self) -> bool:
        """Run events until a scheduling decision is needed.

        Returns True if there is a decision to make (pending non-empty),
        False if the episode is over.
        """
        while not self.pending:
            if not self._events:
                return False  # nothing pending, nothing queued: done
            self._process_next_event()
        if self._tel_depth is not None:
            self._tel_depth.record(len(self.pending))
        return True

    def commit(self, job: Job) -> None:
        """Commit to starting ``job``: wait (and backfill) until it fits."""
        if self._pending_index(job) < 0:
            raise ValueError(f"job {job.job_id} is not pending")
        while not self.cluster.can_allocate(job):
            if self.backfill:
                for candidate in self._backfill_pass(job):
                    self._start(candidate)
                if self.cluster.can_allocate(job):
                    break
            if not self._events:
                raise RuntimeError(
                    f"deadlock: job {job.job_id} cannot fit and no events remain"
                )
            self._process_next_event()
        self._start(job)

    def _backfill_pass(self, head: Job) -> list[Job]:
        running = list(self._running.values())
        if self.backfill == "conservative":
            return conservative_backfill_candidates(
                head, self.pending, running, self.cluster, self.now
            )
        return backfill_candidates(
            head, self.pending, running, self.cluster, self.now
        )


def run_scheduler(
    jobs: Sequence[Job],
    n_procs: int | ClusterSpec,
    scheduler,
    backfill: bool | str = False,
) -> list[Job]:
    """Schedule a whole sequence with a policy; return the completed jobs.

    ``scheduler`` is either an object with ``select(pending, now, cluster)``
    (any :class:`repro.schedulers.base.Scheduler`, including RL policies) or
    a bare priority function ``score(job, now, cluster)`` where the *lowest*
    score is selected first, matching Table III's convention.  Ties break by
    job id for determinism.
    """
    engine = SchedulingEngine(jobs, n_procs, backfill=backfill)
    select = getattr(scheduler, "select", None)
    reg = _telemetry.current()
    with reg.span("engine.episode"):
        while engine.advance_until_decision():
            if select is not None:
                best = select(engine.pending, engine.now, engine.cluster)
            else:
                best = min(
                    engine.pending,
                    key=lambda j: (scheduler(j, engine.now, engine.cluster), j.job_id),
                )
            engine.commit(best)
    assert engine.done, "engine stopped before completing all jobs"
    if reg.enabled:
        # events/s = engine.events / span total of engine.episode
        reg.counter("engine.events").add(engine.n_events)
        reg.counter("engine.decisions").add(len(engine.completed))
    return engine.completed
