"""Discrete-event scheduling engine — the heart of SchedGym (paper §IV-D).

The engine replays a job sequence against a homogeneous cluster, asking a
decision source (heuristic scheduler or RL agent) to pick one waiting job
at each scheduling point.  Semantics follow the paper's SchedGym:

* the cluster starts idle; jobs arrive per their submit times;
* once a job is *selected* the engine commits to it: if it cannot start
  immediately, the engine advances time (completing running jobs, admitting
  arrivals) until it fits — optionally EASY-backfilling other waiting jobs
  that cannot delay it;
* actual runtimes come from the trace and are hidden from deciders; only
  requested runtimes are visible (used for backfill planning);
* the episode ends when every job in the sequence has completed.

:class:`SchedulingEngine` is the low-level stepper shared by
:func:`run_scheduler` (heuristics / trained policies, used by all the table
benches) and :class:`repro.sim.env.SchedGym` (the RL training env).  The
event mechanics live in :class:`repro.sim.core.EngineCore`; this driver
adds only what the batch setting knows up front — the full job list — and
is bit-identical to the pre-split engine (golden-pinned).  The open-ended
variant that accepts streaming submissions is
:class:`repro.sim.core.OnlineSchedulingEngine`.
"""

from __future__ import annotations

from typing import Sequence

from repro.telemetry import core as _telemetry
from repro.workloads.job import Job

from .cluster import ClusterSpec
from .core import EngineCore
from .events import EventKind

__all__ = ["SchedulingEngine", "run_scheduler"]


class SchedulingEngine(EngineCore):
    """Event-driven stepper over one pre-sampled job sequence.

    The driver loop is::

        engine = SchedulingEngine(jobs, n_procs, backfill=True)
        engine.advance_until_decision()
        while not engine.done:
            job = <pick one of engine.pending>
            engine.commit(job)
            engine.advance_until_decision()
        completed = engine.completed

    All arrivals are pushed at construction; ``commit`` never pauses (the
    default infinite horizon applies), so it behaves exactly as before the
    core split.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        n_procs: int | ClusterSpec,
        backfill: bool | str = False,
    ):
        if not jobs:
            raise ValueError("cannot simulate an empty job sequence")
        super().__init__(n_procs, backfill=backfill)
        self.jobs = [
            j.copy() for j in sorted(jobs, key=lambda x: (x.submit_time, x.job_id))
        ]
        for j in self.jobs:
            self._validate_fits_cluster(j)
        #: row index of each job within ``self.jobs``; observation builders
        #: gather precomputed per-job feature columns by these rows
        self._row_of = {j.job_id: i for i, j in enumerate(self.jobs)}
        self._next_row = len(self.jobs)
        for j in self.jobs:
            self._events.push(j.submit_time, EventKind.ARRIVAL, j)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.jobs)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)


def run_scheduler(
    jobs: Sequence[Job],
    n_procs: int | ClusterSpec,
    scheduler,
    backfill: bool | str = False,
) -> list[Job]:
    """Schedule a whole sequence with a policy; return the completed jobs.

    ``scheduler`` is either an object with ``select(pending, now, cluster)``
    (any :class:`repro.schedulers.base.Scheduler`, including RL policies) or
    a bare priority function ``score(job, now, cluster)`` where the *lowest*
    score is selected first, matching Table III's convention.  Ties break by
    job id for determinism.
    """
    engine = SchedulingEngine(jobs, n_procs, backfill=backfill)
    select = getattr(scheduler, "select", None)
    reg = _telemetry.current()
    with reg.span("engine.episode"):
        while engine.advance_until_decision():
            if select is not None:
                best = select(engine.pending, engine.now, engine.cluster)
            else:
                best = min(
                    engine.pending,
                    key=lambda j: (scheduler(j, engine.now, engine.cluster), j.job_id),
                )
            engine.commit(best)
    assert engine.done, "engine stopped before completing all jobs"
    if reg.enabled:
        # events/s = engine.events / span total of engine.episode
        reg.counter("engine.events").add(engine.n_events)
        reg.counter("engine.decisions").add(len(engine.completed))
    return engine.completed
