"""Multi-resource cluster model (processors + memory as a resource vector).

The paper targets homogeneous HPC platforms, so the original resource
state reduced to a count of free processors.  The scenario subsystem
(:mod:`repro.scenarios`) additionally expresses *memory-constrained*
clusters, so the model now tracks a two-component resource vector:

* **processors** — always finite, the paper's only resource;
* **memory** — abstract capacity units, ``None`` meaning *unconstrained*
  (internally ``inf``), which makes every memory check vacuously true and
  keeps the homogeneous case bit-identical to the processor-only model.

A job's memory demand follows the SWF convention: ``requested_mem`` is a
per-processor figure, so the demand is ``requested_mem * requested_procs``
(zero when the trace carries no request — the SWF ``-1`` sentinel).

The class still tracks per-job allocations so that invariants (no
double-release, conservation of both resources) are checked at every
transition — errors in resource accounting would silently corrupt every
scheduling metric downstream.  :meth:`Cluster._check` is the single home
of those invariants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.job import Job

__all__ = ["Cluster", "ClusterSpec", "mem_demand"]


def mem_demand(job: Job) -> float:
    """Total memory units ``job`` occupies while running.

    SWF's ``requested_mem`` is per processor; traces without memory
    requests carry the ``-1`` sentinel, which maps to zero demand so
    processor-only workloads are unaffected by memory accounting.
    """
    if job.requested_mem <= 0:
        return 0.0
    return job.requested_mem * job.requested_procs


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative, serializable description of a cluster.

    ``memory=None`` means unconstrained (the paper's processor-only
    machine); a float is the total memory capacity in abstract units.
    The spec is what scenario definitions, config objects and runtime
    workers ship around; :meth:`build` turns it into live state.
    """

    n_procs: int
    memory: float | None = None

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError(
                f"cluster needs a positive processor count, got {self.n_procs}"
            )
        if self.memory is not None and not self.memory > 0:
            raise ValueError(
                f"cluster memory must be positive (or None), got {self.memory}"
            )

    @property
    def total_mem(self) -> float:
        """Memory capacity with ``None`` normalised to ``inf``."""
        return math.inf if self.memory is None else float(self.memory)

    def build(self) -> "Cluster":
        return Cluster(self.n_procs, memory=self.memory)

    def to_dict(self) -> dict:
        return {"n_procs": self.n_procs, "memory": self.memory}

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        return cls(n_procs=data["n_procs"], memory=data.get("memory"))

    @classmethod
    def coerce(cls, value: "int | ClusterSpec") -> "ClusterSpec":
        """Accept the historical bare processor count or a full spec."""
        if isinstance(value, cls):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(
                f"expected a processor count or ClusterSpec, got {value!r}"
            )
        return cls(n_procs=value)


class Cluster:
    """Resource accounting for a homogeneous machine (procs + memory)."""

    def __init__(self, n_procs: int, memory: float | None = None):
        spec = ClusterSpec(n_procs, memory)  # validates both components
        self.n_procs = spec.n_procs
        self.free_procs = spec.n_procs
        self.total_mem = spec.total_mem
        self.free_mem = self.total_mem
        # Memory demands are floats, so releases reassemble the free pool
        # in a different rounding order than allocations consumed it; the
        # invariant bound carries a relative tolerance to separate that
        # ulp-level drift from real accounting bugs (which the exact
        # processor check also catches).  Precomputed: _check runs on
        # every transition.
        self._mem_bound = self.total_mem + 1e-9 * max(1.0, self.total_mem)
        self._allocations: dict[int, tuple[int, float]] = {}  # job_id -> held

    # ------------------------------------------------------------------
    def fits(self, n_procs: int, mem: float = 0.0) -> bool:
        """True if a ``(procs, mem)`` request fits the free resources.

        The single resource-vector check behind every admission decision
        (``can_allocate`` delegates here); with unconstrained memory the
        second comparison is against ``inf`` and never binds.
        """
        return n_procs <= self.free_procs and mem <= self.free_mem

    def can_allocate(self, job: Job) -> bool:
        """True if the job's full resource request fits right now."""
        return self.fits(job.requested_procs, mem_demand(job))

    def allocate(self, job: Job) -> None:
        need_mem = mem_demand(job)
        if job.requested_procs > self.n_procs:
            raise ValueError(
                f"job {job.job_id} requests {job.requested_procs} procs; "
                f"cluster only has {self.n_procs}"
            )
        if need_mem > self.total_mem:
            raise ValueError(
                f"job {job.job_id} needs {need_mem:g} memory units; "
                f"cluster only has {self.total_mem:g}"
            )
        if job.job_id in self._allocations:
            raise RuntimeError(f"job {job.job_id} is already allocated")
        if not self.can_allocate(job):
            raise RuntimeError(
                f"job {job.job_id} needs {job.requested_procs} procs "
                f"(+{need_mem:g} mem); only {self.free_procs} free "
                f"({self.free_mem:g} mem free)"
            )
        self.free_procs -= job.requested_procs
        self.free_mem -= need_mem
        self._allocations[job.job_id] = (job.requested_procs, need_mem)
        self._check()

    def release(self, job: Job) -> None:
        held = self._allocations.pop(job.job_id, None)
        if held is None:
            raise RuntimeError(f"job {job.job_id} holds no allocation")
        procs, mem = held
        self.free_procs += procs
        self.free_mem += mem
        if not self._allocations and not math.isinf(self.total_mem):
            # Idle cluster: snap to capacity so float rounding from
            # out-of-allocation-order releases cannot accumulate.
            self.free_mem = self.total_mem
        self._check()

    def _check(self) -> None:
        """Conservation invariants, asserted at every transition."""
        assert 0 <= self.free_procs <= self.n_procs, (
            "processor conservation violated"
        )
        assert 0.0 <= self.free_mem <= self._mem_bound, (
            "memory conservation violated"
        )

    # ------------------------------------------------------------------
    @property
    def spec(self) -> ClusterSpec:
        return ClusterSpec(
            self.n_procs,
            None if math.isinf(self.total_mem) else self.total_mem,
        )

    @property
    def used_procs(self) -> int:
        return self.n_procs - self.free_procs

    @property
    def used_mem(self) -> float:
        return 0.0 if math.isinf(self.total_mem) else self.total_mem - self.free_mem

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of processors in use."""
        return self.used_procs / self.n_procs

    @property
    def mem_utilization(self) -> float:
        """Fraction of memory in use (0 when memory is unconstrained)."""
        if math.isinf(self.total_mem):
            return 0.0
        return self.used_mem / self.total_mem

    @property
    def n_running(self) -> int:
        return len(self._allocations)

    def reset(self) -> None:
        self.free_procs = self.n_procs
        self.free_mem = self.total_mem
        self._allocations.clear()

    def __repr__(self) -> str:
        mem = "" if math.isinf(self.total_mem) else (
            f", mem={self.free_mem:g}/{self.total_mem:g}"
        )
        return (
            f"Cluster(procs={self.n_procs}, free={self.free_procs}, "
            f"running={self.n_running}{mem})"
        )
