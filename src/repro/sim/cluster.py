"""Homogeneous cluster resource model.

The paper targets homogeneous HPC platforms, so resource state reduces to a
count of free processors.  The class still tracks per-job allocations so
that invariants (no double-release, conservation of processors) are checked
at every transition — errors in resource accounting would silently corrupt
every scheduling metric downstream.
"""

from __future__ import annotations

from repro.workloads.job import Job

__all__ = ["Cluster"]


class Cluster:
    """Processor accounting for a homogeneous machine."""

    def __init__(self, n_procs: int):
        if n_procs <= 0:
            raise ValueError(f"cluster needs a positive processor count, got {n_procs}")
        self.n_procs = n_procs
        self.free_procs = n_procs
        self._allocations: dict[int, int] = {}  # job_id -> procs held

    # ------------------------------------------------------------------
    def can_allocate(self, job: Job) -> bool:
        """True if the job's request fits in the currently free processors."""
        return job.requested_procs <= self.free_procs

    def fits(self, n_procs: int) -> bool:
        return n_procs <= self.free_procs

    def allocate(self, job: Job) -> None:
        if job.requested_procs > self.n_procs:
            raise ValueError(
                f"job {job.job_id} requests {job.requested_procs} procs; "
                f"cluster only has {self.n_procs}"
            )
        if job.job_id in self._allocations:
            raise RuntimeError(f"job {job.job_id} is already allocated")
        if not self.can_allocate(job):
            raise RuntimeError(
                f"job {job.job_id} needs {job.requested_procs} procs; "
                f"only {self.free_procs} free"
            )
        self.free_procs -= job.requested_procs
        self._allocations[job.job_id] = job.requested_procs

    def release(self, job: Job) -> None:
        held = self._allocations.pop(job.job_id, None)
        if held is None:
            raise RuntimeError(f"job {job.job_id} holds no allocation")
        self.free_procs += held
        assert self.free_procs <= self.n_procs, "processor conservation violated"

    # ------------------------------------------------------------------
    @property
    def used_procs(self) -> int:
        return self.n_procs - self.free_procs

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of processors in use."""
        return self.used_procs / self.n_procs

    @property
    def n_running(self) -> int:
        return len(self._allocations)

    def reset(self) -> None:
        self.free_procs = self.n_procs
        self._allocations.clear()

    def __repr__(self) -> str:
        return (
            f"Cluster(procs={self.n_procs}, free={self.free_procs}, "
            f"running={self.n_running})"
        )
