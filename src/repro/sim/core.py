"""Event-driven engine core shared by the batch and online schedulers.

:class:`EngineCore` owns the mechanics every engine variant needs — the
event heap, the bisect-sorted FCFS pending queue, cluster admission,
backfill shadow budgets, and completion handling — without assuming a
pre-sampled job sequence.  Two drivers sit on top of it:

* :class:`repro.sim.simulator.SchedulingEngine` replays a fixed sequence
  (all arrivals known up front) and is bit-identical to the pre-split
  engine — pinned by ``tests/test_engine_core.py`` goldens;
* :class:`OnlineSchedulingEngine` (here) is open-ended: jobs arrive via
  :meth:`~OnlineSchedulingEngine.submit` and simulated time only advances
  up to a *horizon* — the latest externally-observed instant — so the
  engine never runs ahead of arrivals it has not seen yet.

The horizon plumbing is the one semantic addition.  ``commit`` in the
batch engine fast-forwards time until the chosen job fits; online, that
fast-forward must pause at the horizon (a later submission might arrive
before the next queued event) and resume later.  The resume re-enters the
wait loop *at the event-processing step* — exactly where it paused — so a
stalled-and-resumed commit processes the identical event sequence the
batch engine would, which is what makes online replay reproduce the batch
decision log bit-for-bit.
"""

from __future__ import annotations

import math
from bisect import bisect_left

from repro.telemetry import core as _telemetry
from repro.workloads.job import Job

from .backfill import backfill_candidates, conservative_backfill_candidates
from .cluster import ClusterSpec, mem_demand
from .events import EventKind, EventQueue

__all__ = ["EngineCore", "OnlineSchedulingEngine"]


class EngineCore:
    """Event heap + pending queue + admission, independent of job source.

    Hot-path invariants (relied on by the vectorised rollout path):

    * ``pending`` is kept sorted by ``(submit_time, job_id)`` — FCFS order —
      at all times, so observation building never re-sorts it.  Arrivals
      pop off the event heap in exactly that order, so maintaining the
      invariant is an O(1) append; removals locate the job by bisection.
    * running jobs are tracked in an insertion-ordered id map, making the
      per-finish-event removal O(1) instead of an O(n) list scan with the
      full dataclass ``__eq__``.
    """

    #: accepted backfilling modes (True is an alias for "easy")
    BACKFILL_MODES = (False, True, "easy", "conservative")

    def __init__(self, cluster: int | ClusterSpec, backfill: bool | str = False):
        if backfill not in self.BACKFILL_MODES:
            raise ValueError(
                f"backfill must be one of {self.BACKFILL_MODES}, got {backfill!r}"
            )
        self.spec = ClusterSpec.coerce(cluster)
        self.cluster = self.spec.build()
        self.backfill = backfill
        self.now = 0.0
        #: waiting jobs, always sorted by (submit_time, job_id) — FCFS order
        self.pending: list[Job] = []
        self._pending_keys: list[tuple[float, int]] = []  # parallel to pending
        #: feature row of each pending job (parallel to ``pending``);
        #: observation builders gather precomputed per-job feature columns
        #: by these rows without any per-step lookups
        self.pending_rows: list[int] = []
        self._row_of: dict[int, int] = {}
        self._next_row = 0
        self._running: dict[int, Job] = {}  # job_id -> Job, insertion-ordered
        self.completed: list[Job] = []
        self._events = EventQueue()
        #: events processed so far (arrivals + finishes); drives the
        #: telemetry events/s rate without touching the per-event path
        self.n_events = 0
        #: job whose commit paused at the horizon mid-wait, if any
        self._stall: Job | None = None
        # The pending-depth instrument is resolved once per episode: the
        # decision loop pays a single None check when telemetry is off.
        _reg = _telemetry.current()
        self._tel_depth = (
            _reg.histogram("engine.pending_depth", bounds=_telemetry.INT_BOUNDS)
            if _reg.enabled
            else None
        )

    # ------------------------------------------------------------------
    @property
    def running(self) -> list[Job]:
        """Currently executing jobs, in start order."""
        return list(self._running.values())

    def _validate_fits_cluster(self, job: Job) -> None:
        """Reject jobs that can never run on this cluster."""
        if job.requested_procs > self.spec.n_procs:
            raise ValueError(
                f"job {job.job_id} requests {job.requested_procs} procs but the "
                f"cluster has {self.spec.n_procs}"
            )
        if mem_demand(job) > self.spec.total_mem:
            raise ValueError(
                f"job {job.job_id} needs {mem_demand(job):g} memory units but "
                f"the cluster has {self.spec.total_mem:g}"
            )

    # ------------------------------------------------------------------
    def _pending_index(self, job: Job) -> int:
        """Index of ``job`` in the sorted pending list, or -1."""
        key = (job.submit_time, job.job_id)
        i = bisect_left(self._pending_keys, key)
        if i < len(self.pending):
            found = self.pending[i]
            # identity first: committed jobs are the engine's own objects,
            # and the dataclass __eq__ compares all 19 fields
            if found is job or found == job:
                return i
        return -1

    def _start(self, job: Job) -> None:
        """Allocate and launch ``job`` at the current time."""
        self.cluster.allocate(job)
        job.start_time = self.now
        i = self._pending_index(job)
        if i < 0:  # mirrors the old list.remove(job) contract
            raise ValueError(f"job {job.job_id} is not pending")
        del self.pending[i]
        del self._pending_keys[i]
        del self.pending_rows[i]
        self._running[job.job_id] = job
        self._events.push(job.end_time, EventKind.FINISH, job)

    def _process_next_event(self) -> None:
        """Advance the clock to the next event and apply it."""
        time, kind, job_id, job = self._events.pop_raw()
        assert time >= self.now, "event queue went backwards in time"
        self.now = time
        self.n_events += 1
        if kind == EventKind.FINISH:
            self.cluster.release(job)
            del self._running[job_id]
            self.completed.append(job)
        else:
            # Arrivals pop in (time, job_id) order, so appending preserves
            # the FCFS sort; the bisect branch is a safety net for exotic
            # callers that push out-of-order arrivals.
            key = (time, job_id)
            if not self._pending_keys or key >= self._pending_keys[-1]:
                self.pending.append(job)
                self._pending_keys.append(key)
                self.pending_rows.append(self._row_of[job_id])
            else:
                i = bisect_left(self._pending_keys, key)
                self.pending.insert(i, job)
                self._pending_keys.insert(i, key)
                self.pending_rows.insert(i, self._row_of[job_id])

    def advance_until_decision(self, until: float = math.inf) -> bool:
        """Run events (up to ``until``) until a scheduling decision is needed.

        Returns True if there is a decision to make (pending non-empty),
        False if no more events are reachable — the episode is over (batch)
        or the horizon was hit (online).
        """
        while not self.pending:
            next_time = self._events.next_time
            if next_time is None or next_time > until:
                return False
            self._process_next_event()
        if self._tel_depth is not None:
            self._tel_depth.record(len(self.pending))
        return True

    def commit(self, job: Job, until: float = math.inf) -> bool:
        """Commit to starting ``job``: wait (and backfill) until it fits.

        Returns True once the job started.  With a finite ``until`` the
        wait pauses — returning False — when the next event lies beyond
        it; calling again (with a later ``until``) resumes exactly where
        the wait left off.
        """
        if self._pending_index(job) < 0:
            raise ValueError(f"job {job.job_id} is not pending")
        # Resume a stalled commit at the event-processing step it paused
        # before, not from the top: a fresh backfill pass at the unchanged
        # state would be a no-op, but skipping it keeps the control flow
        # bit-identical to an uninterrupted batch commit.
        resumed = self._stall is job
        self._stall = None
        while True:
            if not resumed:
                if self.cluster.can_allocate(job):
                    break
                if self.backfill:
                    for candidate in self._backfill_pass(job):
                        self._start(candidate)
                    if self.cluster.can_allocate(job):
                        break
            resumed = False
            next_time = self._events.next_time
            if next_time is None:
                raise RuntimeError(
                    f"deadlock: job {job.job_id} cannot fit and no events remain"
                )
            if next_time > until:
                self._stall = job
                return False
            self._process_next_event()
        self._start(job)
        return True

    def _backfill_pass(self, head: Job) -> list[Job]:
        running = list(self._running.values())
        if self.backfill == "conservative":
            return conservative_backfill_candidates(
                head, self.pending, running, self.cluster, self.now
            )
        return backfill_candidates(
            head, self.pending, running, self.cluster, self.now
        )


class OnlineSchedulingEngine(EngineCore):
    """Open-ended engine variant: time is driven by external arrivals.

    The driver loop is::

        engine = OnlineSchedulingEngine(ClusterSpec(256), backfill="easy")
        engine.submit(job)                  # as requests arrive
        while engine.next_decision():       # pump after submit/advance
            engine.commit(<pick one of engine.pending>)
        finished = engine.take_completed()  # harvest + free bookkeeping
        engine.drain()                      # shutdown: run to quiescence

    Simulated time never advances past the *horizon* — the latest
    submit/advance instant seen so far — because a future submission may
    arrive before the next queued event.  ``commit`` therefore may stall
    (return False); the in-flight job is remembered and the next
    :meth:`next_decision` pump resumes it before exposing new decisions.

    Unlike the batch engine there is no ``jobs`` list: completed jobs are
    handed back through :meth:`take_completed`, which also drops their
    row-index bookkeeping so a long-lived daemon holds memory proportional
    to the *live* job set, not everything it ever served.
    """

    def __init__(self, cluster: int | ClusterSpec, backfill: bool | str = False):
        super().__init__(cluster, backfill=backfill)
        self._horizon = 0.0
        self._inflight: Job | None = None
        self.n_submitted = 0
        self.n_started = 0

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Latest externally-observed instant; events beyond it wait."""
        return self._horizon

    @property
    def inflight(self) -> Job | None:
        """The committed-but-stalled job, if a commit paused at the horizon."""
        return self._inflight

    @property
    def idle(self) -> bool:
        """True when nothing is pending, running, stalled, or queued."""
        return (
            not self.pending
            and self._inflight is None
            and not self._running
            and not self._events
        )

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Admit an externally-arriving job; returns the engine's copy.

        The submission instant becomes the new horizon.  A ``submit_time``
        in the simulated past is clamped to ``now`` — the arrival is only
        being observed now, and the pending-queue sort key must agree with
        the arrival event's timestamp.
        """
        if job.job_id in self._row_of or job.job_id in self._running:
            raise ValueError(f"job {job.job_id} is already known to the engine")
        self._validate_fits_cluster(job)
        job = job.copy()
        if job.submit_time < self.now:
            job.submit_time = self.now
        self._row_of[job.job_id] = self._next_row
        self._next_row += 1
        self._events.push(job.submit_time, EventKind.ARRIVAL, job)
        if job.submit_time > self._horizon:
            self._horizon = job.submit_time
        self.n_submitted += 1
        return job

    def advance(self, until: float) -> None:
        """Declare that external time has reached ``until``."""
        if until > self._horizon:
            self._horizon = until

    def drain(self) -> None:
        """Lift the horizon: no further submissions will ever arrive."""
        self.advance(math.inf)

    # ------------------------------------------------------------------
    def next_decision(self) -> bool:
        """Pump events up to the horizon; True if a decision awaits.

        Resumes any stalled commit first — new decisions are not exposed
        while a previous commitment is still waiting to be honoured.
        """
        if self._inflight is not None:
            if not super().commit(self._inflight, self._horizon):
                return False
            self.n_started += 1
            self._inflight = None
        return self.advance_until_decision(self._horizon)

    def commit(self, job: Job, until: float | None = None) -> bool:
        """Commit to ``job``; False if the wait stalled at the horizon."""
        if self._inflight is not None and self._inflight is not job:
            raise RuntimeError(
                f"commit already in flight for job {self._inflight.job_id}; "
                "pump next_decision() before committing another"
            )
        self._inflight = None
        if super().commit(job, self._horizon if until is None else until):
            self.n_started += 1
            return True
        self._inflight = job
        return False

    def take_completed(self) -> list[Job]:
        """Harvest finished jobs and release their row bookkeeping."""
        done = self.completed
        if not done:
            return done
        self.completed = []
        for job in done:
            self._row_of.pop(job.job_id, None)
        return done
