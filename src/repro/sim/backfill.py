"""EASY backfilling (paper §II-A4, §IV-D).

When the committed (head) job cannot start, EASY backfilling computes the
head job's *shadow time* — the earliest instant its request will fit, based
on the **requested** (not actual) runtimes of running jobs — and starts any
waiting job that either

* finishes (by its own requested runtime) before the shadow time, or
* uses no more than the processors that will still be spare at the shadow
  time after the head job is placed ("extra" processors).

Backfilled jobs therefore never delay the planned start of the head job.
Planning uses requested runtimes because actual runtimes are invisible to
schedulers; since users over-estimate, plans are conservative and the head
job can only start earlier than planned, never later.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.job import Job

from .cluster import Cluster

__all__ = [
    "shadow_time_and_extra",
    "backfill_candidates",
    "conservative_backfill_candidates",
]


def shadow_time_and_extra(
    head: Job,
    running: Sequence[Job],
    cluster: Cluster,
    now: float,
) -> tuple[float, int]:
    """Earliest planned start for ``head`` and spare procs at that instant.

    ``running`` jobs must have ``start_time`` set.  Returns ``(shadow,
    extra)`` where ``extra`` is the processor head-room left at ``shadow``
    after reserving the head job.
    """
    if cluster.can_allocate(head):
        return now, cluster.free_procs - head.requested_procs

    # Planned release order by *requested* end time.
    releases = sorted(
        (max(j.start_time + j.requested_time, now), j.requested_procs)
        for j in running
    )
    free = cluster.free_procs
    for planned_end, procs in releases:
        free += procs
        if free >= head.requested_procs:
            return planned_end, free - head.requested_procs
    raise RuntimeError(
        f"head job {head.job_id} ({head.requested_procs} procs) can never fit: "
        f"running jobs release only {free} procs on a {cluster.n_procs}-proc cluster"
    )


def backfill_candidates(
    head: Job,
    pending: Sequence[Job],
    running: Sequence[Job],
    cluster: Cluster,
    now: float,
) -> list[Job]:
    """Jobs (FCFS order) that may start now without delaying ``head``.

    The returned list is what the engine should start *in order*; the spare
    ("extra") budget is consumed as candidates that overrun the shadow time
    are accepted, so later candidates see the reduced head-room.
    """
    shadow, extra = shadow_time_and_extra(head, running, cluster, now)
    free = cluster.free_procs
    chosen: list[Job] = []
    for job in sorted(pending, key=lambda j: (j.submit_time, j.job_id)):
        if job.job_id == head.job_id:
            continue
        if job.requested_procs > free:
            continue
        ends_before_shadow = now + job.requested_time <= shadow
        if ends_before_shadow:
            chosen.append(job)
            free -= job.requested_procs
        elif job.requested_procs <= extra:
            chosen.append(job)
            free -= job.requested_procs
            extra -= job.requested_procs
    return chosen


def conservative_backfill_candidates(
    head: Job,
    pending: Sequence[Job],
    running: Sequence[Job],
    cluster: Cluster,
    now: float,
) -> list[Job]:
    """Conservative backfilling: candidates may start only if they finish
    (by requested runtime) before the head job's shadow time.

    Unlike EASY, the "extra processors" allowance is not used, so no
    backfilled job may overrun the shadow time at all — a stricter
    guarantee that protects *every* queued job's implied reservation, at
    the cost of fewer backfill opportunities.  Included as the classic
    ablation point against EASY (Mu'alem & Feitelson, TPDS 2001).
    """
    shadow, _ = shadow_time_and_extra(head, running, cluster, now)
    free = cluster.free_procs
    chosen: list[Job] = []
    for job in sorted(pending, key=lambda j: (j.submit_time, j.job_id)):
        if job.job_id == head.job_id:
            continue
        if job.requested_procs > free:
            continue
        if now + job.requested_time <= shadow:
            chosen.append(job)
            free -= job.requested_procs
    return chosen
