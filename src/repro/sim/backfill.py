"""EASY backfilling (paper §II-A4, §IV-D), resource-vector aware.

When the committed (head) job cannot start, EASY backfilling computes the
head job's *shadow time* — the earliest instant its request will fit, based
on the **requested** (not actual) runtimes of running jobs — and starts any
waiting job that either

* finishes (by its own requested runtime) before the shadow time, or
* uses no more than the resources that will still be spare at the shadow
  time after the head job is placed ("extra" processors/memory).

Backfilled jobs therefore never delay the planned start of the head job.
Planning uses requested runtimes because actual runtimes are invisible to
schedulers; since users over-estimate, plans are conservative and the head
job can only start earlier than planned, never later.

Multi-resource planning
-----------------------
With a memory-constrained :class:`~repro.sim.cluster.Cluster`, "fits"
means *both* components of the resource vector fit: the shadow time is
the earliest planned release instant at which the head job's processors
**and** memory are available, and the extra budget is tracked per
resource.  On an unconstrained cluster every memory comparison is against
``inf``, so candidate selection is decision-for-decision identical to the
original processor-only algorithm.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.workloads.job import Job

from .cluster import Cluster, mem_demand

__all__ = [
    "shadow_state",
    "shadow_time_and_extra",
    "backfill_candidates",
    "conservative_backfill_candidates",
]


def shadow_state(
    head: Job,
    running: Sequence[Job],
    cluster: Cluster,
    now: float,
) -> tuple[float, int, float]:
    """Earliest planned start for ``head`` and spare resources then.

    ``running`` jobs must have ``start_time`` set.  Returns ``(shadow,
    extra_procs, extra_mem)`` where the extras are the head-room left at
    ``shadow`` after reserving the head job (``extra_mem`` is ``inf`` on
    an unconstrained cluster).
    """
    head_mem = mem_demand(head)
    if cluster.can_allocate(head):
        return (
            now,
            cluster.free_procs - head.requested_procs,
            max(cluster.free_mem - head_mem, 0.0),
        )

    # Planned release order by *requested* end time.
    releases = sorted(
        (max(j.start_time + j.requested_time, now), j.requested_procs, mem_demand(j))
        for j in running
    )
    free = cluster.free_procs
    free_mem = cluster.free_mem
    total_mem = cluster.total_mem
    # Float demands reassemble the free pool in release order, which can
    # round a full-capacity plan an ulp below the capacity; cap the plan
    # at the physical total and give the fit test a relative tolerance so
    # a head job demanding exactly the cluster memory still plans a start.
    mem_tol = 0.0 if math.isinf(total_mem) else 1e-9 * max(1.0, total_mem)
    for planned_end, procs, mem in releases:
        free += procs
        free_mem = min(free_mem + mem, total_mem)
        if free >= head.requested_procs and free_mem + mem_tol >= head_mem:
            return (
                planned_end,
                free - head.requested_procs,
                max(free_mem - head_mem, 0.0),
            )
    raise RuntimeError(
        f"head job {head.job_id} ({head.requested_procs} procs, "
        f"{head_mem:g} mem) can never fit: running jobs release only "
        f"{free} procs / {free_mem:g} mem on a {cluster.n_procs}-proc "
        f"({total_mem:g}-mem) cluster"
    )


def shadow_time_and_extra(
    head: Job,
    running: Sequence[Job],
    cluster: Cluster,
    now: float,
) -> tuple[float, int]:
    """Processor-only view of :func:`shadow_state` (the historical API)."""
    shadow, extra, _ = shadow_state(head, running, cluster, now)
    return shadow, extra


def backfill_candidates(
    head: Job,
    pending: Sequence[Job],
    running: Sequence[Job],
    cluster: Cluster,
    now: float,
) -> list[Job]:
    """Jobs (FCFS order) that may start now without delaying ``head``.

    The returned list is what the engine should start *in order*; the spare
    ("extra") budget is consumed as candidates that overrun the shadow time
    are accepted, so later candidates see the reduced head-room.
    """
    shadow, extra, extra_mem = shadow_state(head, running, cluster, now)
    free = cluster.free_procs
    free_mem = cluster.free_mem
    chosen: list[Job] = []
    for job in sorted(pending, key=lambda j: (j.submit_time, j.job_id)):
        if job.job_id == head.job_id:
            continue
        need_mem = mem_demand(job)
        if job.requested_procs > free or need_mem > free_mem:
            continue
        ends_before_shadow = now + job.requested_time <= shadow
        if ends_before_shadow:
            chosen.append(job)
            free -= job.requested_procs
            free_mem -= need_mem
        elif job.requested_procs <= extra and need_mem <= extra_mem:
            chosen.append(job)
            free -= job.requested_procs
            free_mem -= need_mem
            extra -= job.requested_procs
            extra_mem -= need_mem
    return chosen


def conservative_backfill_candidates(
    head: Job,
    pending: Sequence[Job],
    running: Sequence[Job],
    cluster: Cluster,
    now: float,
) -> list[Job]:
    """Conservative backfilling: candidates may start only if they finish
    (by requested runtime) before the head job's shadow time.

    Unlike EASY, the "extra resources" allowance is not used, so no
    backfilled job may overrun the shadow time at all — a stricter
    guarantee that protects *every* queued job's implied reservation, at
    the cost of fewer backfill opportunities.  Included as the classic
    ablation point against EASY (Mu'alem & Feitelson, TPDS 2001).
    """
    shadow, _, _ = shadow_state(head, running, cluster, now)
    free = cluster.free_procs
    free_mem = cluster.free_mem
    chosen: list[Job] = []
    for job in sorted(pending, key=lambda j: (j.submit_time, j.job_id)):
        if job.job_id == head.job_id:
            continue
        need_mem = mem_demand(job)
        if job.requested_procs > free or need_mem > free_mem:
            continue
        if now + job.requested_time <= shadow:
            chosen.append(job)
            free -= job.requested_procs
            free_mem -= need_mem
    return chosen
