"""VecSchedGym: N SchedGym environments stepped in lock-step.

The RL training loop is dominated by per-step overhead: a batch-size-1
policy forward, a batch-size-1 value forward, and one observation build
per environment step.  Stepping N environments together amortises all of
it — one ``(N, M, F)`` network call serves N environments, and the
Python-side event simulation is the only per-environment cost left.

Protocol
--------
::

    vec = VecSchedGym(n_envs, n_procs, reward_fn, config)
    obs, masks = vec.reset(sequences[:n_envs])   # (N, M, F), (N, M)
    vec.queue_sequences(sequences[n_envs:])      # auto-reset backlog
    while vec.active.any():
        actions = <one per active env; -1 for inactive>
        result = vec.step(actions)
        # result.dones[i] marks episode ends; result.rewards[i] carries the
        # terminal sequence reward.  If the backlog is non-empty the env
        # auto-resets and result.observations[i] is the *new* episode's
        # first observation (result.infos[i]["auto_reset"] is True);
        # otherwise the env deactivates and its rows are zeros.

Each wrapped environment is a plain :class:`~repro.sim.env.SchedGym`, so a
vectorised rollout is step-for-step identical to running the N episodes
one after another — the property the golden equivalence tests pin down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import EnvConfig
from repro.workloads.job import Job

from .cluster import ClusterSpec
from .env import SchedGym

__all__ = ["VecSchedGym", "VecStepResult"]


@dataclass(frozen=True)
class VecStepResult:
    """Stacked step outcome for all environments (inactive rows zeroed)."""

    observations: np.ndarray    # (N, M, F) float32
    rewards: np.ndarray         # (N,) float64, non-zero only on done steps
    dones: np.ndarray           # (N,) bool, True where an episode just ended
    action_masks: np.ndarray    # (N, M) bool
    infos: list[dict]


class VecSchedGym:
    """N :class:`SchedGym` environments advanced in lock-step.

    Parameters mirror :class:`SchedGym`; ``n_envs`` adds the batch width.
    Sequences beyond the first ``n_envs`` can be queued for automatic
    per-env resets, so an arbitrary number of trajectories streams through
    a fixed set of environments.
    """

    def __init__(
        self,
        n_envs: int,
        n_procs: int | ClusterSpec,
        reward_fn: Callable[[Sequence[Job], int], float],
        config: EnvConfig | None = None,
    ):
        if n_envs <= 0:
            raise ValueError("n_envs must be positive")
        self.config = config or EnvConfig()
        self.envs = [SchedGym(n_procs, reward_fn, self.config) for _ in range(n_envs)]
        self._active = np.zeros(n_envs, dtype=bool)
        self._queue: deque[Sequence[Job]] = deque()
        m, f = self.config.observation_shape
        self._obs = np.zeros((n_envs, m, f), dtype=np.float32)
        self._masks = np.zeros((n_envs, m), dtype=bool)

    # ------------------------------------------------------------------
    @property
    def n_envs(self) -> int:
        return len(self.envs)

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of environments with an episode in progress."""
        return self._active.copy()

    @property
    def all_done(self) -> bool:
        return not self._active.any()

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def reset(
        self, sequences: Sequence[Sequence[Job]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Start one episode per sequence; returns stacked (obs, masks).

        At most ``n_envs`` sequences may be passed; queue the rest with
        :meth:`queue_sequences`.  Environments beyond ``len(sequences)``
        stay inactive (zero rows, all-False masks).
        """
        if not sequences:
            raise ValueError("reset() needs at least one job sequence")
        if len(sequences) > self.n_envs:
            raise ValueError(
                f"{len(sequences)} sequences for {self.n_envs} envs; queue the "
                "surplus with queue_sequences()"
            )
        self._queue.clear()
        self._obs[:] = 0.0
        self._masks[:] = False
        self._active[:] = False
        for i, seq in enumerate(sequences):
            obs, mask = self.envs[i].reset(seq)
            self._obs[i] = obs
            self._masks[i] = mask
            self._active[i] = True
        return self._obs.copy(), self._masks.copy()

    def queue_sequences(self, sequences: Sequence[Sequence[Job]]) -> None:
        """Add sequences to the auto-reset backlog (FIFO)."""
        self._queue.extend(sequences)

    def step(self, actions: np.ndarray) -> VecStepResult:
        """Advance every active environment by one action.

        ``actions`` has one entry per environment; entries for inactive
        environments are ignored (use -1 by convention).  Environments are
        processed in index order, so queued sequences are assigned to the
        lowest-index finishing env first — the deterministic bookkeeping
        the equivalence tests rely on.
        """
        actions = np.asarray(actions)
        if actions.shape != (self.n_envs,):
            raise ValueError(
                f"expected {self.n_envs} actions, got shape {actions.shape}"
            )
        if not self._active.any():
            raise RuntimeError("all environments are done; call reset()")
        rewards = np.zeros(self.n_envs, dtype=np.float64)
        dones = np.zeros(self.n_envs, dtype=bool)
        infos: list[dict] = [{} for _ in range(self.n_envs)]
        for i in np.flatnonzero(self._active):
            result = self.envs[i].step(int(actions[i]))
            infos[i] = dict(result.info)
            if not result.done:
                self._obs[i] = result.observation
                self._masks[i] = result.action_mask
                continue
            rewards[i] = result.reward
            dones[i] = True
            if self._queue:
                obs, mask = self.envs[i].reset(self._queue.popleft())
                self._obs[i] = obs
                self._masks[i] = mask
                infos[i]["auto_reset"] = True
            else:
                self._obs[i] = 0.0
                self._masks[i] = False
                self._active[i] = False
        return VecStepResult(
            observations=self._obs.copy(),
            rewards=rewards,
            dones=dones,
            action_masks=self._masks.copy(),
            infos=infos,
        )
