"""Scheduling metrics (paper §II-A3) as pure functions on completed jobs.

All four paper goals are implemented, plus their per-user fairness
aggregations (§V-F):

* ``average_waiting_time``     — `wait`,  minimise
* ``average_response_time``    — `resp`,  minimise
* ``average_slowdown``         — unbounded slowdown, minimise (Appendix A)
* ``average_bounded_slowdown`` — `bsld` with a 10-second interactive
  threshold, minimise
* ``resource_utilization``     — `util`, maximise

A *completed* job is a :class:`~repro.workloads.job.Job` whose
``start_time`` has been set by the simulator.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

import numpy as np

from repro.workloads.job import Job

__all__ = [
    "BSLD_THRESHOLD",
    "job_waiting_time",
    "job_response_time",
    "job_slowdown",
    "job_bounded_slowdown",
    "average_waiting_time",
    "average_response_time",
    "average_slowdown",
    "average_bounded_slowdown",
    "resource_utilization",
    "makespan",
    "per_user_metric",
    "fairness_aggregate",
    "METRICS",
    "metric_by_name",
]

#: Interactive threshold (seconds) of the bounded-slowdown definition.
BSLD_THRESHOLD = 10.0


def _require_scheduled(jobs: Sequence[Job]) -> None:
    for j in jobs:
        if not j.scheduled:
            raise ValueError(f"job {j.job_id} was never scheduled; metrics undefined")


# ---------------------------------------------------------------------------
# per-job quantities
# ---------------------------------------------------------------------------
def job_waiting_time(job: Job) -> float:
    """w_j = start - submit."""
    return job.start_time - job.submit_time


def job_response_time(job: Job) -> float:
    """w_j + e_j (turnaround)."""
    return job_waiting_time(job) + job.run_time


def job_slowdown(job: Job) -> float:
    """(w_j + e_j) / e_j — blows up for e_j near 0 (the Appendix metric)."""
    return job_response_time(job) / max(job.run_time, 1e-9)


def job_bounded_slowdown(job: Job, threshold: float = BSLD_THRESHOLD) -> float:
    """max((w_j + e_j) / max(e_j, threshold), 1)."""
    return max(job_response_time(job) / max(job.run_time, threshold), 1.0)


# ---------------------------------------------------------------------------
# sequence-level metrics
# ---------------------------------------------------------------------------
def average_waiting_time(jobs: Sequence[Job]) -> float:
    _require_scheduled(jobs)
    return float(np.mean([job_waiting_time(j) for j in jobs]))


def average_response_time(jobs: Sequence[Job]) -> float:
    _require_scheduled(jobs)
    return float(np.mean([job_response_time(j) for j in jobs]))


def average_slowdown(jobs: Sequence[Job]) -> float:
    _require_scheduled(jobs)
    return float(np.mean([job_slowdown(j) for j in jobs]))


def average_bounded_slowdown(
    jobs: Sequence[Job], threshold: float = BSLD_THRESHOLD
) -> float:
    _require_scheduled(jobs)
    return float(np.mean([job_bounded_slowdown(j, threshold) for j in jobs]))


def makespan(jobs: Sequence[Job]) -> float:
    """Time from the first submission to the last completion."""
    _require_scheduled(jobs)
    first = min(j.submit_time for j in jobs)
    last = max(j.end_time for j in jobs)
    return last - first


def resource_utilization(jobs: Sequence[Job], n_procs: int) -> float:
    """Used node-seconds over available node-seconds across the makespan."""
    _require_scheduled(jobs)
    if n_procs <= 0:
        raise ValueError("n_procs must be positive")
    span = makespan(jobs)
    if span <= 0:
        return 1.0
    used = sum(j.requested_procs * j.run_time for j in jobs)
    return used / (n_procs * span)


# ---------------------------------------------------------------------------
# fairness (§V-F): per-user metric + aggregator
# ---------------------------------------------------------------------------
def per_user_metric(
    jobs: Sequence[Job],
    metric: Callable[[Sequence[Job]], float] = average_bounded_slowdown,
) -> dict[int, float]:
    """The metric evaluated separately on each user's jobs.

    Jobs with unknown user (id -1) are grouped under -1 — synthetic Lublin
    traces always carry user ids, but real SWF files may not.
    """
    by_user: dict[int, list[Job]] = defaultdict(list)
    for j in jobs:
        by_user[j.user_id].append(j)
    return {u: metric(js) for u, js in by_user.items()}


def fairness_aggregate(
    jobs: Sequence[Job],
    metric: Callable[[Sequence[Job]], float] = average_bounded_slowdown,
    aggregator: str = "max",
) -> float:
    """Aggregate per-user metric values: 'max' (the paper's Maximal) or 'mean'."""
    values = list(per_user_metric(jobs, metric).values())
    if aggregator == "max":
        return float(max(values))
    if aggregator == "mean":
        return float(np.mean(values))
    raise ValueError(f"unknown aggregator {aggregator!r}; use 'max' or 'mean'")


# ---------------------------------------------------------------------------
# registry used by the reward builder and benches
# ---------------------------------------------------------------------------
#: name -> (callable(jobs, n_procs) -> value, higher_is_better)
METRICS: dict[str, tuple[Callable[[Sequence[Job], int], float], bool]] = {
    "bsld": (lambda jobs, n: average_bounded_slowdown(jobs), False),
    "slowdown": (lambda jobs, n: average_slowdown(jobs), False),
    "wait": (lambda jobs, n: average_waiting_time(jobs), False),
    "resp": (lambda jobs, n: average_response_time(jobs), False),
    "util": (resource_utilization, True),
    "fair-bsld-max": (
        lambda jobs, n: fairness_aggregate(jobs, average_bounded_slowdown, "max"),
        False,
    ),
    "fair-bsld-mean": (
        lambda jobs, n: fairness_aggregate(jobs, average_bounded_slowdown, "mean"),
        False,
    ),
}


def metric_by_name(name: str) -> tuple[Callable[[Sequence[Job], int], float], bool]:
    """Look up ``(fn(jobs, n_procs) -> value, higher_is_better)`` by name."""
    try:
        return METRICS[name]
    except KeyError:
        raise KeyError(f"unknown metric {name!r}; known: {sorted(METRICS)}") from None
