"""Typed event heap for the discrete-event engine.

Deterministic ordering matters for reproducibility: ties on time are broken
by event kind (finishes before arrivals, so resources freed at time t are
visible to a job arriving at t) and then by job id.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum

from repro.workloads.job import Job

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Lower value sorts first on a time tie."""

    FINISH = 0
    ARRIVAL = 1


@dataclass(order=True, slots=True)
class Event:
    time: float
    kind: EventKind
    job_id: int
    job: Job = field(compare=False)


class EventQueue:
    """Min-heap of events ordered by (time, kind, job_id)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []

    def push(self, time: float, kind: EventKind, job: Job) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, Event(time, kind, job.job_id, job))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        if not self._heap:
            raise IndexError("peek at empty event queue")
        return self._heap[0]

    @property
    def next_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
