"""Typed event heap for the discrete-event engine.

Deterministic ordering matters for reproducibility: ties on time are broken
by event kind (finishes before arrivals, so resources freed at time t are
visible to a job arriving at t) and then by job id.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum

from repro.workloads.job import Job

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Lower value sorts first on a time tie."""

    FINISH = 0
    ARRIVAL = 1


@dataclass(order=True, slots=True)
class Event:
    time: float
    kind: EventKind
    job_id: int
    job: Job = field(compare=False)


class EventQueue:
    """Min-heap of events ordered by (time, kind, job_id).

    Internally the heap holds plain tuples so sift comparisons run at
    C speed (dataclass ``__lt__`` is a Python call per comparison — a
    measurable cost at millions of events per training run); the public
    API still speaks :class:`Event`.  :meth:`pop_raw` exposes the tuple
    directly for the engine's hot loop.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Job]] = []

    def push(self, time: float, kind: EventKind, job: Job) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, int(kind), job.job_id, job))

    def pop(self) -> Event:
        time, kind, job_id, job = self.pop_raw()
        return Event(time, EventKind(kind), job_id, job)

    def pop_raw(self) -> tuple[float, int, int, Job]:
        """Pop the next event as a bare ``(time, kind, job_id, job)`` tuple."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        if not self._heap:
            raise IndexError("peek at empty event queue")
        time, kind, job_id, job = self._heap[0]
        return Event(time, EventKind(kind), job_id, job)

    @property
    def next_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
