"""Cluster simulation substrate: resource model, event engine, EASY
backfilling, scheduling metrics, and the SchedGym RL environment."""

from .cluster import Cluster, ClusterSpec, mem_demand
from .events import Event, EventKind, EventQueue
from .backfill import (
    backfill_candidates,
    conservative_backfill_candidates,
    shadow_state,
    shadow_time_and_extra,
)
from .core import EngineCore, OnlineSchedulingEngine
from .simulator import SchedulingEngine, run_scheduler
from .env import (
    FeatureCache,
    SchedGym,
    StepResult,
    build_observation,
    build_observation_loop,
    fill_dynamic_features,
    stable_user_hash,
)
from .vec_env import VecSchedGym, VecStepResult
from .metrics import (
    BSLD_THRESHOLD,
    METRICS,
    average_bounded_slowdown,
    average_response_time,
    average_slowdown,
    average_waiting_time,
    fairness_aggregate,
    job_bounded_slowdown,
    job_response_time,
    job_slowdown,
    job_waiting_time,
    makespan,
    metric_by_name,
    per_user_metric,
    resource_utilization,
)

__all__ = [
    "Cluster",
    "ClusterSpec",
    "mem_demand",
    "Event",
    "EventKind",
    "EventQueue",
    "backfill_candidates",
    "conservative_backfill_candidates",
    "shadow_state",
    "shadow_time_and_extra",
    "EngineCore",
    "OnlineSchedulingEngine",
    "SchedulingEngine",
    "run_scheduler",
    "FeatureCache",
    "SchedGym",
    "StepResult",
    "build_observation",
    "build_observation_loop",
    "fill_dynamic_features",
    "stable_user_hash",
    "VecSchedGym",
    "VecStepResult",
    "BSLD_THRESHOLD",
    "METRICS",
    "average_bounded_slowdown",
    "average_response_time",
    "average_slowdown",
    "average_waiting_time",
    "fairness_aggregate",
    "job_bounded_slowdown",
    "job_response_time",
    "job_slowdown",
    "job_waiting_time",
    "makespan",
    "metric_by_name",
    "per_user_metric",
    "resource_utilization",
]
