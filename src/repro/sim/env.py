"""SchedGym: the gym-style RL environment (paper §IV-D).

Implements the OpenAI-Gym ``reset()/step()`` protocol without the gym
dependency.  Each step presents up to ``MAX_OBSV_SIZE`` waiting jobs as a
fixed-size observation matrix; the action is the index of the job to
schedule next.

Observation (one row per visible slot, ``JOB_FEATURES = 7`` columns):

====  =======================================================
col   feature (all in [0, 1])
====  =======================================================
0     waiting time so far, saturating ``w / (w + wait_scale)``
1     requested runtime, ``log(r) / log(runtime_scale)``
2     requested processors, ``n / cluster_size``
3     free processors fraction (system state, same each row)
4     can-run-now flag (request fits free processors)
5     user id, hashed to [0, 1) (fairness signal)
6     validity flag: 1 = real job, 0 = zero-padded slot
====  =======================================================

Pending jobs are ordered FCFS and cut off at ``MAX_OBSV_SIZE`` (paper:
"we simply leverage FCFS ... and select the top MAX_OBSV_SIZE jobs");
missing slots are zero rows.  ``action_mask`` marks the real slots.

Rewards are 0 on every step except the last, where the negative (for
minimise-goals) or positive (utilization) sequence metric is returned —
"we just return rewards 0 to each action and calculate the accurate reward
for the entire sequence at the last action".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import EnvConfig
from repro.workloads.job import Job

from .simulator import SchedulingEngine

__all__ = ["SchedGym", "StepResult", "build_observation"]


def build_observation(
    pending: Sequence[Job],
    now: float,
    free_procs: int,
    n_procs: int,
    config: EnvConfig,
) -> tuple[np.ndarray, np.ndarray, list[Job]]:
    """Fixed-size observation of a waiting queue.

    Shared by :class:`SchedGym` and the trained-policy scheduler wrapper so
    training and deployment see byte-identical features.  Returns
    ``(observation, action_mask, visible_jobs)`` where ``visible_jobs[i]``
    is the job row ``i`` describes.
    """
    visible = sorted(pending, key=lambda j: (j.submit_time, j.job_id))
    visible = visible[: config.max_obsv_size]

    obs = np.zeros(config.observation_shape, dtype=np.float32)
    free_frac = free_procs / n_procs
    log_cap = math.log(config.runtime_scale)
    for i, job in enumerate(visible):
        wait = now - job.submit_time
        obs[i, 0] = wait / (wait + config.wait_scale)
        obs[i, 1] = min(math.log(max(job.requested_time, 1.0)) / log_cap, 1.0)
        obs[i, 2] = job.requested_procs / n_procs
        obs[i, 3] = free_frac
        obs[i, 4] = 1.0 if job.requested_procs <= free_procs else 0.0
        obs[i, 5] = (hash(job.user_id) % 1024) / 1024.0
        obs[i, 6] = 1.0

    mask = np.zeros(config.max_obsv_size, dtype=bool)
    mask[: len(visible)] = True
    return obs, mask, visible


@dataclass(frozen=True)
class StepResult:
    """What ``step`` returns: observation, reward, done flag, action mask."""

    observation: np.ndarray
    reward: float
    done: bool
    action_mask: np.ndarray
    info: dict


class SchedGym:
    """Gym-style environment over :class:`SchedulingEngine`.

    Parameters
    ----------
    n_procs:
        cluster size.
    reward_fn:
        ``f(completed_jobs, n_procs) -> float`` evaluated once at episode
        end; should already carry the sign convention (higher = better).
        See :mod:`repro.rl.reward` for builders.
    config:
        observation-space and backfill settings.
    """

    def __init__(
        self,
        n_procs: int,
        reward_fn: Callable[[Sequence[Job], int], float],
        config: EnvConfig | None = None,
    ):
        if n_procs <= 0:
            raise ValueError("n_procs must be positive")
        self.n_procs = n_procs
        self.reward_fn = reward_fn
        self.config = config or EnvConfig()
        self._engine: SchedulingEngine | None = None
        self._visible: list[Job] = []

    # ------------------------------------------------------------------
    @property
    def observation_shape(self) -> tuple[int, int]:
        return self.config.observation_shape

    @property
    def n_actions(self) -> int:
        return self.config.max_obsv_size

    @property
    def engine(self) -> SchedulingEngine:
        if self._engine is None:
            raise RuntimeError("call reset() before stepping the environment")
        return self._engine

    # ------------------------------------------------------------------
    def reset(self, jobs: Sequence[Job]) -> tuple[np.ndarray, np.ndarray]:
        """Start an episode over ``jobs``; returns (observation, action_mask)."""
        self._engine = SchedulingEngine(
            jobs, self.n_procs, backfill=self.config.backfill
        )
        has_decision = self._engine.advance_until_decision()
        assert has_decision, "a non-empty job sequence must yield a decision"
        return self._observe()

    def step(self, action: int) -> StepResult:
        """Schedule the job in visible slot ``action``."""
        engine = self.engine
        if engine.done:
            raise RuntimeError("episode is over; call reset()")
        if not 0 <= action < self.config.max_obsv_size:
            raise ValueError(
                f"action {action} out of range [0, {self.config.max_obsv_size})"
            )
        if action >= len(self._visible):
            raise ValueError(
                f"action {action} points at a padded slot "
                f"({len(self._visible)} jobs visible); respect the action mask"
            )
        engine.commit(self._visible[action])

        if engine.advance_until_decision():
            obs, mask = self._observe()
            return StepResult(obs, 0.0, False, mask, {"now": engine.now})

        # Episode over: every job completed; emit the sequence reward.
        assert engine.done
        reward = float(self.reward_fn(engine.completed, self.n_procs))
        obs = np.zeros(self.config.observation_shape, dtype=np.float32)
        mask = np.zeros(self.config.max_obsv_size, dtype=bool)
        return StepResult(
            obs, reward, True, mask, {"now": engine.now, "completed": engine.completed}
        )

    # ------------------------------------------------------------------
    def _observe(self) -> tuple[np.ndarray, np.ndarray]:
        """Build the fixed-size observation and its action mask."""
        engine = self.engine
        obs, mask, visible = build_observation(
            engine.pending,
            engine.now,
            engine.cluster.free_procs,
            self.n_procs,
            self.config,
        )
        self._visible = visible
        return obs, mask
