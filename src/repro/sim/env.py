"""SchedGym: the gym-style RL environment (paper §IV-D).

Implements the OpenAI-Gym ``reset()/step()`` protocol without the gym
dependency.  Each step presents up to ``MAX_OBSV_SIZE`` waiting jobs as a
fixed-size observation matrix; the action is the index of the job to
schedule next.

Observation (one row per visible slot, ``JOB_FEATURES = 7`` columns):

====  =======================================================
col   feature (all in [0, 1])
====  =======================================================
0     waiting time so far, saturating ``w / (w + wait_scale)``
1     requested runtime, ``log(r) / log(runtime_scale)``
2     requested processors, ``n / cluster_size``
3     free processors fraction (system state, same each row)
4     can-run-now flag (request fits free processors)
5     user id, stable-hashed to [0, 1) (fairness signal)
6     validity flag: 1 = real job, 0 = zero-padded slot
====  =======================================================

With ``EnvConfig.memory_features`` on (and ``job_features >= 9``) two
per-resource columns are appended for memory-constrained scenarios:

====  =======================================================
col   feature (all in [0, 1])
====  =======================================================
7     job memory demand / cluster memory capacity (static)
8     free memory fraction (system state, same each row)
====  =======================================================

The default 7-column layout is byte-identical with the flag off.

Pending jobs are ordered FCFS and cut off at ``MAX_OBSV_SIZE`` (paper:
"we simply leverage FCFS ... and select the top MAX_OBSV_SIZE jobs");
missing slots are zero rows.  ``action_mask`` marks the real slots.

Rewards are 0 on every step except the last, where the negative (for
minimise-goals) or positive (utilization) sequence metric is returned —
"we just return rewards 0 to each action and calculate the accurate reward
for the entire sequence at the last action".

Hot path
--------
:func:`build_observation` assembles the matrix with NumPy column
operations.  The static per-job columns (normalised runtime, processor
fraction, user hash) never change within an episode, so :class:`SchedGym`
precomputes them once per ``reset()`` into a :class:`FeatureCache` and each
step reduces to a handful of vectorised gathers.  The original per-job
Python loop survives as :func:`build_observation_loop`, the executable
specification that the golden tests compare against bit-for-bit.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import EnvConfig
from repro.workloads.job import Job

from .cluster import ClusterSpec, mem_demand
from .simulator import SchedulingEngine

__all__ = [
    "SchedGym",
    "StepResult",
    "FeatureCache",
    "build_observation",
    "build_observation_loop",
    "fill_dynamic_features",
    "stable_user_hash",
]


def fill_dynamic_features(
    feats: np.ndarray,
    submit: np.ndarray,
    procs: np.ndarray,
    now: float,
    free_procs: int,
    n_procs: int,
    config: EnvConfig,
    free_mem: float = math.inf,
    total_mem: float = math.inf,
) -> np.ndarray:
    """Overwrite the time/state-dependent columns (0, 3, 4) of ``feats``.

    The single definition of the dynamic half of the observation encoding
    — shared by :func:`build_observation`'s cached branch and the
    deployment hot path in
    :class:`repro.schedulers.rl_scheduler.RLSchedulerPolicy`, so the two
    can never drift apart.  Mutates and returns ``feats``.

    With ``config.memory_features`` on, the free-memory fraction column
    (8) is also dynamic; an unconstrained cluster reports 1.0 (all memory
    free).
    """
    wait = now - submit
    feats[:, 0] = wait / (wait + config.wait_scale)
    feats[:, 3] = free_procs / n_procs
    feats[:, 4] = procs <= free_procs
    if config.memory_features:
        feats[:, config.MEM_FREE_COL] = (
            1.0 if math.isinf(total_mem) else free_mem / total_mem
        )
    return feats


def stable_user_hash(user_id: int | str) -> float:
    """Deterministic user-id feature in [0, 1).

    Python's built-in ``hash`` of strings is salted per process
    (PYTHONHASHSEED), so features built from it differ between runs and
    between the workers of a vectorised rollout.  CRC-32 of the decimal
    representation is stable across processes, platforms and Python
    versions, which keeps trained models and recorded trajectories
    reproducible.
    """
    return (zlib.crc32(str(user_id).encode("utf-8")) % 1024) / 1024.0


class FeatureCache:
    """Precomputed static feature columns for a fixed job population.

    Columns that do not depend on simulation time or cluster state are
    computed once per job (``log``-normalised requested runtime, processor
    fraction, user hash) and gathered per step by job index — the
    per-step cost of :func:`build_observation` drops from a 7-feature
    Python loop to a few NumPy slice assignments.

    The logarithms are taken with :func:`math.log`, exactly as the
    reference loop does, so cached and uncached observations are
    bit-identical.
    """

    __slots__ = (
        "index", "submit", "log_runtime", "procs", "procs_frac", "user_hash",
        "mem", "static",
    )

    def __init__(
        self,
        jobs: Sequence[Job],
        n_procs: int,
        config: EnvConfig,
        total_mem: float = math.inf,
    ):
        log_cap = math.log(config.runtime_scale)
        self.index = {j.job_id: i for i, j in enumerate(jobs)}
        self.submit = np.array([j.submit_time for j in jobs], dtype=np.float64)
        self.log_runtime = np.array(
            [
                min(math.log(max(j.requested_time, 1.0)) / log_cap, 1.0)
                for j in jobs
            ],
            dtype=np.float64,
        )
        self.procs = np.array([j.requested_procs for j in jobs], dtype=np.float64)
        self.procs_frac = self.procs / n_procs
        self.user_hash = np.array(
            [stable_user_hash(j.user_id) for j in jobs], dtype=np.float64
        )
        self.mem = np.array([mem_demand(j) for j in jobs], dtype=np.float64)
        # Full feature rows with the static columns (1, 2, 5, 6 and, with
        # memory features, 7) filled in; per-step assembly gathers whole
        # rows and overwrites the dynamic columns (0, 3, 4, 8) — one
        # fancy-index instead of one per column.
        self.static = np.zeros((len(jobs), config.job_features), dtype=np.float64)
        self.static[:, 1] = self.log_runtime
        self.static[:, 2] = self.procs_frac
        self.static[:, 5] = self.user_hash
        self.static[:, 6] = 1.0
        if config.memory_features:
            # demand / capacity, saturating at 1; x/inf == 0 covers the
            # unconstrained-cluster case with no branch
            self.static[:, config.MEM_DEMAND_COL] = np.minimum(
                self.mem / total_mem, 1.0
            )

    def rows(self, jobs: Sequence[Job]) -> np.ndarray:
        """Cache row indices for ``jobs`` (all must be cached)."""
        index = self.index
        return np.fromiter(
            (index[j.job_id] for j in jobs), dtype=np.intp, count=len(jobs)
        )


def build_observation(
    pending: Sequence[Job],
    now: float,
    free_procs: int,
    n_procs: int,
    config: EnvConfig,
    cache: FeatureCache | None = None,
    assume_sorted: bool = False,
    rows: np.ndarray | None = None,
    free_mem: float = math.inf,
    total_mem: float = math.inf,
) -> tuple[np.ndarray, np.ndarray, list[Job]]:
    """Fixed-size observation of a waiting queue.

    Shared by :class:`SchedGym` and the trained-policy scheduler wrapper so
    training and deployment see byte-identical features.  Returns
    ``(observation, action_mask, visible_jobs)`` where ``visible_jobs[i]``
    is the job row ``i`` describes.

    ``cache`` supplies precomputed static columns (see
    :class:`FeatureCache`); ``assume_sorted`` skips the FCFS sort when the
    caller maintains ``pending`` in ``(submit_time, job_id)`` order, as
    :class:`~repro.sim.simulator.SchedulingEngine` does; ``rows`` supplies
    the visible jobs' cache row indices directly (the engine tracks them,
    sparing even the id lookups).
    """
    if assume_sorted:
        visible = list(pending[: config.max_obsv_size])
    else:
        visible = sorted(pending, key=lambda j: (j.submit_time, j.job_id))
        visible = visible[: config.max_obsv_size]

    obs = np.zeros(config.observation_shape, dtype=np.float32)
    mask = np.zeros(config.max_obsv_size, dtype=bool)
    k = len(visible)
    if k:
        if cache is not None:
            if rows is None:
                rows = cache.rows(visible)
            feats = cache.static[rows]  # fancy-index: fresh (k, F) rows
            fill_dynamic_features(
                feats, cache.submit[rows], cache.procs[rows],
                now, free_procs, n_procs, config,
                free_mem=free_mem, total_mem=total_mem,
            )
            obs[:k] = feats
        else:
            log_cap = math.log(config.runtime_scale)
            submit = np.array([j.submit_time for j in visible], dtype=np.float64)
            log_runtime = np.array(
                [
                    min(math.log(max(j.requested_time, 1.0)) / log_cap, 1.0)
                    for j in visible
                ],
                dtype=np.float64,
            )
            procs = np.array(
                [j.requested_procs for j in visible], dtype=np.float64
            )
            user_hash = np.array(
                [stable_user_hash(j.user_id) for j in visible], dtype=np.float64
            )
            wait = now - submit
            obs[:k, 0] = wait / (wait + config.wait_scale)
            obs[:k, 1] = log_runtime
            obs[:k, 2] = procs / n_procs
            obs[:k, 3] = free_procs / n_procs
            obs[:k, 4] = procs <= free_procs
            obs[:k, 5] = user_hash
            obs[:k, 6] = 1.0
            if config.memory_features:
                mem = np.array([mem_demand(j) for j in visible], dtype=np.float64)
                obs[:k, config.MEM_DEMAND_COL] = np.minimum(mem / total_mem, 1.0)
                obs[:k, config.MEM_FREE_COL] = (
                    1.0 if math.isinf(total_mem) else free_mem / total_mem
                )
        mask[:k] = True
    return obs, mask, visible


def build_observation_loop(
    pending: Sequence[Job],
    now: float,
    free_procs: int,
    n_procs: int,
    config: EnvConfig,
    free_mem: float = math.inf,
    total_mem: float = math.inf,
) -> tuple[np.ndarray, np.ndarray, list[Job]]:
    """Reference per-job-loop observation builder.

    The executable specification of the observation encoding: one Python
    loop, one job per iteration, scalar math only.  The vectorised
    :func:`build_observation` must match this bit-for-bit (golden
    equivalence tests); the perf harness uses it as the pre-vectorisation
    baseline.
    """
    visible = sorted(pending, key=lambda j: (j.submit_time, j.job_id))
    visible = visible[: config.max_obsv_size]

    obs = np.zeros(config.observation_shape, dtype=np.float32)
    free_frac = free_procs / n_procs
    log_cap = math.log(config.runtime_scale)
    for i, job in enumerate(visible):
        wait = now - job.submit_time
        obs[i, 0] = wait / (wait + config.wait_scale)
        obs[i, 1] = min(math.log(max(job.requested_time, 1.0)) / log_cap, 1.0)
        obs[i, 2] = job.requested_procs / n_procs
        obs[i, 3] = free_frac
        obs[i, 4] = 1.0 if job.requested_procs <= free_procs else 0.0
        obs[i, 5] = stable_user_hash(job.user_id)
        obs[i, 6] = 1.0
        if config.memory_features:
            obs[i, config.MEM_DEMAND_COL] = min(mem_demand(job) / total_mem, 1.0)
            obs[i, config.MEM_FREE_COL] = (
                1.0 if math.isinf(total_mem) else free_mem / total_mem
            )

    mask = np.zeros(config.max_obsv_size, dtype=bool)
    mask[: len(visible)] = True
    return obs, mask, visible


@dataclass(frozen=True)
class StepResult:
    """What ``step`` returns: observation, reward, done flag, action mask."""

    observation: np.ndarray
    reward: float
    done: bool
    action_mask: np.ndarray
    info: dict


class SchedGym:
    """Gym-style environment over :class:`SchedulingEngine`.

    Parameters
    ----------
    n_procs:
        cluster size — a bare processor count, or a
        :class:`~repro.sim.cluster.ClusterSpec` for multi-resource
        (memory-constrained) clusters.
    reward_fn:
        ``f(completed_jobs, n_procs) -> float`` evaluated once at episode
        end; should already carry the sign convention (higher = better).
        See :mod:`repro.rl.reward` for builders.
    config:
        observation-space and backfill settings.
    """

    def __init__(
        self,
        n_procs: int | ClusterSpec,
        reward_fn: Callable[[Sequence[Job], int], float],
        config: EnvConfig | None = None,
    ):
        self.cluster_spec = ClusterSpec.coerce(n_procs)
        self.n_procs = self.cluster_spec.n_procs
        self.reward_fn = reward_fn
        self.config = config or EnvConfig()
        self._engine: SchedulingEngine | None = None
        self._cache: FeatureCache | None = None
        self._visible: list[Job] = []

    # ------------------------------------------------------------------
    @property
    def observation_shape(self) -> tuple[int, int]:
        return self.config.observation_shape

    @property
    def n_actions(self) -> int:
        return self.config.max_obsv_size

    @property
    def engine(self) -> SchedulingEngine:
        if self._engine is None:
            raise RuntimeError("call reset() before stepping the environment")
        return self._engine

    # ------------------------------------------------------------------
    def reset(self, jobs: Sequence[Job]) -> tuple[np.ndarray, np.ndarray]:
        """Start an episode over ``jobs``; returns (observation, action_mask)."""
        self._engine = SchedulingEngine(
            jobs, self.cluster_spec, backfill=self.config.backfill
        )
        self._cache = FeatureCache(
            self._engine.jobs, self.n_procs, self.config,
            total_mem=self.cluster_spec.total_mem,
        )
        has_decision = self._engine.advance_until_decision()
        assert has_decision, "a non-empty job sequence must yield a decision"
        return self._observe()

    def step(self, action: int) -> StepResult:
        """Schedule the job in visible slot ``action``."""
        engine = self.engine
        if engine.done:
            raise RuntimeError("episode is over; call reset()")
        if not 0 <= action < self.config.max_obsv_size:
            raise ValueError(
                f"action {action} out of range [0, {self.config.max_obsv_size})"
            )
        if action >= len(self._visible):
            raise ValueError(
                f"action {action} points at a padded slot "
                f"({len(self._visible)} jobs visible); respect the action mask"
            )
        engine.commit(self._visible[action])

        if engine.advance_until_decision():
            obs, mask = self._observe()
            return StepResult(obs, 0.0, False, mask, {"now": engine.now})

        # Episode over: every job completed; emit the sequence reward.
        assert engine.done
        reward = float(self.reward_fn(engine.completed, self.n_procs))
        obs = np.zeros(self.config.observation_shape, dtype=np.float32)
        mask = np.zeros(self.config.max_obsv_size, dtype=bool)
        return StepResult(
            obs, reward, True, mask, {"now": engine.now, "completed": engine.completed}
        )

    # ------------------------------------------------------------------
    def _observe(self) -> tuple[np.ndarray, np.ndarray]:
        """Build the fixed-size observation and its action mask."""
        engine = self.engine
        m = self.config.max_obsv_size
        obs, mask, visible = build_observation(
            engine.pending,
            engine.now,
            engine.cluster.free_procs,
            self.n_procs,
            self.config,
            cache=self._cache,
            assume_sorted=True,
            rows=np.asarray(engine.pending_rows[:m], dtype=np.intp),
            free_mem=engine.cluster.free_mem,
            total_mem=engine.cluster.total_mem,
        )
        self._visible = visible
        return obs, mask
