"""The cross-scenario generalization study — the paper's Table VII.

The paper's hardest evaluation question is *generalization*: how does a
policy trained on one workload × cluster setting perform on every other
setting?  This module orchestrates the answer end to end:

:func:`train_matrix`
    one :class:`~repro.rl.trainer.Trainer` run per scenario, each
    checkpointed into a *policy zoo* directory as ``<scenario>.npz``
    (:meth:`~repro.rl.trainer.TrainingResult.save` — weights, best-epoch
    snapshot, training curve, provenance).  The zoo makes the study
    resumable: scenarios whose checkpoint already exists skip training
    and restore the saved result instead, which deploys and evaluates
    identically to the fresh one.

:func:`generalization_matrix`
    every trained policy, retargeted at every scenario through
    :meth:`~repro.schedulers.RLSchedulerPolicy.retarget` (checked
    ``n_procs`` rebind + explicit feature-layout adapt-or-fail
    semantics), evaluated alongside the heuristic baselines on each
    scenario's own protocol sequences.  All (scenario, scheduler,
    sequence) simulations fan over the execution runtime via the same
    cell dispatch as :func:`repro.api.scenario_matrix` — per-cell
    scheduler subsets carry the per-scenario retargeted policy
    instances — so results are bit-identical for any backend and worker
    count.

The returned artifact is one JSON-serializable document: per-cell
mean/std/per-sequence values, per-policy training curves and
compatibility modes, and full provenance (scenario dicts, seeds, study
config).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.config import EnvConfig, ScenarioConfig, StudyConfig, TrainConfig
from repro.rl.trainer import Trainer, TrainingResult
from repro.scenarios import Scenario, available_scenarios, get_scenario
from repro.schedulers import RLSchedulerPolicy, make_scheduler
from repro.sim.metrics import metric_by_name
from repro.telemetry.sink import telemetry_run
from repro.workloads.sampler import SequenceSampler

__all__ = [
    "ARTIFACT_SCHEMA",
    "StudyPolicy",
    "train_matrix",
    "generalization_matrix",
]

#: artifact format identifier (bump on incompatible layout changes)
ARTIFACT_SCHEMA = "repro/generalization-matrix@1"


@dataclass
class StudyPolicy:
    """One zoo entry: a policy trained on (or restored for) a scenario."""

    scenario: str            # scenario the policy was trained on
    checkpoint: str          # path of the zoo ``.npz``
    result: TrainingResult
    from_checkpoint: bool    # True = restored, training was skipped

    @property
    def name(self) -> str:
        """Column name in the generalization matrix."""
        return f"RL-{self.scenario}"


def _say(progress: Callable[[str], None] | None, message: str) -> None:
    if progress is not None:
        progress(message)


def _study_scenarios(config: StudyConfig) -> list[Scenario]:
    names = list(config.scenarios) or available_scenarios()
    scenarios = [get_scenario(n) for n in names]  # fail fast on unknowns
    if len({s.name for s in scenarios}) != len(scenarios):
        raise ValueError("study scenario names must be unique")
    return scenarios


def _train_provenance(config: StudyConfig, metric: str) -> dict:
    """The training knobs a zoo checkpoint records (resume drift check)."""
    return {
        "seed": config.seed,
        "metric": metric,
        "policy_preset": config.policy_preset,
        "epochs": config.epochs,
        "trajectories_per_epoch": config.trajectories_per_epoch,
        "trajectory_length": config.trajectory_length,
        "max_obsv_size": config.max_obsv_size,
        "use_trajectory_filter": config.use_trajectory_filter,
        "n_jobs": config.n_jobs,
        "rollout_mode": config.rollout_mode,
        "staleness": config.staleness,
    }


def train_matrix(
    config: StudyConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, StudyPolicy]:
    """Train (or restore) one policy per scenario into the zoo.

    Returns ``{scenario name: StudyPolicy}`` in scenario order.  A
    scenario whose ``<zoo_dir>/<name>.npz`` exists is *not* retrained:
    the checkpoint is loaded and marked ``from_checkpoint`` — delete the
    file (or point ``zoo_dir`` elsewhere) to force retraining.  Restored
    checkpoints carry their own training provenance (``train_meta``); a
    mismatch against the current config is reported via ``progress`` and
    the checkpoint's own settings stay authoritative in the artifact.
    """
    config = config or StudyConfig()
    zoo = Path(config.zoo_dir)
    zoo.mkdir(parents=True, exist_ok=True)
    out: dict[str, StudyPolicy] = {}
    for scenario in _study_scenarios(config):
        checkpoint = zoo / f"{scenario.name}.npz"
        metric = config.metric or scenario.protocol.metric
        if checkpoint.exists():
            result = TrainingResult.load(checkpoint)
            out[scenario.name] = StudyPolicy(
                scenario.name, str(checkpoint), result, from_checkpoint=True
            )
            _say(progress,
                 f"{scenario.name}: skipped (checkpoint exists: {checkpoint})")
            expected = _train_provenance(config, metric)
            if result.train_meta is not None and result.train_meta != expected:
                drift = {
                    k: (result.train_meta.get(k), v)
                    for k, v in expected.items()
                    if result.train_meta.get(k) != v
                }
                _say(progress,
                     f"{scenario.name}: warning — checkpoint was trained "
                     f"with different settings {drift} (checkpoint vs "
                     f"study config); delete {checkpoint} to retrain")
            continue
        train_config = TrainConfig(
            epochs=config.epochs,
            trajectories_per_epoch=config.trajectories_per_epoch,
            trajectory_length=config.trajectory_length,
            seed=config.seed,
            use_trajectory_filter=config.use_trajectory_filter,
            runtime=config.runtime,
            rollout_mode=config.rollout_mode,
            staleness=config.staleness,
            # workload size/seed stay the scenario defaults unless the
            # study shrinks them (n_jobs) — the same trace the evaluation
            # cells sample from
            scenario=ScenarioConfig(name=scenario.name, n_jobs=config.n_jobs),
        )
        with Trainer(
            metric=metric,
            policy_preset=config.policy_preset,
            env_config=EnvConfig(max_obsv_size=config.max_obsv_size),
            train_config=train_config,
        ) as trainer:
            result = trainer.train()
        result.train_meta = _train_provenance(config, metric)
        result.save(checkpoint)
        out[scenario.name] = StudyPolicy(
            scenario.name, str(checkpoint), result, from_checkpoint=False
        )
        _say(progress,
             f"{scenario.name}: trained {config.policy_preset} for {metric} "
             f"({config.epochs} epochs) -> {checkpoint}")
    return out


def _json_safe(value: float) -> float | None:
    """JSON-strict float: non-finite values map to null."""
    value = float(value)
    return value if math.isfinite(value) else None


def _curve_dict(result: TrainingResult) -> dict:
    return {
        "mean_metric": [_json_safe(r.mean_metric) for r in result.curve],
        "mean_reward": [_json_safe(r.mean_reward) for r in result.curve],
        "val_reward": [_json_safe(r.val_reward) for r in result.curve],
    }


def generalization_matrix(
    config: StudyConfig | None = None,
    trained: dict[str, StudyPolicy] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """The full Table-VII artifact: every policy × every scenario.

    Trains (or restores) the zoo via :func:`train_matrix` unless
    ``trained`` is supplied, then evaluates each trained policy —
    retargeted per scenario with ``config.on_mismatch`` semantics —
    alongside ``config.heuristics`` on every scenario's protocol
    sequences.  Returns a JSON-serializable document::

        {
          "schema": "repro/generalization-matrix@1",
          "config": {... study config, including the runtime ...},
          "scenarios": {name: scenario.to_dict()},
          "policies": {"RL-<scenario>": {checkpoint, curve, compat, ...}},
          "results": {scenario: {scheduler: {mean, std, n, values}}},
        }

    Results are bit-identical for any runtime backend and worker count
    (sequences are pre-sampled in the parent and reassembled in dispatch
    order), so serial and multi-worker runs produce the same artifact.
    """
    config = config or StudyConfig()
    scenarios = _study_scenarios(config)
    with telemetry_run(
        config.telemetry,
        meta={"command": "study", "scenarios": [s.name for s in scenarios]},
    ) as sink:
        if trained is None:
            trained = train_matrix(config, progress=progress)
        policies = list(trained.values())

        heuristics = [make_scheduler(n) for n in config.heuristics]
        names = [s.name for s in heuristics] + [p.name for p in policies]
        if len(set(names)) != len(names):
            raise ValueError(f"scheduler names must be unique, got {names}")

        # Global scheduler list: the heuristics apply to every cell; each
        # trained policy contributes one retargeted instance per scenario
        # (n_procs and the feature-compat mode differ cell to cell).  The
        # best-epoch deployment is scenario-independent — build it once per
        # policy; retarget() clones per scenario.
        schedulers: list = list(heuristics)
        deployed = {
            p.name: p.result.as_scheduler(name=p.name) for p in policies
        }
        cells, cell_schedulers = [], []
        compat: dict[str, dict[str, str]] = {p.name: {} for p in policies}
        for scenario in scenarios:
            protocol = scenario.protocol
            metric = config.metric or protocol.metric
            metric_by_name(metric)  # fail fast in the parent
            n_sequences = config.n_sequences or protocol.n_sequences
            sequence_length = (
                config.sequence_length or protocol.sequence_length
            )
            sampler = SequenceSampler(
                scenario.build_trace(n_jobs=config.n_jobs),
                sequence_length,
                seed=protocol.seed,
            )
            sched_idx = list(range(len(heuristics)))
            for policy in policies:
                retargeted = deployed[policy.name].retarget(
                    scenario, on_mismatch=config.on_mismatch
                )
                compat[policy.name][scenario.name] = retargeted.compat
                sched_idx.append(len(schedulers))
                schedulers.append(retargeted)
            cells.append((
                sampler.sample_many(n_sequences),
                scenario.cluster,
                protocol.backfill,
                metric,
            ))
            cell_schedulers.append(sched_idx)
        _say(progress,
             f"evaluating {len(names)} schedulers x {len(scenarios)} "
             f"scenarios on the {config.runtime.backend} backend")

        def _heartbeat(ci: int, seconds: float) -> None:
            """Per-cell progress: _say line + sink heartbeat event."""
            name = scenarios[ci].name
            _say(progress,
                 f"cell {name}: evaluated in {seconds:.2f}s "
                 f"({ci + 1}/{len(scenarios)})")
            if sink is not None:
                sink.write_event(
                    "heartbeat", cell=name, seconds=seconds,
                    index=ci, total=len(scenarios),
                )

        from repro.api import _run_cells  # local: repro.api re-exports us

        # Cell-by-cell dispatch only when someone is listening — the
        # single-map path and the heartbeat path are bit-identical.
        wants_heartbeat = progress is not None or sink is not None
        values = _run_cells(
            schedulers, cells, config.runtime, cell_schedulers,
            heartbeat=_heartbeat if wants_heartbeat else None,
        )
    results = {
        scenario.name: {
            name: {
                "mean": float(np.mean(vals)),
                "std": float(np.std(vals)),
                "n": int(vals.size),
                "values": [float(v) for v in vals],
            }
            for name, vals in zip(names, values[ci])
        }
        for ci, scenario in enumerate(scenarios)
    }

    return {
        "schema": ARTIFACT_SCHEMA,
        "config": dataclasses.asdict(config),
        "scenarios": {s.name: s.to_dict() for s in scenarios},
        "policies": {
            p.name: {
                "trained_on": p.scenario,
                "checkpoint": p.checkpoint,
                "from_checkpoint": p.from_checkpoint,
                "metric": p.result.metric,
                "policy_preset": p.result.policy_preset,
                "n_procs": p.result.n_procs,
                "best_epoch": p.result.best_epoch,
                # the checkpoint's own training provenance — for restored
                # policies this reflects how they were actually trained,
                # not the current run's config
                "train_meta": p.result.train_meta,
                "env_config": dataclasses.asdict(p.result.env_config),
                "compat": compat[p.name],
                "curve": _curve_dict(p.result),
            }
            for p in policies
        },
        "results": results,
    }
