"""Cross-scenario generalization study (paper Table VII)."""

from .core import (
    ARTIFACT_SCHEMA,
    StudyPolicy,
    generalization_matrix,
    train_matrix,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "StudyPolicy",
    "train_matrix",
    "generalization_matrix",
]
