"""Scheduler interface.

A scheduler is a *priority function* (paper §I): given a waiting job, the
current time, and the cluster state, it returns a score — the **lowest**
score is scheduled first (Table III convention; FCFS scores by submit
time).  :meth:`Scheduler.select` is the generic argmin with deterministic
job-id tie-breaking; RL policies override it to run the policy network on
the whole queue at once.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.sim.cluster import Cluster
from repro.workloads.job import Job

__all__ = ["Scheduler"]


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    #: human-readable name used in benchmark tables
    name: str = "scheduler"

    @abc.abstractmethod
    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        """Priority value of ``job``; lower is scheduled first."""

    def select(self, pending: Sequence[Job], now: float, cluster: Cluster) -> Job:
        """Pick the next job from the waiting queue."""
        if not pending:
            raise ValueError("cannot select from an empty queue")
        return min(pending, key=lambda j: (self.score(j, now, cluster), j.job_id))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
