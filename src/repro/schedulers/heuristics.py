"""Heuristic priority-function schedulers — Table III of the paper, exactly:

==========  ===========================================================
FCFS        ``score(t) = s_t``
SJF         ``score(t) = r_t``
WFP3        ``score(t) = -(w_t / r_t)^3 * n_t``
UNICEP      ``score(t) = -w_t / (log2(n_t) * r_t)``
F1          ``score(t) = log10(r_t) * n_t + 870 * log10(s_t)``
==========  ===========================================================

where ``s_t`` is submit time, ``r_t`` requested runtime, ``n_t`` requested
processors, and ``w_t = now - s_t`` the elapsed waiting time.  The engine
selects the job with the **minimum** score.

Numerical guards (the formulas are singular at the boundaries of real
traces): ``log2(n_t)`` uses ``max(n_t, 2)`` so serial jobs don't divide by
zero, and ``log10(s_t)`` uses ``max(s_t, 1)`` because sampled sequences are
re-based to start at t = 0.  Both guards only affect jobs at the singular
points and keep the orderings the published formulas imply.

``LJF`` and ``SmallestFirst`` are included for ablations (§II-A3 mentions
Smallest Job First as a classic utilization-oriented policy).
``FirstFit`` is the resource-aware ablation: FCFS restricted to jobs whose
full resource vector (processors *and*, on memory-constrained scenario
clusters, memory) fits the free capacity right now — it exercises
:meth:`repro.sim.cluster.Cluster.can_allocate` and therefore reacts to
memory pressure the Table III formulas cannot see.
"""

from __future__ import annotations

import math

from repro.sim.cluster import Cluster
from repro.workloads.job import Job

from .base import Scheduler

__all__ = [
    "FCFS",
    "SJF",
    "LJF",
    "SmallestFirst",
    "FirstFit",
    "WFP3",
    "UNICEP",
    "F1",
    "HEURISTICS",
    "ALL_HEURISTICS",
    "make_scheduler",
]


class FCFS(Scheduler):
    """First Come First Served."""

    name = "FCFS"

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        return job.submit_time


class SJF(Scheduler):
    """Shortest Job First (by requested runtime — actual is invisible)."""

    name = "SJF"

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        return job.requested_time


class LJF(Scheduler):
    """Longest Job First (ablation baseline)."""

    name = "LJF"

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        return -job.requested_time


class SmallestFirst(Scheduler):
    """Smallest Job First — classic utilization-oriented policy (§II-A3)."""

    name = "Smallest"

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        return job.requested_procs


class FirstFit(Scheduler):
    """FCFS over the jobs whose resource vector fits *right now*.

    Jobs that cannot start immediately (procs or — on memory-constrained
    clusters — memory) are deprioritised by a constant offset larger than
    any submit time, so the engine only commits to a blocked job when
    nothing runnable is waiting.  The resource check is the cluster's own
    :meth:`~repro.sim.cluster.Cluster.can_allocate`, which keeps this
    heuristic automatically consistent with whatever resources the
    cluster models.
    """

    name = "FirstFit"

    #: larger than any realistic submit timestamp (~3000 CE in seconds)
    _BLOCKED_OFFSET = 2.0**40

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        blocked = 0.0 if cluster.can_allocate(job) else self._BLOCKED_OFFSET
        return job.submit_time + blocked


class WFP3(Scheduler):
    """WFP3 (Tang et al. [3]): favours long-waiting, short, narrow jobs."""

    name = "WFP3"

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        wait = max(now - job.submit_time, 0.0)
        r = max(job.requested_time, 1.0)
        return -((wait / r) ** 3) * job.requested_procs


class UNICEP(Scheduler):
    """UNICEP (Tang et al. [3]) — `UNICEF` in some texts."""

    name = "UNICEP"

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        wait = max(now - job.submit_time, 0.0)
        r = max(job.requested_time, 1.0)
        denom = math.log2(max(job.requested_procs, 2)) * r
        return -wait / denom


class F1(Scheduler):
    """F1 from Carastan-Santos & de Camargo [4] — the state-of-the-art
    regression-fit policy for minimising average bounded slowdown."""

    name = "F1"

    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        r = max(job.requested_time, 1.0)
        s = max(job.submit_time, 1.0)
        return math.log10(r) * job.requested_procs + 870.0 * math.log10(s)


#: Registry of the paper's five baselines, in Table III order.
HEURISTICS: dict[str, type[Scheduler]] = {
    "FCFS": FCFS,
    "SJF": SJF,
    "WFP3": WFP3,
    "UNICEP": UNICEP,
    "F1": F1,
}

#: Everything instantiable by name: Table III plus the ablation policies.
ALL_HEURISTICS: dict[str, type[Scheduler]] = {
    **HEURISTICS,
    "LJF": LJF,
    "Smallest": SmallestFirst,
    "FirstFit": FirstFit,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a heuristic scheduler by name (Table III + ablations)."""
    try:
        return ALL_HEURISTICS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {sorted(ALL_HEURISTICS)}"
        ) from None
