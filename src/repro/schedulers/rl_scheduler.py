"""Deploying a trained policy network as a drop-in Scheduler.

At test time the paper's agent "is directly used to select job with the
highest probability to ensure the best decision. There is no exploration
anymore" — so :class:`RLSchedulerPolicy` runs the policy network greedily
over the same observation the training environment produced and returns
the argmax job.

Models persist as a single ``.npz``: the network weights plus the metadata
needed to rebuild the network (preset name, observation shape), so
``RLSchedulerPolicy.load(path)`` round-trips without external config.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.config import EnvConfig
from repro.nn import Module, make_policy, masked_log_softmax, no_grad
from repro.sim.cluster import Cluster
from repro.sim.env import build_observation
from repro.workloads.job import Job

from .base import Scheduler

__all__ = ["RLSchedulerPolicy"]


class RLSchedulerPolicy(Scheduler):
    """A trained policy network acting as a scheduler."""

    name = "RL"

    def __init__(
        self,
        policy: Module,
        n_procs: int,
        env_config: EnvConfig | None = None,
        preset: str = "kernel",
        name: str | None = None,
    ):
        if n_procs <= 0:
            raise ValueError("n_procs must be positive")
        self.policy = policy
        self.n_procs = n_procs
        self.env_config = env_config or EnvConfig()
        self.preset = preset
        if name is not None:
            self.name = name

    # ------------------------------------------------------------------
    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        raise RuntimeError(
            "RL policies score the whole queue jointly; use select()"
        )

    def select(self, pending: Sequence[Job], now: float, cluster: Cluster) -> Job:
        if not pending:
            raise ValueError("cannot select from an empty queue")
        obs, mask, visible = build_observation(
            pending, now, cluster.free_procs, self.n_procs, self.env_config
        )
        with no_grad():
            logits = self.policy(obs[None], mask[None])
            log_probs = masked_log_softmax(logits, mask[None]).numpy()[0]
        return visible[int(np.argmax(log_probs))]

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        meta = {
            "preset": self.preset,
            "n_procs": self.n_procs,
            "max_obsv_size": self.env_config.max_obsv_size,
            "job_features": self.env_config.job_features,
            "name": self.name,
        }
        state = self.policy.state_dict()
        state["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **state)

    @classmethod
    def load(cls, path: str | Path) -> "RLSchedulerPolicy":
        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"]).decode())
            weights = {k: data[k] for k in data.files if k != "__meta__"}
        policy = make_policy(
            meta["preset"], meta["max_obsv_size"], meta["job_features"]
        )
        policy.load_state_dict(weights)
        env_config = EnvConfig(
            max_obsv_size=meta["max_obsv_size"], job_features=meta["job_features"]
        )
        return cls(
            policy,
            n_procs=meta["n_procs"],
            env_config=env_config,
            preset=meta["preset"],
            name=meta.get("name"),
        )
