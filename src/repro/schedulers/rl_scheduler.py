"""Deploying a trained policy network as a drop-in Scheduler.

At test time the paper's agent "is directly used to select job with the
highest probability to ensure the best decision. There is no exploration
anymore" — so :class:`RLSchedulerPolicy` runs the policy network greedily
over the same observation the training environment produced and returns
the argmax job.

Hot path
--------
``select`` is called once per scheduling decision, potentially millions of
times over an evaluation campaign.  Two optimisations keep it cheap while
staying argmax-equivalent to the reference dense forward (pinned by golden
tests):

* static per-job feature columns are computed once per job into a
  persistent :class:`DeployFeatureCache` that grows as jobs arrive and
  validates (and, on trace changes, rebuilds) itself — correctness never
  depends on cache freshness;
* policies that score jobs independently (``score_rows``, e.g. the
  kernel policy) skip the padded ``(1, M, F)`` batch entirely: only the
  ``k`` visible rows go through the network, and the argmax is taken over
  raw scores (log-softmax is monotone, so the winner is identical).

Models persist as a single ``.npz``: the network weights plus the metadata
needed to rebuild the network (preset name, observation shape), so
``RLSchedulerPolicy.load(path)`` round-trips without external config.
Pickling round-trips the same way (weights + metadata, cache dropped), so
policies broadcast cleanly to :mod:`repro.runtime` process workers.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.config import EnvConfig, FeatureLayoutError
from repro.nn import Module, make_policy, masked_log_softmax, no_grad
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.env import (
    FeatureCache,
    build_observation,
    fill_dynamic_features,
    stable_user_hash,
)
from repro.workloads.job import Job

from .base import Scheduler

__all__ = ["RLSchedulerPolicy", "DeployFeatureCache", "FeatureLayoutError"]


class DeployFeatureCache:
    """Growable static-feature cache for deployment-time observations.

    Training's per-episode :class:`FeatureCache` knows the whole job
    population at ``reset()``; a deployed scheduler discovers jobs as they
    arrive.  This cache appends static rows on first sight (computed by
    ``FeatureCache`` itself, so the maths — hence the bits — are
    identical) with doubling capacity, and self-heals: every lookup
    validates all feature-bearing attributes of the visible jobs (submit
    time, processor/runtime/memory requests, user hash) against the
    cached rows, and any mismatch (job ids reused across traces) clears
    and rebuilds from the current queue.  Lookups are therefore always
    correct; the cache only decides how much work they cost.
    """

    def __init__(
        self, n_procs: int, config: EnvConfig, total_mem: float = math.inf
    ):
        self.n_procs = n_procs
        self.config = config
        self.total_mem = total_mem
        self.clear()

    def clear(self) -> None:
        f = self.config.job_features
        self.index: dict = {}
        self.size = 0
        self.static = np.zeros((0, f), dtype=np.float64)
        self.submit = np.zeros(0, dtype=np.float64)
        self.procs = np.zeros(0, dtype=np.float64)
        self.reqtime = np.zeros(0, dtype=np.float64)
        self.uhash = np.zeros(0, dtype=np.float64)
        self.reqmem = np.zeros(0, dtype=np.float64)

    def _grow(self, extra: int) -> None:
        need = self.size + extra
        cap = len(self.submit)
        if need <= cap:
            return
        new_cap = max(64, 1 << (need - 1).bit_length())
        f = self.config.job_features
        static = np.zeros((new_cap, f), dtype=np.float64)
        static[: self.size] = self.static[: self.size]
        self.static = static
        for attr in ("submit", "procs", "reqtime", "uhash", "reqmem"):
            col = np.zeros(new_cap, dtype=np.float64)
            col[: self.size] = getattr(self, attr)[: self.size]
            setattr(self, attr, col)

    def _add(self, jobs: Sequence[Job]) -> None:
        fresh = FeatureCache(
            jobs, self.n_procs, self.config, total_mem=self.total_mem
        )
        self._grow(len(jobs))
        lo, hi = self.size, self.size + len(jobs)
        self.static[lo:hi] = fresh.static
        self.submit[lo:hi] = fresh.submit
        self.procs[lo:hi] = fresh.procs
        self.reqtime[lo:hi] = [j.requested_time for j in jobs]
        self.uhash[lo:hi] = fresh.user_hash
        self.reqmem[lo:hi] = [j.requested_mem for j in jobs]
        for i, j in enumerate(jobs):
            self.index[j.job_id] = lo + i
        self.size = hi

    def _identity(self, jobs: Sequence[Job]) -> tuple[np.ndarray, ...]:
        n = len(jobs)
        return (
            np.fromiter((j.submit_time for j in jobs), np.float64, count=n),
            np.fromiter((j.requested_procs for j in jobs), np.float64, count=n),
            np.fromiter((j.requested_time for j in jobs), np.float64, count=n),
            np.fromiter(
                (stable_user_hash(j.user_id) for j in jobs), np.float64, count=n
            ),
            np.fromiter((j.requested_mem for j in jobs), np.float64, count=n),
        )

    def rows(self, jobs: Sequence[Job]) -> np.ndarray:
        """Validated cache row per job, adding unseen jobs on the way.

        Validation covers every feature-bearing attribute (submit time,
        processor and runtime requests, user hash), so a cache hit can
        never serve a row that differs from a fresh computation.
        """
        new = [j for j in jobs if j.job_id not in self.index]
        if new:
            self._add(new)
        index = self.index
        rows = np.fromiter(
            (index[j.job_id] for j in jobs), dtype=np.intp, count=len(jobs)
        )
        submit, procs, reqtime, uhash, reqmem = self._identity(jobs)
        if (
            np.array_equal(self.submit[rows], submit)
            and np.array_equal(self.procs[rows], procs)
            and np.array_equal(self.reqtime[rows], reqtime)
            and np.array_equal(self.uhash[rows], uhash)
            and np.array_equal(self.reqmem[rows], reqmem)
        ):
            return rows
        # Stale identity (a different trace reused these job ids): rebuild
        # from this queue alone.  The fresh batch occupies rows 0..k-1 in
        # queue order, which stays correct even if the queue itself holds
        # conflicting duplicate ids (the index may then be ambiguous, but
        # these positional rows are not — and the next call revalidates).
        self.clear()
        self._add(list(jobs))
        return np.arange(len(jobs), dtype=np.intp)

    def evict(self, job_ids) -> int:
        """Drop cached rows for departed jobs; returns the count evicted.

        The batch path never needs this — an episode's cache dies with the
        episode — but a long-lived serving daemon sees an unbounded job
        stream, and without eviction the cache grows forever.  Surviving
        rows are compacted to the front and capacity shrinks back to the
        doubling schedule, so held memory tracks the *live* job set.
        """
        drop = [self.index[jid] for jid in job_ids if jid in self.index]
        if not drop:
            return 0
        keep_mask = np.ones(self.size, dtype=bool)
        keep_mask[drop] = False
        keep_rows = np.nonzero(keep_mask)[0]
        new_size = len(keep_rows)
        new_cap = max(64, 1 << (new_size - 1).bit_length()) if new_size else 64
        f = self.config.job_features
        static = np.zeros((new_cap, f), dtype=np.float64)
        static[:new_size] = self.static[keep_rows]
        self.static = static
        for attr in ("submit", "procs", "reqtime", "uhash", "reqmem"):
            col = np.zeros(new_cap, dtype=np.float64)
            col[:new_size] = getattr(self, attr)[keep_rows]
            setattr(self, attr, col)
        remap = np.full(self.size, -1, dtype=np.intp)
        remap[keep_rows] = np.arange(new_size)
        self.index = {
            jid: int(remap[row])
            for jid, row in self.index.items()
            if keep_mask[row]
        }
        self.size = new_size
        return len(drop)


class RLSchedulerPolicy(Scheduler):
    """A trained policy network acting as a scheduler."""

    name = "RL"

    #: how this policy's feature layout relates to the setting it was last
    #: :meth:`retarget`ed at — "native" until a retarget says otherwise
    #: (see :meth:`repro.config.EnvConfig.feature_compat`)
    compat = "native"

    def __init__(
        self,
        policy: Module,
        n_procs: int,
        env_config: EnvConfig | None = None,
        preset: str = "kernel",
        name: str | None = None,
    ):
        self.policy = policy
        self.env_config = env_config or EnvConfig()
        self.preset = preset
        # A policy network whose input width disagrees with the feature
        # layout it is asked to observe through would only fail at the
        # first forward, deep inside a simulation (possibly in a runtime
        # worker) — check here instead.
        policy_features = getattr(policy, "job_features", None)
        if (policy_features is not None
                and policy_features != self.env_config.job_features):
            raise FeatureLayoutError(
                f"policy network expects {policy_features} features per job "
                f"but env_config.job_features is "
                f"{self.env_config.job_features}; rebuild the network for "
                "this layout or pass the EnvConfig it was trained with"
            )
        policy_slots = getattr(policy, "max_obsv_size", None)
        if (policy_slots is not None
                and policy_slots != self.env_config.max_obsv_size):
            raise FeatureLayoutError(
                f"policy network expects {policy_slots} observable job "
                f"slots but env_config.max_obsv_size is "
                f"{self.env_config.max_obsv_size}"
            )
        self._cache: DeployFeatureCache | None = None
        self.n_procs = n_procs  # checked property; also resets the cache
        if name is not None:
            self.name = name

    # ------------------------------------------------------------------
    def retarget(
        self,
        target,
        on_mismatch: str = "adapt",
        name: str | None = None,
    ) -> "RLSchedulerPolicy":
        """A copy of this policy aimed at another scenario or cluster.

        ``target`` is a registered scenario name, a
        :class:`repro.scenarios.Scenario`, a
        :class:`~repro.sim.cluster.ClusterSpec`, or a bare processor
        count.  The copy's ``n_procs`` is set through the checked setter
        (a bogus cluster size fails here, not mid-run) and its ``compat``
        attribute records how this policy's feature layout relates to the
        target's native one (``"native"`` / ``"memory-blind"`` /
        ``"memory-neutral"`` — see
        :meth:`repro.config.EnvConfig.feature_compat`).  The policy keeps
        observing through its *own* trained layout either way; with
        ``on_mismatch="fail"`` a non-native combination raises
        :class:`~repro.config.FeatureLayoutError` instead of adapting.

        ``self`` is never mutated — the zoo copy a study holds stays
        aimed at its training cluster.
        """
        if on_mismatch not in ("adapt", "fail"):
            raise ValueError(
                f"on_mismatch must be 'adapt' or 'fail', got {on_mismatch!r}"
            )
        from repro.scenarios import Scenario, get_scenario  # local: no cycle

        target_label = None
        if isinstance(target, (str, Scenario)):
            scenario = get_scenario(target)
            cluster = scenario.cluster
            target_env = scenario.env_config()
            target_label = f"scenario {scenario.name!r}"
        else:
            cluster = ClusterSpec.coerce(target)
            memory = cluster.memory is not None
            target_env = EnvConfig(
                job_features=max(self.env_config.job_features, 9) if memory
                else self.env_config.job_features,
                memory_features=memory,
            )
            target_label = f"cluster {cluster.n_procs}p"
        compat = self.env_config.feature_compat(target_env)
        if compat != "native" and on_mismatch == "fail":
            raise FeatureLayoutError(
                f"{self.name} was trained "
                f"{'without' if compat == 'memory-blind' else 'with'} memory "
                f"features but {target_label} is "
                f"{'memory-constrained' if compat == 'memory-blind' else 'unconstrained'} "
                f"({compat}); pass on_mismatch='adapt' to deploy anyway"
            )
        clone = RLSchedulerPolicy.__new__(RLSchedulerPolicy)
        clone.__setstate__(self.__getstate__())
        clone.n_procs = cluster.n_procs  # checked setter, rebinds the cache
        clone.compat = compat
        if name is not None:
            clone.name = name
        return clone

    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        """Target cluster size; assignment validates and rebinds the
        feature cache (processor fractions depend on it)."""
        return self._n_procs

    @n_procs.setter
    def n_procs(self, value) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise TypeError(
                f"n_procs must be an integer cluster size, got {value!r}"
            )
        if value <= 0:
            raise ValueError(f"n_procs must be positive, got {value}")
        self._n_procs = int(value)
        self._cache = None

    # ------------------------------------------------------------------
    def forget_jobs(self, job_ids) -> int:
        """Evict departed jobs from the deploy feature cache.

        Serving daemons call this as jobs complete so the cache stays
        bounded by the live queue; returns how many rows were dropped.
        """
        if self._cache is None:
            return 0
        return self._cache.evict(job_ids)

    # ------------------------------------------------------------------
    def score(self, job: Job, now: float, cluster: Cluster) -> float:
        raise RuntimeError(
            "RL policies score the whole queue jointly; use select()"
        )

    def select(self, pending: Sequence[Job], now: float, cluster: Cluster) -> Job:
        if not pending:
            raise ValueError("cannot select from an empty queue")
        visible = sorted(pending, key=lambda j: (j.submit_time, j.job_id))
        visible = visible[: self.env_config.max_obsv_size]
        total_mem = getattr(cluster, "total_mem", math.inf)
        if self._cache is None or self._cache.total_mem != total_mem:
            # total_mem comparison: inf != inf is False, so unconstrained
            # clusters never trigger a rebuild; a retarget to a different
            # memory capacity rescales the static demand column.
            self._cache = DeployFeatureCache(
                self.n_procs, self.env_config, total_mem=total_mem
            )
        rows = self._cache.rows(visible)

        score_rows = getattr(self.policy, "score_rows", None)
        if score_rows is None:
            return self._select_dense(visible, rows, now, cluster)

        # Sparse path: assemble only the k visible rows and score them
        # directly.  The float32 round-trip matches the dense observation
        # build, and log-softmax is monotone, so the argmax is the dense
        # path's argmax (ties break on the first index either way).
        cache = self._cache
        feats = fill_dynamic_features(
            cache.static[rows], cache.submit[rows], cache.procs[rows],
            now, cluster.free_procs, self.n_procs, self.env_config,
            free_mem=getattr(cluster, "free_mem", math.inf),
            total_mem=total_mem,
        )
        with no_grad():
            scores = score_rows(feats.astype(np.float32))
        return visible[int(np.argmax(scores))]

    def _select_dense(
        self, visible: list[Job], rows: np.ndarray, now: float, cluster: Cluster
    ) -> Job:
        """Reference path for policies without independent row scoring."""
        obs, mask, visible = build_observation(
            visible,
            now,
            cluster.free_procs,
            self.n_procs,
            self.env_config,
            cache=self._cache,
            assume_sorted=True,
            rows=rows,
            free_mem=getattr(cluster, "free_mem", math.inf),
            total_mem=getattr(cluster, "total_mem", math.inf),
        )
        with no_grad():
            logits = self.policy(obs[None], mask[None])
            log_probs = masked_log_softmax(logits, mask[None]).numpy()[0]
        return visible[int(np.argmax(log_probs))]

    # ------------------------------------------------------------------
    def _meta(self) -> dict:
        return {
            "preset": self.preset,
            "n_procs": self.n_procs,
            # The complete EnvConfig: every field shapes the features the
            # policy sees, so a partial record would rebuild a scheduler
            # that makes different decisions (e.g. a non-default
            # wait_scale) after save/load or a worker broadcast.
            "env_config": dataclasses.asdict(self.env_config),
            # legacy keys, kept so older readers of the .npz still work
            "max_obsv_size": self.env_config.max_obsv_size,
            "job_features": self.env_config.job_features,
            "name": self.name,
        }

    @classmethod
    def _from_meta_and_weights(
        cls, meta: dict, weights: dict
    ) -> "RLSchedulerPolicy":
        if "env_config" in meta:
            env_config = EnvConfig(**meta["env_config"])
        else:  # pre-PR-2 model file: only the observation shape was stored
            env_config = EnvConfig(
                max_obsv_size=meta["max_obsv_size"],
                job_features=meta["job_features"],
            )
        policy = make_policy(
            meta["preset"], env_config.max_obsv_size, env_config.job_features
        )
        policy.load_state_dict(weights)
        return cls(
            policy,
            n_procs=meta["n_procs"],
            env_config=env_config,
            preset=meta["preset"],
            name=meta.get("name"),
        )

    def save(self, path: str | Path) -> None:
        state = self.policy.state_dict()
        state["__meta__"] = np.frombuffer(
            json.dumps(self._meta()).encode(), dtype=np.uint8
        )
        np.savez(path, **state)

    @classmethod
    def load(cls, path: str | Path) -> "RLSchedulerPolicy":
        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"]).decode())
            weights = {k: data[k] for k in data.files if k != "__meta__"}
        return cls._from_meta_and_weights(meta, weights)

    # -- pickling: ship weights + metadata, rebuild the network ----------
    def __getstate__(self) -> dict:
        return {
            "meta": self._meta(),
            "weights": {
                k: np.asarray(v).copy()
                for k, v in self.policy.state_dict().items()
            },
        }

    def __setstate__(self, state: dict) -> None:
        rebuilt = self._from_meta_and_weights(state["meta"], state["weights"])
        self.__dict__.update(rebuilt.__dict__)
