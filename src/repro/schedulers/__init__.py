"""Scheduling policies: Table III heuristics plus the RL policy wrapper."""

from .base import Scheduler
from .heuristics import (
    ALL_HEURISTICS,
    F1,
    FCFS,
    HEURISTICS,
    LJF,
    SJF,
    UNICEP,
    WFP3,
    FirstFit,
    SmallestFirst,
    make_scheduler,
)
from .rl_scheduler import FeatureLayoutError, RLSchedulerPolicy

__all__ = [
    "Scheduler",
    "FCFS",
    "SJF",
    "LJF",
    "SmallestFirst",
    "FirstFit",
    "WFP3",
    "UNICEP",
    "F1",
    "HEURISTICS",
    "ALL_HEURISTICS",
    "make_scheduler",
    "RLSchedulerPolicy",
    "FeatureLayoutError",
]
