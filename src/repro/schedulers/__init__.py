"""Scheduling policies: Table III heuristics plus the RL policy wrapper."""

from .base import Scheduler
from .heuristics import (
    F1,
    FCFS,
    HEURISTICS,
    LJF,
    SJF,
    UNICEP,
    WFP3,
    SmallestFirst,
    make_scheduler,
)
from .rl_scheduler import RLSchedulerPolicy

__all__ = [
    "Scheduler",
    "FCFS",
    "SJF",
    "LJF",
    "SmallestFirst",
    "WFP3",
    "UNICEP",
    "F1",
    "HEURISTICS",
    "make_scheduler",
    "RLSchedulerPolicy",
]
