"""Calibrated synthetic stand-ins for the Parallel Workloads Archive traces.

The paper evaluates on four real traces from the archive [17]:

=============  =====  ========  ========  ======
trace          size   it (s)    rt (s)    nt
=============  =====  ========  ========  ======
SDSC-SP2       128    1055      6687      11
HPC2N          240    538       17024     6
PIK-IPLEX      2560   140       30889     12
ANL-Intrepid   163840 301       5176      5063
=============  =====  ========  ========  ======

The archive is not available offline, so this module builds *calibrated
generators*: each named trace is synthesised to match the Table II moments
(cluster size, mean inter-arrival ``it``, mean runtime ``rt``, mean
requested processors ``nt``) plus the second-order properties the paper's
evaluation depends on:

* **PIK-IPLEX** burstiness — arrivals follow a two-state Markov-modulated
  process with a rare, intense burst regime, reproducing Fig. 3's bounded-
  slowdown spikes (calm most of the time, catastrophic congestion windows).
* **HPC2N user imbalance** — one dominant user submits a large share of all
  jobs (the paper's ``u17`` observation), which drives the Table VIII
  fairness result that RL's advantage is smaller on HPC2N.
* Heavy-tailed runtimes (lognormal with per-trace dispersion) and
  power-of-two-aligned job sizes, as archive traces exhibit.

If a real ``.swf`` file is available, :func:`load_trace` reads it instead —
the generators exist only to fill the data gap and are interchangeable with
the real files at the API level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .job import Job
from .lublin import LUBLIN_1, LUBLIN_2, calibrate_mean, generate_lublin_trace
from .swf import SWFHeader, SWFTrace, read_swf

__all__ = [
    "ArchiveTraceSpec",
    "TRACE_SPECS",
    "generate_archive_trace",
    "load_trace",
    "available_traces",
]


@dataclass(frozen=True)
class ArchiveTraceSpec:
    """Calibration targets + shape knobs for one archive trace."""

    name: str
    n_procs: int
    mean_interarrival: float      # Table II `it`
    mean_runtime: float           # Table II `rt`
    mean_procs: float             # Table II `nt`
    runtime_sigma: float = 1.6    # lognormal dispersion of runtimes
    burst_factor: float = 6.0     # burst arrival rate / calm arrival rate
    burst_fraction: float = 0.08  # stationary fraction of time in burst state
    burst_mean_length: int = 40   # mean jobs per burst episode
    n_users: int = 200
    user_skew: float = 1.1        # Zipf exponent over user activity
    heavy_user_share: float = 0.0  # extra share of jobs from user 17
    max_runtime: float = 5 * 86_400.0
    max_job_fraction: float = 1.0  # largest request as fraction of cluster
    # Burst-correlated job shape: real congestion episodes are batch
    # submissions of wide/long jobs, not just rapid arrivals of average
    # ones.  Burst jobs get size/runtime multiplied by these factors; the
    # Table II means stay calibrated because the calm-job targets shrink
    # correspondingly (sizes) and runtimes are re-calibrated globally.
    burst_size_factor: float = 1.0
    burst_runtime_factor: float = 1.0
    # Fraction of jobs that crash early: tiny actual runtime but the
    # original (large) requested time.  Real archive traces carry 10-20%
    # of these; they are the jobs whose bounded slowdown explodes when a
    # congestion episode starves them behind their own over-estimate —
    # the mechanism behind Fig. 3's 80K spikes.
    failure_rate: float = 0.10
    failure_max_runtime: float = 600.0

    def __post_init__(self) -> None:
        if self.mean_procs >= self.n_procs:
            raise ValueError(f"{self.name}: mean_procs must be < cluster size")
        if not 0.0 <= self.heavy_user_share < 1.0:
            raise ValueError(f"{self.name}: heavy_user_share must be in [0,1)")
        if self.burst_factor < 1.0:
            raise ValueError(f"{self.name}: burst_factor must be >= 1")


#: Calibrations for the four archive traces of Table II.
TRACE_SPECS: dict[str, ArchiveTraceSpec] = {
    "SDSC-SP2": ArchiveTraceSpec(
        name="SDSC-SP2",
        n_procs=128,
        mean_interarrival=1055.0,
        mean_runtime=6687.0,
        mean_procs=11.0,
        runtime_sigma=1.9,
        burst_factor=4.0,
        burst_fraction=0.08,
        burst_mean_length=30,
        n_users=150,
    ),
    "HPC2N": ArchiveTraceSpec(
        name="HPC2N",
        n_procs=240,
        mean_interarrival=538.0,
        mean_runtime=17024.0,
        mean_procs=6.0,
        runtime_sigma=2.1,
        burst_factor=8.0,        # frequent mild bursts: persistent moderate
        burst_fraction=0.35,     # congestion rather than rare catastrophes
        burst_mean_length=80,
        failure_rate=0.12,
        n_users=60,
        heavy_user_share=0.5,  # the paper's u17: ~40K of ~42K·(700/job avg)
    ),
    "PIK-IPLEX": ArchiveTraceSpec(
        name="PIK-IPLEX",
        n_procs=2560,
        mean_interarrival=140.0,
        mean_runtime=30889.0,
        mean_procs=12.0,
        runtime_sigma=2.4,
        burst_factor=600.0,  # near-simultaneous submissions inside bursts
        burst_fraction=0.05,       # bursts are *rare* (Fig. 3: short red range)
        burst_mean_length=400,     # ... but long: sustained saturation episodes
        burst_size_factor=95.0,    # sweeps of ~200-proc jobs: ~12x capacity
        burst_runtime_factor=5.0,  # ... that also run long
        failure_rate=0.15,
        n_users=120,
    ),
    "ANL-Intrepid": ArchiveTraceSpec(
        name="ANL-Intrepid",
        n_procs=163_840,
        mean_interarrival=301.0,
        mean_runtime=5176.0,
        mean_procs=5063.0,
        runtime_sigma=1.3,
        burst_factor=4.0,
        burst_fraction=0.10,
        n_users=100,
        max_job_fraction=0.25,  # Intrepid partition limits
    ),
}


def _solve_pow2_geometric(target_mean: float, max_k: int) -> np.ndarray:
    """Probabilities over sizes {2^0 .. 2^max_k} of a truncated geometric
    P(2^k) ∝ q^k, with q chosen by bisection so E[size] = target_mean."""
    ks = np.arange(max_k + 1)
    sizes = 2.0 ** ks

    def mean_for(q: float) -> float:
        w = q ** ks
        w /= w.sum()
        return float((w * sizes).sum())

    lo, hi = 1e-6, 1.0
    if target_mean <= mean_for(lo):
        q = lo
    elif target_mean >= mean_for(hi):
        q = hi
    else:
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if mean_for(mid) < target_mean:
                lo = mid
            else:
                hi = mid
        q = 0.5 * (lo + hi)
    w = q ** ks
    return w / w.sum()


def _sample_sizes(
    spec: ArchiveTraceSpec,
    n: int,
    rng: np.random.Generator,
    target_mean: float | None = None,
) -> np.ndarray:
    max_size = max(1, int(spec.n_procs * spec.max_job_fraction))
    max_k = int(math.floor(math.log2(max_size)))
    probs = _solve_pow2_geometric(target_mean or spec.mean_procs, max_k)
    ks = rng.choice(max_k + 1, size=n, p=probs)
    sizes = (2.0 ** ks).astype(np.int64)
    # ~30% of jobs are not exact powers of two in real traces: jitter down.
    jitter = rng.random(n) < 0.3
    factor = rng.uniform(0.6, 1.0, size=n)
    sizes = np.where(jitter, np.maximum(1, (sizes * factor).astype(np.int64)), sizes)
    return np.clip(sizes, 1, max_size)


def _sample_runtimes(spec: ArchiveTraceSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    sigma = spec.runtime_sigma
    mu = math.log(spec.mean_runtime) - 0.5 * sigma * sigma
    runtimes = rng.lognormal(mean=mu, sigma=sigma, size=n)
    # The cap truncates the lognormal tail and drags the mean below the
    # Table II target; re-calibrate to the clipped target.
    return calibrate_mean(runtimes, spec.mean_runtime, spec.max_runtime)


def _sample_arrivals(
    spec: ArchiveTraceSpec, n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Two-state Markov-modulated exponential inter-arrivals.

    Solving for the calm-state gap so the *overall* mean matches Table II:
    ``mean = (1-f)·g_calm + f·g_calm/burst_factor``.  Returns the arrival
    times and a boolean per-job burst flag (used to correlate job shape
    with congestion episodes).
    """
    f = spec.burst_fraction
    g_calm = spec.mean_interarrival / ((1.0 - f) + f / spec.burst_factor)
    g_burst = g_calm / spec.burst_factor

    # Deterministic episode plan: one burst of ``burst_mean_length`` jobs
    # every ``burst_mean_length / f`` jobs, with a random phase offset.
    # This pins the realised burst fraction at exactly ``f`` (so the
    # Table II moments stay calibrated trace-to-trace) and guarantees that
    # every paper-scale (10K-job) trace contains its congestion episode —
    # the reproducibility the Fig. 3 / Fig. 7 / Fig. 9 experiments need.
    if f > 0.0 and spec.burst_factor > 1.0:
        period = max(int(round(spec.burst_mean_length / f)), 1)
        offset = int(rng.integers(0, period))
        flags = ((np.arange(n) + offset) % period) < spec.burst_mean_length
    else:
        flags = np.zeros(n, dtype=bool)

    gaps = np.where(
        flags,
        rng.exponential(g_burst, size=n),
        rng.exponential(g_calm, size=n),
    )
    return np.cumsum(gaps), flags


def _sample_users(spec: ArchiveTraceSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    weights = 1.0 / np.arange(1, spec.n_users + 1) ** spec.user_skew
    weights /= weights.sum()
    users = rng.choice(spec.n_users, size=n, p=weights) + 1
    if spec.heavy_user_share > 0.0:
        heavy = rng.random(n) < spec.heavy_user_share
        users = np.where(heavy, 17, users)  # the paper names u17 on HPC2N
    return users


def generate_archive_trace(
    spec: ArchiveTraceSpec | str,
    n_jobs: int = 10_000,
    seed: int | None = 0,
) -> SWFTrace:
    """Generate a synthetic SWF trace calibrated to an archive spec."""
    if isinstance(spec, str):
        try:
            spec = TRACE_SPECS[spec]
        except KeyError:
            raise KeyError(
                f"unknown archive trace {spec!r}; known: {sorted(TRACE_SPECS)}"
            ) from None
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    rng = np.random.default_rng(seed)

    arrivals, burst_flags = _sample_arrivals(spec, n_jobs, rng)
    f_burst = float(burst_flags.mean())
    # Shrink the calm-size target so the overall mean still hits Table II
    # once burst jobs are widened: nt = (1-f)·m_calm + f·m_calm·factor.
    size_target = spec.mean_procs / (
        (1.0 - f_burst) + f_burst * spec.burst_size_factor
    )
    max_size = max(1, int(spec.n_procs * spec.max_job_fraction))
    sizes = _sample_sizes(spec, n_jobs, rng, target_mean=max(size_target, 1.0))
    if spec.burst_size_factor != 1.0:
        widened = np.minimum(sizes * spec.burst_size_factor, max_size)
        sizes = np.where(burst_flags, widened.astype(np.int64), sizes)
    runtimes = _sample_runtimes(spec, n_jobs, rng)
    if spec.burst_runtime_factor != 1.0:
        runtimes = np.where(
            burst_flags, runtimes * spec.burst_runtime_factor, runtimes
        )
    users = _sample_users(spec, n_jobs, rng)
    # Estimates derive from the *intended* runtime, before failures: a job
    # that crashes after 90 seconds still requested its full allocation.
    over = 1.0 + rng.lognormal(0.0, 1.0, size=n_jobs)
    estimates = np.minimum(runtimes * over, spec.max_runtime * 4)
    statuses = np.ones(n_jobs, dtype=np.int64)
    if spec.failure_rate > 0.0:
        failed = rng.random(n_jobs) < spec.failure_rate
        runtimes = np.where(
            failed, rng.uniform(1.0, spec.failure_max_runtime, n_jobs), runtimes
        )
        statuses = np.where(failed, 0, statuses)
    # Re-calibrate so the overall mean runtime still matches Table II
    # after burst widening and failure truncation.
    runtimes = calibrate_mean(runtimes, spec.mean_runtime, spec.max_runtime)
    runtimes = np.minimum(runtimes, estimates)  # keep estimate >= actual

    jobs = [
        Job(
            job_id=i + 1,
            submit_time=float(arrivals[i]),
            run_time=float(runtimes[i]),
            requested_procs=int(sizes[i]),
            requested_time=float(estimates[i]),
            user_id=int(users[i]),
            group_id=int(users[i]) % 16,
            executable_id=int(rng.integers(1, 80)),
            status=int(statuses[i]),
        )
        for i in range(n_jobs)
    ]
    header = SWFHeader(max_procs=spec.n_procs, max_nodes=spec.n_procs)
    return SWFTrace(jobs=jobs, header=header, name=spec.name)


def available_traces() -> list[str]:
    """Names accepted by :func:`load_trace`."""
    return sorted(TRACE_SPECS) + ["Lublin-1", "Lublin-2"]


def load_trace(
    name: str,
    n_jobs: int = 10_000,
    seed: int | None = 0,
    swf_dir: str | Path | None = None,
) -> SWFTrace:
    """Load a named workload.

    Resolution order:

    1. if ``swf_dir`` contains ``<name>.swf``, parse the real file
       (truncated to the first ``n_jobs`` jobs, as the paper does);
    2. ``Lublin-1`` / ``Lublin-2`` → the Lublin model presets;
    3. otherwise → the calibrated archive generator.
    """
    if swf_dir is not None:
        path = Path(swf_dir) / f"{name}.swf"
        if path.exists():
            return read_swf(path).head(n_jobs)
    if name == "Lublin-1":
        return generate_lublin_trace(LUBLIN_1, n_jobs=n_jobs, seed=seed, name=name)
    if name == "Lublin-2":
        return generate_lublin_trace(LUBLIN_2, n_jobs=n_jobs, seed=seed, name=name)
    return generate_archive_trace(name, n_jobs=n_jobs, seed=seed)
