"""Job-sequence sampling, matching the paper's evaluation protocol.

Training uses random *contiguous* windows of 256 jobs from a trace; testing
uses longer windows of 1024 jobs ("we selected much longer job sequences
(1024) for testing than the job sequences (256) used for training").  Across
schedulers the *same* random sequences are reused for fair comparison, which
:class:`SequenceSampler` guarantees via seeding.

Sampled windows are re-based so the first job submits at t=0 — the
simulator always starts from an idle cluster, per the paper's SchedGym.

Seeding follows the repo-wide convention of
:func:`repro.runtime.seeding.stream_rng`: the sampler's stream is derived
from an integer *key path*, so callers may pass either a bare seed
(``SequenceSampler(trace, 256, seed=42)`` — bit-identical to the historic
``default_rng(42)`` stream) or a composed path
(``seed=(scenario_seed, worker, shard)``) that can never collide with
sibling streams.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from .job import Job
from .swf import SWFTrace

__all__ = ["SequenceSampler", "sample_sequence", "rebase_jobs"]


def rebase_jobs(jobs: list[Job]) -> list[Job]:
    """Copy jobs with submit times shifted so the earliest is 0."""
    if not jobs:
        return []
    t0 = min(j.submit_time for j in jobs)
    return [replace(j.copy(), submit_time=j.submit_time - t0) for j in jobs]


def sample_sequence(
    trace: SWFTrace,
    length: int,
    rng: np.random.Generator,
    start: int | None = None,
) -> list[Job]:
    """One contiguous window of ``length`` jobs, re-based to t=0.

    ``start`` pins the window (used by trajectory-filtering probes and the
    Fig. 3 timeline); otherwise the start index is drawn uniformly.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if length > len(trace):
        raise ValueError(
            f"requested window of {length} jobs from trace of {len(trace)}"
        )
    if start is None:
        start = int(rng.integers(0, len(trace) - length + 1))
    elif not 0 <= start <= len(trace) - length:
        raise ValueError(f"start {start} out of range for window {length}")
    return rebase_jobs(trace.jobs[start : start + length])


class SequenceSampler:
    """Seeded sampler producing reproducible job windows from a trace.

    ``seed`` is an integer or a key path (sequence of integers) in the
    :func:`repro.runtime.seeding.stream_rng` convention; a bare integer
    seed yields the same stream as the historical ``default_rng(seed)``.
    """

    def __init__(self, trace: SWFTrace, length: int, seed: "int | Sequence[int]" = 0):
        self.trace = trace
        self.length = length
        self.seed = seed
        self._rng = self._make_rng()

    def _make_rng(self) -> np.random.Generator:
        # Imported lazily: the workloads package is a dependency of the
        # simulation substrate the runtime package builds on, so a
        # module-level import would be circular.
        from repro.runtime.seeding import stream_rng

        keys = self.seed if isinstance(self.seed, (tuple, list)) else (self.seed,)
        return stream_rng(*keys)

    def sample(self, start: int | None = None) -> list[Job]:
        return sample_sequence(self.trace, self.length, self._rng, start=start)

    def sample_many(self, n: int) -> list[list[Job]]:
        """``n`` independent windows; reseeding gives identical batches."""
        return [self.sample() for _ in range(n)]

    def reset(self) -> None:
        """Rewind the RNG so the exact same windows are produced again."""
        self._rng = self._make_rng()
