"""The Lublin-Feitelson workload model (JPDC 2003).

The paper's two synthetic traces, Lublin-1 and Lublin-2, come from this
model ("a widely used workload model proposed in [18]").  We implement the
model's three components from the published description:

* **Job size** (processor count): a job is serial with probability
  ``serial_prob``; otherwise its log2-size is drawn from a two-stage
  uniform distribution over ``[ulow, umed]`` (with probability ``uprob``)
  or ``[umed, uhi]``, and rounded to a power of two with probability
  ``pow2_prob``.  ``uhi = log2(cluster size)``, ``umed = uhi - 2.5``.
* **Runtime**: a hyper-gamma distribution — a mixture of two gamma
  distributions whose mixing weight depends linearly on the job size
  (``p = pa * nodes + pb``), capturing the correlation between large jobs
  and long runtimes.
* **Arrivals**: gamma inter-arrival times modulated by a daily cycle.  The
  original model weights arrival intensity per time-of-day bucket; we
  implement the cycle as rate-proportional thinning with a smooth daily
  profile peaking in working hours, which preserves the diurnal burstiness
  the model exists to capture.

Requested (estimated) runtimes follow the common archive observation that
users over-estimate: the estimate is the runtime multiplied by a random
factor >= 1, clipped to the model's runtime upper bound.

The canonical parameter values below are those of the published model
(lublin99.c).  The two presets ``LUBLIN_1`` / ``LUBLIN_2`` are calibrated
so the generated traces match the Table II characteristics the paper
reports (cluster 256; mean inter-arrival ~771s vs ~460s; mean runtime
~4862s vs ~1695s; mean size ~22 vs ~39 procs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .job import Job
from .swf import SWFHeader, SWFTrace

__all__ = ["LublinParams", "LUBLIN_1", "LUBLIN_2", "generate_lublin_trace"]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class LublinParams:
    """Parameters of the Lublin-Feitelson model."""

    n_procs: int = 256

    # --- job size -------------------------------------------------------
    serial_prob: float = 0.244
    pow2_prob: float = 0.576
    ulow: float = 0.8          # log2 of smallest parallel size
    umed_offset: float = 2.5   # umed = uhi - offset
    uprob: float = 0.86        # P(first uniform stage)

    # --- runtime (hyper-gamma) -------------------------------------------
    runtime_a1: float = 4.2    # gamma shape, short-job component
    runtime_b1: float = 0.94   # gamma scale (of log runtime seconds)
    runtime_a2: float = 312.0  # gamma shape, long-job component
    runtime_b2: float = 0.03
    runtime_pa: float = -0.0054  # mixing weight slope vs job size
    runtime_pb: float = 0.78
    mean_runtime: float | None = None  # rescale sample mean to this (seconds)
    max_runtime: float = 60.0 * 60.0 * 36.0  # 36h cap, matches archive caps

    # --- arrivals ---------------------------------------------------------
    interarrival_shape: float = 2.0   # gamma shape of inter-arrival times
    mean_interarrival: float = 771.0  # target mean inter-arrival (seconds)
    daily_cycle_strength: float = 0.6  # 0 = flat; 1 = full diurnal swing

    def __post_init__(self) -> None:
        if self.n_procs < 2:
            raise ValueError("cluster must have at least 2 processors")
        if not 0.0 <= self.serial_prob <= 1.0:
            raise ValueError("serial_prob must be a probability")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not 0.0 <= self.daily_cycle_strength < 1.0:
            raise ValueError("daily_cycle_strength must be in [0, 1)")

    @property
    def uhi(self) -> float:
        return math.log2(self.n_procs)

    @property
    def umed(self) -> float:
        return max(self.ulow, self.uhi - self.umed_offset)


#: Preset matching the paper's Lublin-1 trace (longer, narrower jobs):
#: Table II targets — it ≈ 771 s, rt ≈ 4862 s, nt ≈ 22 procs.
LUBLIN_1 = LublinParams(
    n_procs=256,
    mean_interarrival=771.0,
    mean_runtime=4862.0,
    serial_prob=0.10,
    umed_offset=3.2,
)

#: Preset matching the paper's Lublin-2 trace (shorter, wider jobs):
#: Table II targets — it ≈ 460 s, rt ≈ 1695 s, nt ≈ 39 procs.
LUBLIN_2 = LublinParams(
    n_procs=256,
    mean_interarrival=460.0,
    mean_runtime=1695.0,
    serial_prob=0.05,
    uprob=0.80,
    umed_offset=2.0,
)


def _sample_sizes(params: LublinParams, n: int, rng: np.random.Generator) -> np.ndarray:
    """Vectorised two-stage-uniform / power-of-two job sizes."""
    serial = rng.random(n) < params.serial_prob
    first_stage = rng.random(n) < params.uprob
    log_size = np.where(
        first_stage,
        rng.uniform(params.ulow, params.umed, n),
        rng.uniform(params.umed, params.uhi, n),
    )
    round_pow2 = rng.random(n) < params.pow2_prob
    sizes = np.where(
        round_pow2,
        2.0 ** np.round(log_size),
        np.ceil(2.0 ** log_size),
    )
    sizes = np.where(serial, 1.0, sizes)
    return np.clip(sizes, 1, params.n_procs).astype(np.int64)


def _sample_runtimes(
    params: LublinParams, sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Hyper-gamma runtimes with size-dependent mixing (vectorised)."""
    n = len(sizes)
    p = np.clip(params.runtime_pa * sizes + params.runtime_pb, 0.05, 0.95)
    use_first = rng.random(n) < p
    # The gamma samples model log2(runtime); exponentiate to seconds, as in
    # the published model where runtime spans several orders of magnitude.
    g1 = rng.gamma(params.runtime_a1, params.runtime_b1, n)
    g2 = rng.gamma(params.runtime_a2, params.runtime_b2, n)
    log_rt = np.where(use_first, g1, g2)
    runtimes = np.exp2(log_rt)
    if params.mean_runtime is not None:
        # Calibrate the sample mean to the preset target (Table II `rt`)
        # while preserving the hyper-gamma *shape*; a multiplicative rescale
        # keeps relative runtime ratios intact.
        runtimes = calibrate_mean(runtimes, params.mean_runtime, params.max_runtime)
    return np.clip(runtimes, 1.0, params.max_runtime)


def calibrate_mean(
    samples: np.ndarray, target: float, cap: float, iterations: int = 8
) -> np.ndarray:
    """Rescale positive samples so the *clipped* mean hits ``target``.

    A single multiplicative rescale undershoots when the cap truncates the
    heavy tail, so rescale-then-clip is iterated to a fixed point.
    """
    if target >= cap:
        raise ValueError(f"target mean {target} must be below the cap {cap}")
    out = samples.astype(float)
    for _ in range(iterations):
        clipped = np.clip(out, 1.0, cap)
        mean = clipped.mean()
        if abs(mean - target) / target < 1e-3:
            break
        out = out * (target / mean)
    return np.clip(out, 1.0, cap)


def _daily_rate(t: np.ndarray | float, strength: float) -> np.ndarray | float:
    """Relative arrival intensity at absolute time ``t`` (peak ~2pm)."""
    phase = 2.0 * math.pi * ((np.asarray(t) / _SECONDS_PER_DAY) % 1.0)
    # peak at 14:00 => shift so cos() maximises there
    return 1.0 + strength * np.cos(phase - 2.0 * math.pi * 14.0 / 24.0)


def _sample_arrivals(
    params: LublinParams, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Gamma inter-arrivals thinned by the daily cycle."""
    shape = params.interarrival_shape
    # The thinning below keeps a fraction ~ 1/(1+strength) of candidate
    # arrivals on average, so oversample the base process accordingly.
    base_mean = params.mean_interarrival / (1.0 + params.daily_cycle_strength)
    scale = base_mean / shape
    arrivals = np.empty(n)
    t = 0.0
    count = 0
    peak = 1.0 + params.daily_cycle_strength
    while count < n:
        gaps = rng.gamma(shape, scale, size=max(64, n - count))
        accept = rng.random(len(gaps))
        for gap, u in zip(gaps, accept):
            t += gap
            if u * peak <= _daily_rate(t, params.daily_cycle_strength):
                arrivals[count] = t
                count += 1
                if count == n:
                    break
    return arrivals


def _sample_estimates(
    runtimes: np.ndarray, max_runtime: float, rng: np.random.Generator
) -> np.ndarray:
    """Requested runtimes: user over-estimation factor in [1, ~10]."""
    factor = 1.0 + rng.lognormal(mean=0.0, sigma=1.0, size=len(runtimes))
    return np.minimum(runtimes * factor, max_runtime * 4)


def generate_lublin_trace(
    params: LublinParams = LUBLIN_1,
    n_jobs: int = 10_000,
    seed: int | None = 0,
    name: str = "lublin",
    n_users: int = 64,
) -> SWFTrace:
    """Generate an SWF trace from the Lublin model.

    Users are assigned with a Zipf-like skew (a handful of heavy users),
    consistent with what archive traces show; the model itself does not
    specify user identities.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    rng = np.random.default_rng(seed)

    sizes = _sample_sizes(params, n_jobs, rng)
    runtimes = _sample_runtimes(params, sizes, rng)
    arrivals = _sample_arrivals(params, n_jobs, rng)
    estimates = _sample_estimates(runtimes, params.max_runtime, rng)

    user_weights = 1.0 / np.arange(1, n_users + 1) ** 1.2
    user_weights /= user_weights.sum()
    users = rng.choice(n_users, size=n_jobs, p=user_weights)

    jobs = [
        Job(
            job_id=i + 1,
            submit_time=float(arrivals[i]),
            run_time=float(runtimes[i]),
            requested_procs=int(sizes[i]),
            requested_time=float(estimates[i]),
            user_id=int(users[i]),
            group_id=int(users[i]) % 8,
            executable_id=int(rng.integers(1, 50)),
        )
        for i in range(n_jobs)
    ]
    header = SWFHeader(max_procs=params.n_procs, max_nodes=params.n_procs)
    return SWFTrace(jobs=jobs, header=header, name=name)
