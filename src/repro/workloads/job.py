"""Job model following the Standard Workload Format (SWF) v2.

Every job carries the 18 SWF fields.  The scheduler-facing attributes the
paper uses (Table I) are exposed under their symbolic names:

==============  ========  =============================================
SWF field       symbol    meaning
==============  ========  =============================================
job_id          id_t      sequential job id
submit_time     s_t       submission timestamp (seconds)
requested_procs n_t       number of processors requested
requested_time  r_t       user runtime estimate / upper bound (seconds)
requested_mem   m_t       requested memory per processor
user_id         u_t       submitting user
group_id        g_t       submitting group
executable_id   app_t     id of the executable
==============  ========  =============================================

The *actual* runtime (``run_time``) is known to the simulator but hidden
from schedulers, matching the paper's SchedGym ("the accurate runtime will
not be available to the schedulers, instead, only the requested runtime").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Job", "SWF_FIELD_NAMES"]

#: The 18 SWF v2 columns, in file order.
SWF_FIELD_NAMES = (
    "job_id",
    "submit_time",
    "wait_time",
    "run_time",
    "used_procs",
    "used_avg_cpu",
    "used_mem",
    "requested_procs",
    "requested_time",
    "requested_mem",
    "status",
    "user_id",
    "group_id",
    "executable_id",
    "queue_id",
    "partition_id",
    "preceding_job_id",
    "think_time",
)


@dataclass(slots=True)
class Job:
    """A single batch job.

    Only ``job_id``, ``submit_time``, ``run_time`` and ``requested_procs``
    are required for simulation; everything else defaults to the SWF
    "unknown" sentinel ``-1``.
    """

    job_id: int
    submit_time: float
    run_time: float
    requested_procs: int
    requested_time: float = -1.0
    requested_mem: float = -1.0
    user_id: int = -1
    group_id: int = -1
    executable_id: int = -1
    queue_id: int = -1
    partition_id: int = -1
    status: int = 1
    wait_time: float = -1.0
    used_procs: int = -1
    used_avg_cpu: float = -1.0
    used_mem: float = -1.0
    preceding_job_id: int = -1
    think_time: float = -1.0

    # --- simulator bookkeeping (not part of SWF) -------------------------
    start_time: float = field(default=-1.0, compare=False)

    def __post_init__(self) -> None:
        if self.requested_procs <= 0:
            raise ValueError(
                f"job {self.job_id}: requested_procs must be positive, "
                f"got {self.requested_procs}"
            )
        if self.run_time < 0:
            raise ValueError(
                f"job {self.job_id}: run_time must be non-negative, got {self.run_time}"
            )
        if self.submit_time < 0:
            raise ValueError(
                f"job {self.job_id}: submit_time must be non-negative, "
                f"got {self.submit_time}"
            )
        # Users routinely under-estimate; SWF traces occasionally carry
        # requested_time < run_time.  We keep the value but never let the
        # scheduler see a non-positive estimate: fall back to actual runtime.
        if self.requested_time <= 0:
            self.requested_time = max(self.run_time, 1.0)

    # ------------------------------------------------------------------
    # scheduler-visible symbolic accessors (Table I)
    # ------------------------------------------------------------------
    @property
    def s_t(self) -> float:
        """Submission time."""
        return self.submit_time

    @property
    def n_t(self) -> int:
        """Requested processor count."""
        return self.requested_procs

    @property
    def r_t(self) -> float:
        """Requested (estimated) runtime."""
        return self.requested_time

    @property
    def u_t(self) -> int:
        """User id."""
        return self.user_id

    # ------------------------------------------------------------------
    # derived quantities (valid once the simulator sets ``start_time``)
    # ------------------------------------------------------------------
    @property
    def scheduled(self) -> bool:
        return self.start_time >= 0

    @property
    def end_time(self) -> float:
        if not self.scheduled:
            raise RuntimeError(f"job {self.job_id} has not been scheduled")
        return self.start_time + self.run_time

    def waiting_time(self, now: float | None = None) -> float:
        """Time spent waiting: until start if scheduled, else until ``now``."""
        if self.scheduled:
            return self.start_time - self.submit_time
        if now is None:
            raise RuntimeError(
                f"job {self.job_id} not scheduled; pass `now` for elapsed wait"
            )
        return max(0.0, now - self.submit_time)

    def copy(self) -> "Job":
        """Fresh, unscheduled copy (simulations must not mutate the trace).

        Hand-rolled slot copy: ``dataclasses.replace`` re-runs ``__init__``
        and validation on every call, which dominates engine construction
        when the vectorised rollout resets N environments at once.
        """
        new = object.__new__(Job)
        new.job_id = self.job_id
        new.submit_time = self.submit_time
        new.run_time = self.run_time
        new.requested_procs = self.requested_procs
        new.requested_time = self.requested_time
        new.requested_mem = self.requested_mem
        new.user_id = self.user_id
        new.group_id = self.group_id
        new.executable_id = self.executable_id
        new.queue_id = self.queue_id
        new.partition_id = self.partition_id
        new.status = self.status
        new.wait_time = self.wait_time
        new.used_procs = self.used_procs
        new.used_avg_cpu = self.used_avg_cpu
        new.used_mem = self.used_mem
        new.preceding_job_id = self.preceding_job_id
        new.think_time = self.think_time
        new.start_time = -1.0
        return new

    def __repr__(self) -> str:  # compact: the default dataclass repr is huge
        return (
            f"Job(id={self.job_id}, submit={self.submit_time:.0f}, "
            f"run={self.run_time:.0f}, req_procs={self.requested_procs}, "
            f"req_time={self.requested_time:.0f}, user={self.user_id})"
        )
