"""Standard Workload Format (SWF) v2 reader / writer.

The SWF is the interchange format of the Parallel Workloads Archive
(Feitelson et al., JPDC 2014).  A trace file consists of header directives
(`; Key: value` comment lines) followed by one whitespace-separated record
of 18 integer fields per job.

This module parses real archive files byte-for-byte and also writes traces
produced by the synthetic generators in :mod:`repro.workloads.archive` and
:mod:`repro.workloads.lublin`, so the rest of the library is agnostic to
where a trace came from.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from .job import Job, SWF_FIELD_NAMES

__all__ = ["SWFHeader", "SWFTrace", "parse_swf", "read_swf", "write_swf"]


@dataclass
class SWFHeader:
    """Header directives of an SWF file.

    Only the directives the simulator needs are first-class; everything else
    is preserved verbatim in ``extra`` so a round-trip keeps the file intact.
    """

    max_procs: int = -1
    max_nodes: int = -1
    unix_start_time: int = 0
    extra: dict[str, str] = field(default_factory=dict)

    def directive_lines(self) -> list[str]:
        lines = []
        if self.unix_start_time:
            lines.append(f"; UnixStartTime: {self.unix_start_time}")
        if self.max_nodes > 0:
            lines.append(f"; MaxNodes: {self.max_nodes}")
        if self.max_procs > 0:
            lines.append(f"; MaxProcs: {self.max_procs}")
        for key, value in self.extra.items():
            lines.append(f"; {key}: {value}")
        return lines


@dataclass
class SWFTrace:
    """A parsed workload: header plus the job list, in submit order."""

    jobs: list[Job]
    header: SWFHeader = field(default_factory=SWFHeader)
    name: str = ""

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return SWFTrace(jobs=self.jobs[idx], header=self.header, name=self.name)
        return self.jobs[idx]

    @property
    def max_procs(self) -> int:
        """Cluster size: header directive if present, else max over jobs."""
        if self.header.max_procs > 0:
            return self.header.max_procs
        if not self.jobs:
            return 0
        return max(j.requested_procs for j in self.jobs)

    def head(self, n: int) -> "SWFTrace":
        """First ``n`` jobs (the paper uses the first 10K of each trace)."""
        return self[:n]


def _parse_record(fields: Sequence[str], lineno: int) -> Job | None:
    """Build a Job from one SWF record; return None for unusable records."""
    if len(fields) < 18:
        raise ValueError(
            f"SWF line {lineno}: expected 18 fields, got {len(fields)}"
        )
    values = {}
    for name, raw in zip(SWF_FIELD_NAMES, fields):
        values[name] = float(raw) if "." in raw or "e" in raw.lower() else int(raw)

    run_time = float(values["run_time"])
    procs = int(values["requested_procs"])
    if procs <= 0:
        # SWF uses -1 for unknown; fall back to processors actually used.
        procs = int(values["used_procs"])
    if procs <= 0 or run_time < 0:
        return None  # cancelled / corrupted record: skip, as the paper's tooling does

    return Job(
        job_id=int(values["job_id"]),
        submit_time=float(values["submit_time"]),
        run_time=run_time,
        requested_procs=procs,
        requested_time=float(values["requested_time"]),
        requested_mem=float(values["requested_mem"]),
        user_id=int(values["user_id"]),
        group_id=int(values["group_id"]),
        executable_id=int(values["executable_id"]),
        queue_id=int(values["queue_id"]),
        partition_id=int(values["partition_id"]),
        status=int(values["status"]),
        wait_time=float(values["wait_time"]),
        used_procs=int(values["used_procs"]),
        used_avg_cpu=float(values["used_avg_cpu"]),
        used_mem=float(values["used_mem"]),
        preceding_job_id=int(values["preceding_job_id"]),
        think_time=float(values["think_time"]),
    )


def parse_swf(text: str, name: str = "") -> SWFTrace:
    """Parse SWF content from a string."""
    header = SWFHeader()
    jobs: list[Job] = []
    for lineno, line in enumerate(io.StringIO(text), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(";"):
            body = line[1:].strip()
            if ":" in body:
                key, _, value = body.partition(":")
                key, value = key.strip(), value.strip()
                if key == "MaxProcs":
                    header.max_procs = int(value)
                elif key == "MaxNodes":
                    header.max_nodes = int(value)
                elif key == "UnixStartTime":
                    header.unix_start_time = int(value)
                else:
                    header.extra[key] = value
            continue
        job = _parse_record(line.split(), lineno)
        if job is not None:
            jobs.append(job)
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return SWFTrace(jobs=jobs, header=header, name=name)


def read_swf(path: str | Path) -> SWFTrace:
    """Read and parse an SWF file from disk."""
    path = Path(path)
    return parse_swf(path.read_text(), name=path.stem)


def _format_record(job: Job) -> str:
    def as_int(x: float) -> str:
        return str(int(round(x)))

    return " ".join(
        [
            as_int(job.job_id),
            as_int(job.submit_time),
            as_int(job.wait_time),
            as_int(job.run_time),
            as_int(job.used_procs if job.used_procs > 0 else job.requested_procs),
            as_int(job.used_avg_cpu),
            as_int(job.used_mem),
            as_int(job.requested_procs),
            as_int(job.requested_time),
            as_int(job.requested_mem),
            as_int(job.status),
            as_int(job.user_id),
            as_int(job.group_id),
            as_int(job.executable_id),
            as_int(job.queue_id),
            as_int(job.partition_id),
            as_int(job.preceding_job_id),
            as_int(job.think_time),
        ]
    )


def write_swf(trace: SWFTrace, path: str | Path | None = None) -> str:
    """Serialise a trace to SWF text; optionally write it to ``path``."""
    lines = list(trace.header.directive_lines())
    lines.extend(_format_record(job) for job in trace.jobs)
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text
