"""Workload substrate: SWF jobs/traces, the Lublin model, calibrated
archive-trace generators, characterisation statistics, sequence sampling."""

from .job import Job, SWF_FIELD_NAMES
from .swf import SWFHeader, SWFTrace, parse_swf, read_swf, write_swf
from .lublin import LUBLIN_1, LUBLIN_2, LublinParams, generate_lublin_trace
from .archive import (
    TRACE_SPECS,
    ArchiveTraceSpec,
    available_traces,
    generate_archive_trace,
    load_trace,
)
from .stats import TraceStats, characterize, interarrival_times, user_job_counts
from .sampler import SequenceSampler, rebase_jobs, sample_sequence

__all__ = [
    "Job",
    "SWF_FIELD_NAMES",
    "SWFHeader",
    "SWFTrace",
    "parse_swf",
    "read_swf",
    "write_swf",
    "LublinParams",
    "LUBLIN_1",
    "LUBLIN_2",
    "generate_lublin_trace",
    "ArchiveTraceSpec",
    "TRACE_SPECS",
    "generate_archive_trace",
    "load_trace",
    "available_traces",
    "TraceStats",
    "characterize",
    "interarrival_times",
    "user_job_counts",
    "SequenceSampler",
    "sample_sequence",
    "rebase_jobs",
]
