"""Workload characterisation (paper §II-A2 and Table II).

Traces are characterised by representative statistical values: moments of
runtime, job size and arrival interval, plus burstiness and user-imbalance
measures used to explain the Fig. 7 / Table VIII phenomena.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .swf import SWFTrace

__all__ = [
    "TraceStats",
    "characterize",
    "interarrival_times",
    "user_job_counts",
    "windowed_dispersion",
]


def windowed_dispersion(trace: SWFTrace, window: float | None = None) -> float:
    """Index of dispersion of arrival counts: Var(N)/E(N) over time windows.

    ~1 for a Poisson process; ≫1 for bursty (Markov-modulated) arrivals
    where whole episodes of rapid submissions alternate with calm periods.
    This is the statistic that distinguishes PIK-IPLEX-like traces — the
    marginal inter-arrival CV cannot, because burstiness lives in the
    *correlation* of consecutive gaps, not their distribution.

    ``window`` defaults to 50× the mean inter-arrival time.
    """
    submits = np.array([j.submit_time for j in trace.jobs])
    if len(submits) < 10:
        raise ValueError("need at least 10 jobs for a dispersion estimate")
    if window is None:
        gaps = np.diff(submits)
        window = 50.0 * float(gaps.mean())
    if window <= 0:
        raise ValueError("window must be positive")
    edges = np.arange(submits[0], submits[-1] + window, window)
    counts, _ = np.histogram(submits, bins=edges)
    mean = counts.mean()
    return float(counts.var() / mean) if mean > 0 else 0.0


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a workload trace (the Table II columns and more)."""

    name: str
    n_jobs: int
    n_procs: int                  # cluster size (`size`)
    mean_interarrival: float      # `it`
    mean_runtime: float           # `rt`
    mean_requested_procs: float   # `nt`
    std_interarrival: float
    std_runtime: float
    std_requested_procs: float
    runtime_cv: float             # coefficient of variation
    interarrival_cv: float
    burstiness: float             # (cv - 1)/(cv + 1) of inter-arrivals; 0 = Poisson
    n_users: int
    top_user_share: float         # fraction of jobs from the most active user

    def table_row(self) -> str:
        """One Table II-style row: name, size, it, rt, nt."""
        return (
            f"{self.name:<14} {self.n_procs:>7d} {self.mean_interarrival:>8.0f} "
            f"{self.mean_runtime:>8.0f} {self.mean_requested_procs:>8.0f}"
        )


def interarrival_times(trace: SWFTrace) -> np.ndarray:
    """Gaps between consecutive submissions (length ``len(trace) - 1``)."""
    submits = np.array([j.submit_time for j in trace.jobs])
    return np.diff(submits)


def user_job_counts(trace: SWFTrace) -> dict[int, int]:
    """Jobs submitted per user id (unknown users, id -1, are excluded)."""
    counts = Counter(j.user_id for j in trace.jobs if j.user_id >= 0)
    return dict(counts)


def characterize(trace: SWFTrace) -> TraceStats:
    """Compute the summary statistics of a trace."""
    if len(trace) < 2:
        raise ValueError("need at least two jobs to characterise a trace")
    runtimes = np.array([j.run_time for j in trace.jobs])
    procs = np.array([j.requested_procs for j in trace.jobs], dtype=float)
    gaps = interarrival_times(trace)

    it_mean = float(gaps.mean())
    it_std = float(gaps.std())
    it_cv = it_std / it_mean if it_mean > 0 else 0.0
    rt_mean = float(runtimes.mean())
    rt_cv = float(runtimes.std() / rt_mean) if rt_mean > 0 else 0.0

    counts = user_job_counts(trace)
    if counts:
        top_share = max(counts.values()) / sum(counts.values())
    else:
        top_share = 0.0

    return TraceStats(
        name=trace.name,
        n_jobs=len(trace),
        n_procs=trace.max_procs,
        mean_interarrival=it_mean,
        mean_runtime=rt_mean,
        mean_requested_procs=float(procs.mean()),
        std_interarrival=it_std,
        std_runtime=float(runtimes.std()),
        std_requested_procs=float(procs.std()),
        runtime_cv=rt_cv,
        interarrival_cv=it_cv,
        burstiness=(it_cv - 1.0) / (it_cv + 1.0) if it_cv > 0 else -1.0,
        n_users=len(counts),
        top_user_share=float(top_share),
    )
