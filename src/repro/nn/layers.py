"""Neural-network building blocks over the autodiff tensor.

``Dense`` covers the kernel network, the MLP policies and the value
network; ``conv2d`` / ``max_pool2d`` exist for the LeNet baseline of the
Fig. 8 network-architecture comparison (Table IV row 4).  Convolution is
implemented with im2col so the inner loop is a single matmul, per the
vectorise-first guide idiom; its backward scatters through the same window
geometry.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Parameter, Tensor

__all__ = ["Module", "Dense", "Sequential", "conv2d", "max_pool2d", "Conv2d", "Flatten"]


class Module:
    """Base class with recursive parameter discovery and (de)serialisation."""

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            params.extend(_collect(value, seen))
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # --- persistence ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"p{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays but model has {len(params)} parameters"
            )
        for i, p in enumerate(params):
            arr = np.asarray(state[f"p{i}"], dtype=np.float64)
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"parameter {i}: shape {arr.shape} != expected {p.data.shape}"
                )
            p.data = arr.copy()

    def save(self, path) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _collect(value, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for p in value.parameters():
            if id(p) not in seen:
                seen.add(id(p))
                yield p
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect(item, seen)


_ACTIVATIONS = {
    "relu": lambda t: t.relu(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "identity": lambda t: t,
}


class Dense(Module):
    """Fully-connected layer, ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "identity",
        rng: np.random.Generator | None = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; known: {sorted(_ACTIVATIONS)}"
            )
        rng = rng or np.random.default_rng()
        if activation == "relu":  # He init
            scale = np.sqrt(2.0 / in_features)
        else:  # Xavier/Glorot
            scale = np.sqrt(1.0 / in_features)
        self.weight = Parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight + self.bias
        return _ACTIVATIONS[self.activation](out)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


# ---------------------------------------------------------------------------
# convolution (for the LeNet comparison network)
# ---------------------------------------------------------------------------
def _im2col(x: np.ndarray, kh: int, kw: int, pad: int) -> tuple[np.ndarray, int, int]:
    """(N,C,H,W) -> (N, C*kh*kw, Ho*Wo) windows, stride 1."""
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    n, c, h, w = x.shape
    ho, wo = h - kh + 1, w - kw + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    # windows: (N, C, Ho, Wo, kh, kw) -> (N, C, kh, kw, Ho, Wo)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, ho * wo)
    return np.ascontiguousarray(cols), ho, wo


def _col2im(
    dcols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    pad: int,
    ho: int,
    wo: int,
) -> np.ndarray:
    """Scatter-add gradient of im2col back to the (padded) input."""
    n, c, h, w = x_shape
    dxp = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    d = dcols.reshape(n, c, kh, kw, ho, wo)
    for i in range(kh):
        for j in range(kw):
            dxp[:, :, i : i + ho, j : j + wo] += d[:, :, i, j]
    if pad:
        return dxp[:, :, pad:-pad, pad:-pad]
    return dxp


def conv2d(x: Tensor, weight: Tensor, bias: Tensor, pad: int = 0) -> Tensor:
    """2-D convolution, stride 1.  x: (N,C,H,W); weight: (F,C,kh,kw)."""
    f, c, kh, kw = weight.shape
    if x.ndim != 4 or x.shape[1] != c:
        raise ValueError(f"input {x.shape} incompatible with weight {weight.shape}")
    cols, ho, wo = _im2col(x.data, kh, kw, pad)  # (N, C*kh*kw, L)
    wmat = weight.data.reshape(f, -1)            # (F, C*kh*kw)
    out_data = np.einsum("fk,nkl->nfl", wmat, cols).reshape(-1, f, ho, wo)
    out_data += bias.data.reshape(1, f, 1, 1)

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(grad.shape[0], f, ho * wo)  # (N, F, L)
        if bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 2)))
        if weight.requires_grad:
            dw = np.einsum("nfl,nkl->fk", g, cols).reshape(weight.shape)
            weight._accumulate(dw)
        if x.requires_grad:
            dcols = np.einsum("fk,nfl->nkl", wmat, g)
            x._accumulate(_col2im(dcols, x.data.shape, kh, kw, pad, ho, wo))

    return Tensor._from_op(out_data, (x, weight, bias), backward)


def max_pool2d(x: Tensor, k: int = 2) -> Tensor:
    """Non-overlapping k×k max pooling (trailing rows/cols are dropped)."""
    n, c, h, w = x.shape
    ho, wo = h // k, w // k
    if ho == 0 or wo == 0:
        raise ValueError(f"input {x.shape} too small for {k}x{k} pooling")
    view = x.data[:, :, : ho * k, : wo * k].reshape(n, c, ho, k, wo, k)
    out_data = view.max(axis=(3, 5))
    # Record which element won each window for the backward scatter.
    flat = view.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, ho, wo, k * k)
    winners = flat.argmax(axis=-1)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dflat = np.zeros_like(flat)
        np.put_along_axis(dflat, winners[..., None], grad[..., None], axis=-1)
        dx = np.zeros_like(x.data)
        dx[:, :, : ho * k, : wo * k] = (
            dflat.reshape(n, c, ho, wo, k, k).transpose(0, 1, 2, 4, 3, 5)
        ).reshape(n, c, ho * k, wo * k)
        x._accumulate(dx)

    return Tensor._from_op(out_data, (x,), backward)


class Conv2d(Module):
    """Convolution layer wrapper for :func:`conv2d`."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        pad: int = 0,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng()
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(np.zeros(out_channels))
        self.pad = pad
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        return _ACTIVATIONS[self.activation](conv2d(x, self.weight, self.bias, self.pad))


class Flatten(Module):
    """Collapse all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)
