"""Probability utilities for the categorical policy head.

The policy networks emit one score per visible job slot; these helpers turn
scores into a masked categorical distribution (padded slots get probability
zero), sample actions during training, and compute the log-probs and
entropy PPO needs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "masked_log_softmax",
    "log_prob_of",
    "entropy",
    "sample_action",
    "sample_action_batch",
    "greedy_action",
]

_MASK_FILL = -1e9


def masked_log_softmax(logits: Tensor, mask: np.ndarray) -> Tensor:
    """Log-softmax over the last axis with invalid slots masked out.

    ``mask`` is a boolean array broadcastable to ``logits.shape``; False
    entries receive log-probability ~ -1e9 (probability 0 after exp).
    """
    mask = np.asarray(mask, dtype=bool)
    if not mask.any(axis=-1).all():
        raise ValueError("every row must have at least one valid action")
    masked = logits.where(mask, Tensor(np.full(logits.shape, _MASK_FILL)))
    # Stability shift by a detached per-row max (constant w.r.t. gradients).
    shift = Tensor(masked.data.max(axis=-1, keepdims=True))
    shifted = masked - shift
    log_norm = shifted.exp().sum(axis=-1, keepdims=True).log()
    return shifted - log_norm


def log_prob_of(log_probs: Tensor, actions: np.ndarray) -> Tensor:
    """Gather per-row log-probabilities of chosen actions.

    ``log_probs``: (B, A) tensor; ``actions``: (B,) int array → (B,) tensor.
    """
    actions = np.asarray(actions, dtype=np.int64)
    batch = np.arange(log_probs.shape[0])
    return log_probs[batch, actions]


def entropy(log_probs: Tensor) -> Tensor:
    """Mean categorical entropy, -Σ p·log p, ignoring masked slots.

    Masked slots have log p ≈ -1e9 and p ≈ 0; their p·log p contribution
    underflows to exactly 0 in float64, so no re-masking is needed.
    """
    p = log_probs.exp()
    per_row = -(p * log_probs).sum(axis=-1)
    return per_row.mean()


def sample_action(log_probs_row: np.ndarray, rng: np.random.Generator) -> int:
    """Sample one action from a single row of log-probabilities."""
    p = np.exp(log_probs_row - log_probs_row.max())
    p /= p.sum()
    return int(rng.choice(len(p), p=p))


def sample_action_batch(
    log_probs: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Inverse-CDF sampling for a batch of categorical rows.

    ``log_probs`` is ``(N, A)``; ``uniforms`` supplies one U[0,1) draw per
    row (callers own the generators, e.g. one per trajectory).  Every row
    is processed independently with per-row cumulative sums, so the action
    drawn for a row depends only on that row and its own uniform — batch
    composition cannot change anyone's sample, the property the
    vectorised-rollout equivalence tests rely on.  Masked slots carry
    probability ~0 and are never selected.
    """
    p = np.exp(log_probs - log_probs.max(axis=-1, keepdims=True))
    cdf = np.cumsum(p, axis=-1)
    thresholds = uniforms * cdf[:, -1]
    actions = (cdf < thresholds[:, None]).sum(axis=-1)
    return np.minimum(actions, log_probs.shape[-1] - 1).astype(np.int64)


def greedy_action(log_probs_row: np.ndarray) -> int:
    """Deterministic argmax action (test-time behaviour, paper §IV-B1)."""
    return int(np.argmax(log_probs_row))
