"""Probability utilities for the categorical policy head.

The policy networks emit one score per visible job slot; these helpers turn
scores into a masked categorical distribution (padded slots get probability
zero), sample actions during training, and compute the log-probs and
entropy PPO needs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, gather_rows, segment_logsumexp, segment_sum

__all__ = [
    "masked_log_softmax",
    "log_prob_of",
    "entropy",
    "segment_log_softmax",
    "segment_log_prob_of",
    "segment_entropy",
    "valid_rows",
    "flat_action_index",
    "sample_action",
    "sample_action_batch",
    "greedy_action",
]

_MASK_FILL = -1e9


def masked_log_softmax(logits: Tensor, mask: np.ndarray) -> Tensor:
    """Log-softmax over the last axis with invalid slots masked out.

    ``mask`` is a boolean array broadcastable to ``logits.shape``; False
    entries receive log-probability ~ -1e9 (probability 0 after exp).
    """
    mask = np.asarray(mask, dtype=bool)
    if not mask.any(axis=-1).all():
        raise ValueError("every row must have at least one valid action")
    masked = logits.where(mask, Tensor(np.full(logits.shape, _MASK_FILL)))
    # Stability shift by a detached per-row max (constant w.r.t. gradients).
    shift = Tensor(masked.data.max(axis=-1, keepdims=True))
    shifted = masked - shift
    log_norm = shifted.exp().sum(axis=-1, keepdims=True).log()
    return shifted - log_norm


def log_prob_of(log_probs: Tensor, actions: np.ndarray) -> Tensor:
    """Gather per-row log-probabilities of chosen actions.

    ``log_probs``: (B, A) tensor; ``actions``: (B,) int array → (B,) tensor.
    """
    actions = np.asarray(actions, dtype=np.int64)
    batch = np.arange(log_probs.shape[0])
    return log_probs[batch, actions]


def entropy(log_probs: Tensor) -> Tensor:
    """Mean categorical entropy, -Σ p·log p, ignoring masked slots.

    Masked slots have log p ≈ -1e9 and p ≈ 0; their p·log p contribution
    underflows to exactly 0 in float64, so no re-masking is needed.
    """
    p = log_probs.exp()
    per_row = -(p * log_probs).sum(axis=-1)
    return per_row.mean()


# ---------------------------------------------------------------------------
# segment-batched (sparse) twins
# ---------------------------------------------------------------------------
# The dense helpers above operate on a padded ``(B, M)`` logits block where
# masked slots carry ~-1e9.  The sparse twins operate on a *flat* vector of
# only the valid slots, segmented per observation by a CSR ``indptr`` — the
# update-path counterpart of the deploy-side ``score_rows`` fast path.
# Forward values agree with the dense helpers to float64 round-off (the
# masked slots contribute exactly zero probability in both).


def valid_rows(masks: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a boolean ``(B, M)`` mask into its valid-slot coordinates.

    Returns ``(batch_idx, slot_idx, indptr)``: the row/column of every
    True entry in row-major order (so entries of one observation are
    contiguous) plus the CSR segment splits (``indptr[b]:indptr[b+1]``
    spans observation ``b``'s valid slots).
    """
    masks = np.asarray(masks, dtype=bool)
    batch_idx, slot_idx = np.nonzero(masks)
    counts = masks.sum(axis=-1)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    return batch_idx, slot_idx, indptr


def flat_action_index(
    masks: np.ndarray, actions: np.ndarray, indptr: np.ndarray
) -> np.ndarray:
    """Position of each chosen action inside the flat valid-slot vector.

    ``actions[b]`` must be a valid slot of row ``b``; the flat position is
    ``indptr[b]`` plus the number of valid slots before it in that row.
    """
    masks = np.asarray(masks, dtype=bool)
    actions = np.asarray(actions, dtype=np.int64)
    batch = np.arange(masks.shape[0])
    if not masks[batch, actions].all():
        bad = batch[~masks[batch, actions]]
        raise ValueError(f"actions at rows {bad.tolist()} are masked out")
    offsets = np.cumsum(masks, axis=-1)[batch, actions] - 1
    return indptr[:-1] + offsets


def segment_log_softmax(scores: Tensor, indptr: np.ndarray) -> Tensor:
    """Log-softmax within each segment of a flat score vector.

    The sparse twin of :func:`masked_log_softmax`: ``scores`` holds only
    the valid slots (``(K,)``), segments are observations.  Every segment
    must be non-empty — the same "at least one valid action" contract the
    dense path enforces via its mask check.
    """
    lengths = np.diff(np.asarray(indptr, dtype=np.int64))
    if (lengths <= 0).any():
        raise ValueError("every row must have at least one valid action")
    log_norm = segment_logsumexp(scores, indptr)           # (B,)
    seg_ids = np.repeat(np.arange(lengths.size), lengths)  # (K,)
    return scores - gather_rows(log_norm, seg_ids)


def segment_log_prob_of(
    log_probs: Tensor, masks: np.ndarray, actions: np.ndarray, indptr: np.ndarray
) -> Tensor:
    """Per-observation log-probability of the chosen actions.

    Sparse twin of :func:`log_prob_of`: ``log_probs`` is the flat ``(K,)``
    output of :func:`segment_log_softmax`; ``actions`` index the original
    (padded) slot axis and are translated to flat positions.
    """
    return gather_rows(log_probs, flat_action_index(masks, actions, indptr))


def segment_entropy(log_probs: Tensor, indptr: np.ndarray) -> Tensor:
    """Mean categorical entropy over segments (sparse twin of :func:`entropy`).

    Masked slots are simply absent here; in the dense path their
    ``p·log p`` contribution underflows to exactly 0, so both paths
    compute the same per-row entropies.
    """
    per_row = -segment_sum(log_probs.exp() * log_probs, indptr)
    return per_row.mean()


def sample_action(log_probs_row: np.ndarray, rng: np.random.Generator) -> int:
    """Sample one action from a single row of log-probabilities."""
    p = np.exp(log_probs_row - log_probs_row.max())
    p /= p.sum()
    return int(rng.choice(len(p), p=p))


def sample_action_batch(
    log_probs: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Inverse-CDF sampling for a batch of categorical rows.

    ``log_probs`` is ``(N, A)``; ``uniforms`` supplies one U[0,1) draw per
    row (callers own the generators, e.g. one per trajectory).  Every row
    is processed independently with per-row cumulative sums, so the action
    drawn for a row depends only on that row and its own uniform — batch
    composition cannot change anyone's sample, the property the
    vectorised-rollout equivalence tests rely on.  Masked slots carry
    probability ~0 and are never selected.
    """
    p = np.exp(log_probs - log_probs.max(axis=-1, keepdims=True))
    cdf = np.cumsum(p, axis=-1)
    thresholds = uniforms * cdf[:, -1]
    actions = (cdf < thresholds[:, None]).sum(axis=-1)
    return np.minimum(actions, log_probs.shape[-1] - 1).astype(np.int64)


def greedy_action(log_probs_row: np.ndarray) -> int:
    """Deterministic argmax action (test-time behaviour, paper §IV-B1)."""
    return int(np.argmax(log_probs_row))
