"""Optimizers: Adam (used for both PPO networks, as in SpinningUp) and SGD.

Includes global-norm gradient clipping, which keeps the rare huge-advantage
updates of high-variance traces (PIK-IPLEX) from destroying the policy.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .tensor import Parameter

__all__ = ["Adam", "SGD", "clip_grad_norm"]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm (useful for training diagnostics).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = math.sqrt(total)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class _Optimizer:
    def __init__(self, params: Sequence[Parameter], lr: float):
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(_Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam(_Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.b1, self.b2, self.eps = b1, b2, eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.b1**self._t
        bc2 = 1.0 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.b1
            m += (1.0 - self.b1) * p.grad
            v *= self.b2
            v += (1.0 - self.b2) * p.grad * p.grad
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
