"""Policy and value networks (paper §IV-B, Table IV).

All policy networks share one interface: ``forward(obs, mask) -> logits``
where ``obs`` is a float array of shape ``(B, M, F)`` — B observations of M
visible job slots with F features — and the returned tensor has shape
``(B, M)``: one score per slot.  Downstream, scores go through a masked
softmax (:func:`repro.nn.functional.masked_log_softmax`).

Table IV configurations reproduced here:

=============  ======  ==========================  =====================
name           layers  sizes                       class
=============  ======  ==========================  =====================
MLP v1         3       128, 128, 128               ``MLPPolicy``
MLP v2         3       32, 16, 8                   ``MLPPolicy``
MLP v3         5       32, 32, 32, 32, 32          ``MLPPolicy``
LeNet          6       2x(conv, maxpool), dense    ``LeNetPolicy``
RLScheduler    3       32, 16, 8 (kernel)          ``KernelPolicy``
=============  ======  ==========================  =====================

The kernel network applies a tiny shared MLP to *each job independently*
("like a window"), so its output is equivariant to job reordering and its
parameter count stays under 1,000 (paper §IV-B1) — vs tens of thousands
for the flat MLPs that must learn order-invariance from data.
"""

from __future__ import annotations

import numpy as np

from .layers import Conv2d, Dense, Flatten, Module, Sequential, max_pool2d
from .tensor import Tensor

__all__ = [
    "KernelPolicy",
    "MLPPolicy",
    "LeNetPolicy",
    "ValueMLP",
    "POLICY_PRESETS",
    "make_policy",
]


class KernelPolicy(Module):
    """RLScheduler's kernel-based policy network (Fig. 5).

    A 3-layer perceptron (default 32/16/8) slides over the job axis: the
    same weights score every job from its own feature vector, then the
    scores are soft-maxed across jobs.  Reordering the input jobs reorders
    the output probabilities identically.
    """

    def __init__(
        self,
        job_features: int,
        hidden: tuple[int, ...] = (32, 16, 8),
        activation: str = "relu",
        seed: int = 0,
    ):
        if not hidden:
            raise ValueError("kernel network needs at least one hidden layer")
        rng = np.random.default_rng(seed)
        dims = (job_features, *hidden)
        layers = [
            Dense(dims[i], dims[i + 1], activation=activation, rng=rng)
            for i in range(len(hidden))
        ]
        layers.append(Dense(dims[-1], 1, activation="identity", rng=rng))
        self.kernel = Sequential(*layers)
        self.job_features = job_features

    def forward(self, obs: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        obs = np.asarray(obs, dtype=np.float64)
        if obs.ndim == 2:  # single observation (M, F)
            obs = obs[None]
        b, m, f = obs.shape
        if f != self.job_features:
            raise ValueError(f"expected {self.job_features} features per job, got {f}")
        x = Tensor(obs.reshape(b * m, f))
        scores = self.kernel(x)          # (B*M, 1)
        return scores.reshape(b, m)

    def score_rows(self, rows: np.ndarray) -> np.ndarray:
        """Scores for bare job rows, ``(K, F) -> (K,)``.

        Because the kernel scores each job independently, acting paths can
        skip the zero-padded slots entirely: gather the valid rows, score
        K rows instead of B·M, and scatter back.  Row results are
        identical to :meth:`forward` on the padded batch.
        """
        x = Tensor(np.asarray(rows, dtype=np.float64))
        return self.kernel(x).numpy().reshape(-1)

    def score_rows_grad(self, rows: np.ndarray) -> Tensor:
        """Gradient-capable twin of :meth:`score_rows`, ``(K, F) -> (K,)``.

        The segment-batched PPO update forwards only the valid job rows
        of a minibatch through this entry point and backpropagates
        through the returned graph — same arithmetic as :meth:`forward`
        on the padded batch, minus the padded rows.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.job_features:
            raise ValueError(
                f"expected (K, {self.job_features}) rows, got {rows.shape}"
            )
        return self.kernel(Tensor(rows)).reshape(-1)


class MLPPolicy(Module):
    """Flat MLP over the concatenated observation (Table IV v1/v2/v3).

    Order-*sensitive*: the first layer mixes all job slots, so the network
    has to learn queue-order invariance from data — the paper's point.
    """

    def __init__(
        self,
        max_obsv_size: int,
        job_features: int,
        hidden: tuple[int, ...] = (32, 16, 8),
        activation: str = "relu",
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        dims = (max_obsv_size * job_features, *hidden)
        layers = [
            Dense(dims[i], dims[i + 1], activation=activation, rng=rng)
            for i in range(len(hidden))
        ]
        layers.append(Dense(dims[-1], max_obsv_size, activation="identity", rng=rng))
        self.mlp = Sequential(*layers)
        self.max_obsv_size = max_obsv_size
        self.job_features = job_features

    def forward(self, obs: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        obs = np.asarray(obs, dtype=np.float64)
        if obs.ndim == 2:
            obs = obs[None]
        b = obs.shape[0]
        x = Tensor(obs.reshape(b, -1))
        return self.mlp(x)               # (B, M)


class LeNetPolicy(Module):
    """LeNet-style CNN (Table IV row 4): 2×(conv, maxpool) then dense.

    Treats the observation matrix as a 1-channel image.  The pooling and
    the final dense layer mix job positions, which (per the paper) degrades
    training despite the convolutional front-end resembling our kernel.
    """

    def __init__(
        self,
        max_obsv_size: int,
        job_features: int,
        channels: tuple[int, int] = (6, 16),
        dense_size: int = 64,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(1, channels[0], kernel_size=3, pad=1, rng=rng)
        self.conv2 = Conv2d(channels[0], channels[1], kernel_size=3, pad=1, rng=rng)
        h, w = max_obsv_size, job_features
        h, w = h // 2, w // 2  # after pool1
        h, w = h // 2, w // 2  # after pool2
        if h == 0 or w == 0:
            raise ValueError(
                f"observation {max_obsv_size}x{job_features} too small for LeNet"
            )
        self.flatten = Flatten()
        self.dense1 = Dense(channels[1] * h * w, dense_size, activation="relu", rng=rng)
        self.dense2 = Dense(dense_size, max_obsv_size, activation="identity", rng=rng)
        self.max_obsv_size = max_obsv_size
        self.job_features = job_features

    def forward(self, obs: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        obs = np.asarray(obs, dtype=np.float64)
        if obs.ndim == 2:
            obs = obs[None]
        b, m, f = obs.shape
        x = Tensor(obs.reshape(b, 1, m, f))
        x = max_pool2d(self.conv1(x), 2)
        x = max_pool2d(self.conv2(x), 2)
        x = self.flatten(x)
        x = self.dense1(x)
        return self.dense2(x)


class ValueMLP(Module):
    """The value network (Fig. 6): a 3-layer MLP over the flattened state."""

    def __init__(
        self,
        max_obsv_size: int,
        job_features: int,
        hidden: tuple[int, ...] = (128, 64, 32),
        seed: int = 1,
    ):
        rng = np.random.default_rng(seed)
        dims = (max_obsv_size * job_features, *hidden)
        layers = [
            Dense(dims[i], dims[i + 1], activation="tanh", rng=rng)
            for i in range(len(hidden))
        ]
        layers.append(Dense(dims[-1], 1, activation="identity", rng=rng))
        self.mlp = Sequential(*layers)

    def forward(self, obs: np.ndarray) -> Tensor:
        obs = np.asarray(obs, dtype=np.float64)
        if obs.ndim == 2:
            obs = obs[None]
        b = obs.shape[0]
        x = Tensor(obs.reshape(b, -1))
        return self.mlp(x).reshape(b)    # (B,)


#: Table IV presets: name -> factory(max_obsv_size, job_features, seed).
POLICY_PRESETS = {
    "kernel": lambda m, f, seed=0: KernelPolicy(f, hidden=(32, 16, 8), seed=seed),
    "mlp_v1": lambda m, f, seed=0: MLPPolicy(m, f, hidden=(128, 128, 128), seed=seed),
    "mlp_v2": lambda m, f, seed=0: MLPPolicy(m, f, hidden=(32, 16, 8), seed=seed),
    "mlp_v3": lambda m, f, seed=0: MLPPolicy(m, f, hidden=(32, 32, 32, 32, 32), seed=seed),
    "lenet": lambda m, f, seed=0: LeNetPolicy(m, f, seed=seed),
}


def make_policy(name: str, max_obsv_size: int, job_features: int, seed: int = 0) -> Module:
    """Instantiate a Table IV policy network by preset name."""
    try:
        factory = POLICY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown policy preset {name!r}; known: {sorted(POLICY_PRESETS)}"
        ) from None
    return factory(max_obsv_size, job_features, seed)
