"""Reverse-mode automatic differentiation on NumPy arrays.

The paper's stack (TensorFlow) is unavailable offline, so this module
provides the minimal-but-complete tensor engine the PPO implementation
needs: broadcast-aware elementwise ops, matmul, reductions, indexing, and
the nonlinearities used by the policy / value networks.  Gradients flow
through a topologically-sorted backward pass over the recorded graph.

Design notes (following the hpc-parallel guide idioms):

* all math is vectorised NumPy; the graph bookkeeping is thin Python;
* broadcasting is handled once in :func:`_unbroadcast`, which sums gradient
  contributions over broadcast axes so every binary op stays simple;
* float64 throughout — the networks are tiny (<10k parameters), so
  numerical robustness is worth more than memory.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (the inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class _GradMode:
    enabled = True


class no_grad:
    """Context manager disabling graph recording (inference-time speed)."""

    def __enter__(self):
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc):
        _GradMode.enabled = self._prev
        return False


class Tensor:
    """An array node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # make np.ndarray defer to our __radd__ etc.

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and _GradMode.enabled
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GradMode.enabled and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, do not mutate during training)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # gradient accumulation / backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this node (defaults to d(self)/d(self) = 1)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)

        # Topological order via iterative DFS (recursion would overflow on
        # deep PPO graphs).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # matmul
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError(
                f"matmul supports 2-D tensors only, got {self.shape} @ {other.shape}"
            )
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # shape manipulation / indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        axes_t = axes if axes else None
        out_data = self.data.transpose(axes_t)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_t is None:
                self._accumulate(grad.transpose())
            else:
                self._accumulate(grad.transpose(np.argsort(axes_t)))

        return Tensor._from_op(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # clipping / selection (PPO objective needs these)
    # ------------------------------------------------------------------
    def clip(self, lo: float, hi: float) -> "Tensor":
        out_data = np.clip(self.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= lo) & (self.data <= hi)
                self._accumulate(grad * inside)

        return Tensor._from_op(out_data, (self,), backward)

    def minimum(self, other) -> "Tensor":
        """Elementwise min; on ties the gradient goes to ``self`` (like np)."""
        other = self._lift(other)
        take_self = self.data <= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return Tensor._from_op(out_data, (self, other), backward)

    def maximum(self, other) -> "Tensor":
        other = self._lift(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return Tensor._from_op(out_data, (self, other), backward)

    def where(self, condition: np.ndarray, other) -> "Tensor":
        """``condition ? self : other`` with a constant boolean condition."""
        other = self._lift(other)
        cond = np.asarray(condition, dtype=bool)
        out_data = np.where(cond, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * cond)
            if other.requires_grad:
                other._accumulate(grad * ~cond)

        return Tensor._from_op(out_data, (self, other), backward)


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    __slots__ = ()

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.requires_grad = True  # immune to no_grad at construction time
