"""Reverse-mode automatic differentiation on NumPy arrays.

The paper's stack (TensorFlow) is unavailable offline, so this module
provides the minimal-but-complete tensor engine the PPO implementation
needs: broadcast-aware elementwise ops, matmul, reductions, indexing, and
the nonlinearities used by the policy / value networks.  Gradients flow
through a topologically-sorted backward pass over the recorded graph.

Design notes (following the hpc-parallel guide idioms):

* all math is vectorised NumPy; the graph bookkeeping is thin Python;
* broadcasting is handled once in :func:`_unbroadcast`, which sums gradient
  contributions over broadcast axes so every binary op stays simple;
* float64 throughout — the networks are tiny (<10k parameters), so
  numerical robustness is worth more than memory.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "gather_rows",
    "scatter_rows",
    "segment_sum",
    "segment_max",
    "segment_logsumexp",
]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (the inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class _GradMode:
    enabled = True


class no_grad:
    """Context manager disabling graph recording (inference-time speed)."""

    def __enter__(self):
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc):
        _GradMode.enabled = self._prev
        return False


class Tensor:
    """An array node in the autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # make np.ndarray defer to our __radd__ etc.

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and _GradMode.enabled
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GradMode.enabled and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, do not mutate during training)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # gradient accumulation / backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this node (defaults to d(self)/d(self) = 1)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)

        # Topological order via iterative DFS (recursion would overflow on
        # deep PPO graphs).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # matmul
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError(
                f"matmul supports 2-D tensors only, got {self.shape} @ {other.shape}"
            )
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # shape manipulation / indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        axes_t = axes if axes else None
        out_data = self.data.transpose(axes_t)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_t is None:
                self._accumulate(grad.transpose())
            else:
                self._accumulate(grad.transpose(np.argsort(axes_t)))

        return Tensor._from_op(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # clipping / selection (PPO objective needs these)
    # ------------------------------------------------------------------
    def clip(self, lo: float, hi: float) -> "Tensor":
        out_data = np.clip(self.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= lo) & (self.data <= hi)
                self._accumulate(grad * inside)

        return Tensor._from_op(out_data, (self,), backward)

    def minimum(self, other) -> "Tensor":
        """Elementwise min; on ties the gradient goes to ``self`` (like np)."""
        other = self._lift(other)
        take_self = self.data <= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return Tensor._from_op(out_data, (self, other), backward)

    def maximum(self, other) -> "Tensor":
        other = self._lift(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * take_self)
            if other.requires_grad:
                other._accumulate(grad * ~take_self)

        return Tensor._from_op(out_data, (self, other), backward)

    def where(self, condition: np.ndarray, other) -> "Tensor":
        """``condition ? self : other`` with a constant boolean condition."""
        other = self._lift(other)
        cond = np.asarray(condition, dtype=bool)
        out_data = np.where(cond, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * cond)
            if other.requires_grad:
                other._accumulate(grad * ~cond)

        return Tensor._from_op(out_data, (self, other), backward)


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    __slots__ = ()

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self.requires_grad = True  # immune to no_grad at construction time


# ---------------------------------------------------------------------------
# sparse / segment ops (the CSR scatter-segment idiom)
# ---------------------------------------------------------------------------
# These power the segment-batched PPO update: a flat (total_valid_rows, F)
# matrix plus an ``indptr`` segment-split vector replaces a padded dense
# (batch, M) block, so forward/backward cost scales with the number of
# *valid* rows, not with the padding.  ``indptr`` follows the CSR
# convention: segment ``s`` spans ``x[indptr[s]:indptr[s+1]]``; it is plain
# integer data and never receives gradients.


def _check_indptr(indptr, n_rows: int) -> np.ndarray:
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr.ndim != 1 or indptr.size < 2:
        raise ValueError("indptr must be 1-D with at least two entries")
    if indptr[0] != 0 or indptr[-1] != n_rows:
        raise ValueError(
            f"indptr must start at 0 and end at {n_rows}, got "
            f"[{indptr[0]}, ..., {indptr[-1]}]"
        )
    if (np.diff(indptr) < 0).any():
        raise ValueError("indptr must be non-decreasing")
    return indptr


def _segment_ids(indptr: np.ndarray) -> np.ndarray:
    """Row -> segment index, ``(K,)`` (empty segments contribute no rows)."""
    return np.repeat(np.arange(indptr.size - 1), np.diff(indptr))


def gather_rows(x: Tensor, index) -> Tensor:
    """Select rows along axis 0: ``out[k] = x[index[k]]``.

    The VJP scatter-adds the incoming gradient back to the source rows,
    so duplicate indices accumulate — gathering is how a per-segment
    quantity (a normaliser, a shift) is broadcast back to its rows with
    gradients intact.
    """
    x = Tensor._lift(x)
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            full = np.zeros_like(x.data)
            np.add.at(full, index, grad)
            x._accumulate(full)

    return Tensor._from_op(out_data, (x,), backward)


def scatter_rows(x: Tensor, index, n_rows: int) -> Tensor:
    """Scatter rows into a zero matrix: ``out[index[k]] += x[k]``.

    ``out`` has ``n_rows`` rows (remaining dims follow ``x``); rows never
    written stay zero.  Duplicate indices sum.  The VJP is a gather — the
    exact adjoint pair of :func:`gather_rows`.
    """
    x = Tensor._lift(x)
    index = np.asarray(index, dtype=np.int64)
    if index.ndim != 1 or index.size != x.data.shape[0]:
        raise ValueError(
            f"index must be 1-D with one entry per row of x, got "
            f"{index.shape} for {x.data.shape}"
        )
    if index.size and (index.min() < 0 or index.max() >= n_rows):
        raise ValueError(f"index out of range [0, {n_rows})")
    out_data = np.zeros((n_rows,) + x.data.shape[1:], dtype=np.float64)
    np.add.at(out_data, index, x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[index])

    return Tensor._from_op(out_data, (x,), backward)


def segment_sum(x: Tensor, indptr) -> Tensor:
    """Per-segment sum along axis 0: ``out[s] = x[indptr[s]:indptr[s+1]].sum(0)``.

    Empty segments sum to zero.  The VJP repeats each segment's gradient
    over that segment's rows.
    """
    x = Tensor._lift(x)
    n = x.data.shape[0]
    indptr = _check_indptr(indptr, n)
    lengths = np.diff(indptr)
    # reduceat quirks: an empty segment returns x[start] instead of 0 and a
    # start == n is out of bounds, so reduce over the non-empty segments
    # only (their starts are strictly increasing and share the boundaries
    # of the full indptr) and leave empty ones at the zero identity.
    nonempty = lengths > 0
    out_data = np.zeros((lengths.size,) + x.data.shape[1:])
    if nonempty.any():
        out_data[nonempty] = np.add.reduceat(
            x.data, indptr[:-1][nonempty], axis=0
        )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.repeat(grad, lengths, axis=0))

    return Tensor._from_op(out_data, (x,), backward)


def segment_max(x: Tensor, indptr) -> Tensor:
    """Per-segment maximum along axis 0 (empty segments read ``-inf``).

    The VJP routes each segment's gradient to the rows attaining the
    maximum (ties share the full gradient, like :meth:`Tensor.where`
    against an equality condition).
    """
    x = Tensor._lift(x)
    n = x.data.shape[0]
    indptr = _check_indptr(indptr, n)
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    out_data = np.full((lengths.size,) + x.data.shape[1:], -np.inf)
    if nonempty.any():
        out_data[nonempty] = np.maximum.reduceat(
            x.data, indptr[:-1][nonempty], axis=0
        )

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        winners = x.data == np.repeat(out_data, lengths, axis=0)
        x._accumulate(np.repeat(grad, lengths, axis=0) * winners)

    return Tensor._from_op(out_data, (x,), backward)


def segment_logsumexp(x: Tensor, indptr) -> Tensor:
    """Per-segment ``log(sum(exp(x)))``, stability-shifted by the segment max.

    The shift is detached (a constant w.r.t. gradients — it cancels
    exactly in the true derivative), so the VJP is the in-segment
    softmax: ``d out[s] / d x[k] = exp(x[k] - out[s])``.  Segments must
    be non-empty: an empty segment has no finite logsumexp.
    """
    x = Tensor._lift(x)
    n = x.data.shape[0]
    indptr = _check_indptr(indptr, n)
    lengths = np.diff(indptr)
    if (lengths == 0).any():
        raise ValueError("segment_logsumexp requires non-empty segments")
    shift = np.maximum.reduceat(x.data, indptr[:-1], axis=0)
    shifted = x.data - np.repeat(shift, lengths, axis=0)
    out_data = np.log(np.add.reduceat(np.exp(shifted), indptr[:-1], axis=0)) + shift

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            softmax = np.exp(x.data - np.repeat(out_data, lengths, axis=0))
            x._accumulate(np.repeat(grad, lengths, axis=0) * softmax)

    return Tensor._from_op(out_data, (x,), backward)
