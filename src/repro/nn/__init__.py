"""From-scratch NumPy neural-network stack: reverse-mode autodiff tensors,
layers (dense/conv/pool), the paper's policy & value networks, optimizers."""

from .tensor import Parameter, Tensor, no_grad
from .layers import Conv2d, Dense, Flatten, Module, Sequential, conv2d, max_pool2d
from .functional import (
    entropy,
    greedy_action,
    log_prob_of,
    masked_log_softmax,
    sample_action,
    sample_action_batch,
)
from .networks import (
    POLICY_PRESETS,
    KernelPolicy,
    LeNetPolicy,
    MLPPolicy,
    ValueMLP,
    make_policy,
)
from .optim import SGD, Adam, clip_grad_norm

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "Module",
    "Dense",
    "Sequential",
    "Conv2d",
    "Flatten",
    "conv2d",
    "max_pool2d",
    "masked_log_softmax",
    "log_prob_of",
    "entropy",
    "sample_action",
    "sample_action_batch",
    "greedy_action",
    "KernelPolicy",
    "MLPPolicy",
    "LeNetPolicy",
    "ValueMLP",
    "POLICY_PRESETS",
    "make_policy",
    "Adam",
    "SGD",
    "clip_grad_norm",
]
