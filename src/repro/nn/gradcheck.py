"""Finite-difference gradient checking for the autodiff engine.

Every hand-written VJP in :mod:`repro.nn.tensor` is validated against
central differences by ``tests/test_gradcheck.py`` through this utility.
It lives in the package (not the test tree) so new ops can be checked
interactively and other suites can reuse it.

The check projects the (possibly non-scalar) op output onto a fixed
random vector before differentiating — a plain ``sum()`` reduction can
miss sign errors that cancel across output elements, a weighted
projection cannot.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Parameter, Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    f: Callable[[], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``f()`` w.r.t. ``x`` (in-place probes).

    ``f`` is a thunk re-evaluating the function from ``x``'s *current*
    contents; each element of ``x`` is displaced by ``±eps`` in turn.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def gradcheck(
    op: Callable[..., Tensor],
    *inputs: np.ndarray,
    eps: float = 1e-6,
    rtol: float = 1e-5,
    atol: float = 1e-7,
    seed: int = 0,
    check: "Sequence[bool] | None" = None,
) -> None:
    """Assert that ``op``'s autodiff gradients match central differences.

    ``op`` maps Tensor arguments to one Tensor; ``inputs`` are the float
    arrays to differentiate at.  ``check`` optionally marks which inputs
    to differentiate (default: all of them).  Raises ``AssertionError``
    with the offending input's index on mismatch.
    """
    inputs = tuple(np.asarray(x, dtype=np.float64) for x in inputs)
    if check is None:
        check = [True] * len(inputs)
    params = [
        Parameter(x.copy()) if c else Tensor(x.copy())
        for x, c in zip(inputs, check)
    ]
    out = op(*params)
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=out.shape)
    (out * Tensor(weights)).sum().backward()

    for i, (x, c) in enumerate(zip(inputs, check)):
        if not c:
            continue
        probe = x.copy()
        others = [
            Tensor(p if j != i else probe)
            for j, p in enumerate(inputs)
        ]

        def f() -> float:
            return float((op(*others).numpy() * weights).sum())

        numeric = numerical_gradient(f, probe, eps=eps)
        analytic = params[i].grad
        assert analytic is not None, f"input {i}: no gradient accumulated"
        np.testing.assert_allclose(
            analytic, numeric, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch on input {i}",
        )
