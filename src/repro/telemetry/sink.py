"""Versioned JSONL sink, schema validator, and summary-tree renderer.

The on-disk format is ``repro/telemetry@1``: one JSON object per line.
The first line is always a ``run`` event carrying the schema tag and run
metadata; subsequent lines are ``epoch`` (per-epoch training summaries),
``heartbeat`` (study cell progress), and ``snapshot`` (the merged
instrument state, usually once at end of run).  Every line carries a
wall-clock ``ts`` — this file is the *only* place wall-clock time exists;
instruments themselves time with monotonic clocks and results never see
either.

Non-finite floats are serialized as ``null`` so the file parses with any
strict JSON reader.
"""

from __future__ import annotations

import json
import logging
import math
import time
from contextlib import contextmanager

from . import core
from .core import TelemetrySnapshot, histogram_quantile

__all__ = [
    "SCHEMA",
    "TelemetrySink",
    "validate_jsonl",
    "render_summary",
    "telemetry_run",
]

SCHEMA = "repro/telemetry@1"
EVENTS = ("run", "epoch", "heartbeat", "snapshot")

logger = logging.getLogger("repro.telemetry")


def _json_safe(obj):
    """Replace non-finite floats with None, recursively."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


class TelemetrySink:
    """Append-only JSONL writer for one run.

    Lines are flushed as written so a live run can be tailed.  The sink
    never reads instruments itself — callers pass snapshots/fields in —
    which keeps it trivially safe to open even when telemetry is
    otherwise disabled.
    """

    def __init__(self, path: str, meta: dict | None = None):
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.write_event("run", schema=SCHEMA, meta=dict(meta or {}))

    def write_event(self, event: str, **fields) -> None:
        if event not in EVENTS:
            raise ValueError(f"unknown event type {event!r}")
        if self._fh is None:
            return
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        self._fh.write(json.dumps(_json_safe(record), sort_keys=True) + "\n")
        self._fh.flush()

    def write_snapshot(self, snap: TelemetrySnapshot, **fields) -> None:
        self.write_event("snapshot", data=snap.to_dict(), **fields)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- validation ---------------------------------------------------------
def _check(cond: bool, line_no: int, msg: str) -> None:
    if not cond:
        raise ValueError(f"telemetry jsonl line {line_no}: {msg}")


def _validate_stats(entry: dict, line_no: int, what: str) -> None:
    _check(isinstance(entry, dict), line_no, f"{what} entry must be an object")
    for key in ("count", "sum"):
        _check(key in entry, line_no, f"{what} entry missing {key!r}")
    _check(
        isinstance(entry["count"], int) and entry["count"] >= 0,
        line_no, f"{what} count must be a non-negative int",
    )


def validate_jsonl(path: str) -> dict:
    """Validate a file against ``repro/telemetry@1``.

    Raises ``ValueError`` with the offending line number on any problem;
    returns ``{"lines": n, "events": {event: count}, "snapshot": dict|None}``
    (the *last* snapshot's data) on success.
    """
    events: dict[str, int] = {}
    last_snapshot = None
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    _check(len(lines) > 0, 0, "file is empty")
    for i, raw in enumerate(lines, start=1):
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"telemetry jsonl line {i}: not JSON ({exc})") from None
        _check(isinstance(record, dict), i, "line must be a JSON object")
        event = record.get("event")
        _check(event in EVENTS, i, f"unknown event {event!r}")
        _check(
            isinstance(record.get("ts"), (int, float)), i, "missing numeric ts"
        )
        if i == 1:
            _check(event == "run", i, "first line must be a run event")
            _check(
                record.get("schema") == SCHEMA,
                i, f"schema must be {SCHEMA!r}, got {record.get('schema')!r}",
            )
        if event == "epoch":
            _check(
                isinstance(record.get("epoch"), int) and record["epoch"] >= 0,
                i, "epoch event needs a non-negative int 'epoch'",
            )
            phases = record.get("phases")
            _check(
                phases is None or isinstance(phases, dict),
                i, "'phases' must be an object or null",
            )
        if event == "heartbeat":
            _check(
                isinstance(record.get("cell"), str),
                i, "heartbeat event needs a string 'cell'",
            )
        if event == "snapshot":
            data = record.get("data")
            _check(isinstance(data, dict), i, "snapshot needs an object 'data'")
            for table in ("counters", "gauges", "histograms", "spans"):
                _check(
                    isinstance(data.get(table), dict),
                    i, f"snapshot data missing table {table!r}",
                )
            for name, value in data["counters"].items():
                _check(
                    isinstance(value, (int, float)),
                    i, f"counter {name!r} must be numeric",
                )
            for name, entry in data["gauges"].items():
                _validate_stats(entry, i, f"gauge {name!r}")
            for name, entry in data["spans"].items():
                _validate_stats(entry, i, f"span {name!r}")
            for name, entry in data["histograms"].items():
                _validate_stats(entry, i, f"histogram {name!r}")
                _check(
                    isinstance(entry.get("bounds"), list)
                    and isinstance(entry.get("counts"), list),
                    i, f"histogram {name!r} needs 'bounds' and 'counts' lists",
                )
                _check(
                    len(entry["counts"]) == len(entry["bounds"]) + 1,
                    i, f"histogram {name!r}: len(counts) != len(bounds)+1",
                )
                _check(
                    sum(entry["counts"]) == entry["count"],
                    i, f"histogram {name!r}: bucket counts do not sum to count",
                )
            last_snapshot = data
        events[event] = events.get(event, 0) + 1
    _check(events.get("snapshot", 0) >= 1, len(lines), "no snapshot event")
    return {"lines": len(lines), "events": events, "snapshot": last_snapshot}


# -- summary tree -------------------------------------------------------
def _fmt_sec(seconds: float) -> str:
    if seconds != seconds:  # nan
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_summary(snap: TelemetrySnapshot) -> str:
    """Human-readable end-of-run tree for one (merged) snapshot.

    Spans are nested by their slash-joined paths; histograms report
    interpolated p50/p90/p99.  Worker-labelled entries are aggregated
    first — per-worker detail lives in the sink, not the summary.
    """
    agg = snap.aggregated()
    lines = ["telemetry summary"]
    if agg.spans:
        lines.append("  spans")
        for path in sorted(agg.spans):
            st = agg.spans[path]
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            mean = st["sum"] / st["count"] if st["count"] else math.nan
            lines.append(
                f"  {'  ' * (depth + 1)}{name:<28} n {st['count']:<7} "
                f"total {_fmt_sec(st['sum']):<9} mean {_fmt_sec(mean)}"
            )
    if agg.counters:
        lines.append("  counters")
        for name in sorted(agg.counters):
            lines.append(f"    {name:<30} {agg.counters[name]}")
    if agg.gauges:
        lines.append("  gauges")
        for name in sorted(agg.gauges):
            st = agg.gauges[name]
            mean = st["sum"] / st["count"] if st["count"] else math.nan
            last = st.get("last")
            last_s = "-" if last is None else f"{last:.4g}"
            lines.append(
                f"    {name:<30} last {last_s:<10} mean {mean:.4g} "
                f"n {st['count']}"
            )
    if agg.histograms:
        lines.append("  histograms")
        for name in sorted(agg.histograms):
            st = agg.histograms[name]
            p50 = histogram_quantile(st, 0.50)
            p90 = histogram_quantile(st, 0.90)
            p99 = histogram_quantile(st, 0.99)
            lines.append(
                f"    {name:<30} n {st['count']:<7} "
                f"p50 {p50:.4g}  p90 {p90:.4g}  p99 {p99:.4g}  "
                f"max {st['max']:.4g}"
            )
    return "\n".join(lines)


# -- run-scoped wiring helper -------------------------------------------
@contextmanager
def telemetry_run(config, meta: dict | None = None):
    """Honour a :class:`repro.config.TelemetryConfig` around one entry point.

    Disabled config (or ``None``) yields ``None`` and costs nothing.  If
    a registry is already active (an enclosing run owns telemetry), this
    records into it and does not open a second sink.  Otherwise it
    activates a fresh registry, opens the JSONL sink when a path is
    configured, and on exit writes the final merged snapshot and logs the
    summary tree.
    """
    if config is None or not config.enabled or core.enabled():
        yield None
        return
    with core.session() as reg:
        sink = TelemetrySink(config.path, meta=meta) if config.path else None
        try:
            yield sink
        finally:
            snap = reg.snapshot()
            if sink is not None:
                sink.write_snapshot(snap)
                sink.close()
            if config.summary and not snap.empty:
                logger.info(render_summary(snap))
