"""Low-overhead, mergeable telemetry for the training/serving stack.

See :mod:`repro.telemetry.core` for the instrument model and
:mod:`repro.telemetry.sink` for the ``repro/telemetry@1`` JSONL format.

Typical use::

    from repro import telemetry

    with telemetry.session() as reg:
        with reg.span("epoch.rollout"):
            ...
        reg.counter("engine.events").add(n)
        snap = reg.snapshot()
"""

from .core import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    TelemetrySnapshot,
    DURATION_BOUNDS_SEC,
    INT_BOUNDS,
    current,
    enabled,
    histogram_quantile,
    session,
    set_active,
    strip_labels,
)
from .sink import (  # noqa: F401
    SCHEMA,
    TelemetrySink,
    render_summary,
    telemetry_run,
    validate_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "TelemetrySnapshot",
    "DURATION_BOUNDS_SEC",
    "INT_BOUNDS",
    "current",
    "enabled",
    "histogram_quantile",
    "session",
    "set_active",
    "strip_labels",
    "SCHEMA",
    "TelemetrySink",
    "render_summary",
    "telemetry_run",
    "validate_jsonl",
]
