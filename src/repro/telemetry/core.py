"""Telemetry core: counters, gauges, histograms, spans, mergeable snapshots.

One :class:`Telemetry` registry holds every instrument recorded by a
process.  Instruments are cheap plain-Python accumulators — no threads,
no locks, no I/O — so they can live inside the simulator and rollout hot
paths.  The registry is *disabled* by default: a disabled registry hands
out shared no-op instruments and a no-op span, so instrumented code costs
one attribute access and nothing else until someone opts in.

Design rules that everything else builds on:

* **Monotonic clocks only.**  Spans time with ``time.perf_counter``;
  wall-clock timestamps exist only in the JSONL sink (:mod:`.sink`),
  never inside instruments, so telemetry can never perturb results.
* **Snapshots merge associatively and commutatively.**  Counters add,
  histogram buckets add, span/gauge stats combine by (count, sum, min,
  max).  A gauge's ``last`` value survives a merge only when it is
  unambiguous — otherwise it degrades to ``None`` rather than inventing
  an ordering between workers.  This is what lets worker snapshots ride
  result messages in any arrival order and still aggregate exactly.
* **Worker labels are part of the name.**  ``snapshot.labelled(worker=1)``
  rewrites ``runtime.ipc.queue_wait_sec`` to
  ``runtime.ipc.queue_wait_sec{worker=1}``; ``aggregated()`` strips the
  labels back off and merges.  Labelled entries are per-worker *views* of
  the same measurements, not additional measurements.

The module-level active registry (:func:`current`, :func:`session`,
:func:`set_active`) is process-global and single-threaded by design —
every process in the runtime (parent and pool workers) is single-threaded
where it records.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "TelemetrySnapshot",
    "DURATION_BOUNDS_SEC",
    "INT_BOUNDS",
    "current",
    "enabled",
    "session",
    "set_active",
]

#: log-spaced duration buckets, 1 µs .. 500 s (upper-inclusive edges).
DURATION_BOUNDS_SEC: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 3) for m in (1.0, 2.5, 5.0)
)

#: small-integer buckets for queue depths / staleness / chunk sizes.
INT_BOUNDS: tuple[float, ...] = (
    0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384,
    512, 768, 1024,
)


# -- instruments --------------------------------------------------------
class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value plus a (count, sum, min, max) running summary."""

    __slots__ = ("last", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.last = None
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates.

    ``bounds`` are upper-inclusive bucket edges; values above the last
    edge land in an overflow bucket, so ``counts`` has ``len(bounds)+1``
    entries.  Bounds are fixed at creation — merging requires identical
    bounds, which holds by construction because every process creates the
    instrument from the same call site.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds=DURATION_BOUNDS_SEC) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _bucket(self, value: float) -> int:
        # upper-inclusive edges: the first bound >= value owns the value,
        # anything past the last edge lands in the overflow bucket
        return bisect_left(self.bounds, value)


def histogram_quantile(hist: dict, q: float) -> float:
    """Estimate the ``q``-quantile of a serialized histogram entry.

    Linear interpolation inside the containing bucket, clamped to the
    observed ``[min, max]`` so estimates never exceed real data range.
    ``nan`` when the histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = hist["count"]
    if total == 0:
        return math.nan
    bounds, counts = hist["bounds"], hist["counts"]
    target = q * total
    cum = 0.0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cum + n >= target:
            lo = hist["min"] if i == 0 else bounds[i - 1]
            hi = hist["max"] if i == len(bounds) else min(bounds[i], hist["max"])
            lo = max(lo, hist["min"])
            if hi <= lo:
                return float(lo)
            frac = (target - cum) / n
            return float(min(max(lo + frac * (hi - lo), hist["min"]), hist["max"]))
        cum += n
    return float(hist["max"])


# -- no-op instruments (the disabled path) ------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def add(self, n=1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value) -> None:
        pass


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()
    elapsed = 0.0
    path = ""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


# -- snapshots ----------------------------------------------------------
def _merge_stats(a: dict, b: dict) -> dict:
    out = {
        "count": a["count"] + b["count"],
        "sum": a["sum"] + b["sum"],
        "min": min(a["min"], b["min"]),
        "max": max(a["max"], b["max"]),
    }
    if "last" in a or "last" in b:
        if a["count"] == 0:
            out["last"] = b.get("last")
        elif b["count"] == 0:
            out["last"] = a.get("last")
        elif a.get("last") == b.get("last"):
            out["last"] = a.get("last")
        else:  # no cross-worker ordering exists; refuse to invent one
            out["last"] = None
    return out


def _merge_table(a: dict, b: dict, merge_one) -> dict:
    out = {k: dict(v) if isinstance(v, dict) else v for k, v in a.items()}
    for k, v in b.items():
        if k in out:
            out[k] = merge_one(out[k], v)
        else:
            out[k] = dict(v) if isinstance(v, dict) else v
    return out


def _merge_hist(a: dict, b: dict) -> dict:
    if tuple(a["bounds"]) != tuple(b["bounds"]):
        raise ValueError("cannot merge histograms with different bounds")
    out = _merge_stats(a, b)
    out["bounds"] = list(a["bounds"])
    out["counts"] = [x + y for x, y in zip(a["counts"], b["counts"])]
    return out


def _label_suffix(labels: dict) -> str:
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


def strip_labels(name: str) -> str:
    """``"a.b{worker=1}"`` -> ``"a.b"``."""
    i = name.find("{")
    return name if i < 0 else name[:i]


@dataclass
class TelemetrySnapshot:
    """A picklable, JSON-safe, mergeable view of one registry's state."""

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms or self.spans)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Associative + commutative combine; returns a new snapshot."""
        return TelemetrySnapshot(
            counters=_merge_table(
                self.counters, other.counters, lambda a, b: a + b
            ),
            gauges=_merge_table(self.gauges, other.gauges, _merge_stats),
            histograms=_merge_table(self.histograms, other.histograms, _merge_hist),
            spans=_merge_table(self.spans, other.spans, _merge_stats),
        )

    def labelled(self, **labels) -> "TelemetrySnapshot":
        """Rewrite every metric name with a ``{k=v,...}`` label suffix."""
        suffix = _label_suffix({k: str(v) for k, v in labels.items()})

        def tag(table: dict) -> dict:
            return {name + suffix: dict(v) if isinstance(v, dict) else v
                    for name, v in table.items()}

        return TelemetrySnapshot(
            counters=tag(self.counters),
            gauges=tag(self.gauges),
            histograms=tag(self.histograms),
            spans=tag(self.spans),
        )

    def aggregated(self) -> "TelemetrySnapshot":
        """Strip labels and merge: the cross-worker totals view."""
        out = TelemetrySnapshot()
        for table_name in ("counters", "gauges", "histograms", "spans"):
            table = getattr(self, table_name)
            merge_one = {
                "counters": lambda a, b: a + b,
                "gauges": _merge_stats,
                "histograms": _merge_hist,
                "spans": _merge_stats,
            }[table_name]
            dest = getattr(out, table_name)
            for name, v in table.items():
                base = strip_labels(name)
                v = dict(v) if isinstance(v, dict) else v
                dest[base] = merge_one(dest[base], v) if base in dest else v
        return out

    def to_dict(self) -> dict:
        return {
            "counters": {k: v for k, v in self.counters.items()},
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "spans": {k: dict(v) for k, v in self.spans.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySnapshot":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges={k: dict(v) for k, v in data.get("gauges", {}).items()},
            histograms={k: dict(v) for k, v in data.get("histograms", {}).items()},
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
        )


# -- spans --------------------------------------------------------------
class _Span:
    """Timing context manager; nests through the registry's span stack.

    The recorded name is the slash-joined path of enclosing spans
    (``"epoch.rollout/probe"``), so traces read as a tree.  ``__exit__``
    always records — an exception inside the span still produces a
    sample, and the stack unwinds correctly because ``finally`` semantics
    of the ``with`` statement guarantee ``__exit__`` runs.
    """

    __slots__ = ("_reg", "_name", "path", "_start", "elapsed")

    def __init__(self, reg: "Telemetry", name: str):
        self._reg = reg
        self._name = name
        self.path = name
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Span":
        stack = self._reg._span_stack
        self.path = f"{stack[-1]}/{self._name}" if stack else self._name
        stack.append(self.path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._start
        stack = self._reg._span_stack
        if stack and stack[-1] == self.path:
            stack.pop()
        self._reg.add_span_time(self.path, self.elapsed)
        return False


# -- registry -----------------------------------------------------------
class Telemetry:
    """Instrument registry; hands out no-ops when ``enabled`` is False."""

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, dict] = {}
        self._span_stack: list[str] = []

    # -- instrument factories (cached by name) --------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str, bounds=DURATION_BOUNDS_SEC) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(bounds)
        return inst

    def span(self, name: str):
        """Nestable timing context manager (``with reg.span("x") as sp:``)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def add_span_time(self, path: str, seconds: float, count: int = 1) -> None:
        """Record accumulated time directly (hot loops batch their timing
        locally and flush once instead of entering a span per step)."""
        if not self.enabled:
            return
        entry = self._spans.get(path)
        if entry is None:
            entry = self._spans[path] = {
                "count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf,
            }
        seconds = float(seconds)
        per = seconds / count if count else 0.0
        entry["count"] += count
        entry["sum"] += seconds
        if per < entry["min"]:
            entry["min"] = per
        if per > entry["max"]:
            entry["max"] = per

    def span_seconds(self, path: str) -> float:
        """Total recorded seconds under ``path`` (0.0 when absent)."""
        entry = self._spans.get(path)
        return entry["sum"] if entry else 0.0

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={
                k: {"last": g.last, "count": g.count, "sum": g.sum,
                    "min": g.min, "max": g.max}
                for k, g in self._gauges.items()
            },
            histograms={
                k: {"bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "sum": h.sum, "min": h.min, "max": h.max}
                for k, h in self._histograms.items()
            },
            spans={k: dict(v) for k, v in self._spans.items()},
        )

    def drain(self) -> TelemetrySnapshot:
        """Snapshot then reset — the per-message delta workers piggyback."""
        snap = self.snapshot()
        self.reset()
        return snap

    def absorb(self, snap: TelemetrySnapshot, worker: int | None = None) -> None:
        """Merge a (worker) snapshot delta into this registry's state.

        With ``worker`` set, entries are stored under worker-labelled
        names; :meth:`TelemetrySnapshot.aggregated` recovers the totals.
        """
        if not self.enabled or snap is None or snap.empty:
            return
        if worker is not None:
            snap = snap.labelled(worker=worker)
        for name, value in snap.counters.items():
            self.counter(name).add(value)
        for name, st in snap.gauges.items():
            g = self.gauge(name)
            if st["count"] == 0:
                continue
            g.count += st["count"]
            g.sum += st["sum"]
            g.min = min(g.min, st["min"])
            g.max = max(g.max, st["max"])
            g.last = st.get("last")
        for name, st in snap.histograms.items():
            h = self.histogram(name, bounds=st["bounds"])
            if tuple(h.bounds) != tuple(st["bounds"]):
                raise ValueError(f"histogram bounds mismatch for {name!r}")
            h.counts = [x + y for x, y in zip(h.counts, st["counts"])]
            h.count += st["count"]
            h.sum += st["sum"]
            h.min = min(h.min, st["min"])
            h.max = max(h.max, st["max"])
        for name, st in snap.spans.items():
            entry = self._spans.get(name)
            if entry is None:
                self._spans[name] = dict(st)
                continue
            entry["count"] += st["count"]
            entry["sum"] += st["sum"]
            entry["min"] = min(entry["min"], st["min"])
            entry["max"] = max(entry["max"], st["max"])

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        # deliberately keep the span stack: open spans record on exit

    def has_data(self) -> bool:
        return bool(
            self._counters or self._gauges or self._histograms or self._spans
        )


# -- module-level active registry ---------------------------------------
_DISABLED = Telemetry(enabled=False)
_active: Telemetry = _DISABLED


def current() -> Telemetry:
    """The process-wide active registry (disabled unless opted in)."""
    return _active


def enabled() -> bool:
    return _active.enabled


def set_active(registry: Telemetry | None) -> Telemetry:
    """Swap the active registry; returns the previous one (for restore)."""
    global _active
    prev = _active
    _active = registry if registry is not None else _DISABLED
    return prev


@contextmanager
def session(registry: Telemetry | None = None):
    """Scoped enablement: activate a fresh (or given) registry, restore on
    exit.  The standard way tests and benchmarks opt in."""
    reg = registry if registry is not None else Telemetry(enabled=True)
    prev = set_active(reg)
    try:
        yield reg
    finally:
        set_active(prev)
