"""Declarative scenarios: ``name → WorkloadSpec + ClusterSpec + EvalProtocol``.

A *scenario* packages everything that defines one evaluation setting of
the paper's protocol — which workload to generate (or replay), which
cluster to run it on, and how to score schedulers on it — behind a single
registered name, following the environment-variant-registry pattern of
gym-style suites.  Scenarios are plain frozen dataclasses of plain data:
they pickle to runtime workers, serialize to JSON (``to_dict`` /
``from_dict``) for artifacts, and compose with the seeding convention of
:mod:`repro.runtime.seeding` so every derived random stream is keyed by
``(seed, stream tag, index)``.

Layers
------
:class:`WorkloadSpec`
    names a trace generator (any :func:`repro.workloads.load_trace` name,
    so real ``.swf`` replays work via ``swf_dir``) plus declarative
    parameter overrides for arrival/shape variants (bursty, diurnal,
    small clusters) and an optional synthetic memory-demand model for
    memory-constrained scenarios.
:class:`~repro.sim.cluster.ClusterSpec`
    the multi-resource cluster (processors + optional memory capacity).
:class:`EvalProtocol`
    the paper's test protocol knobs (sequences × length, metric,
    backfill), turned into an :class:`repro.config.EvalConfig` on demand.
:class:`Scenario`
    the named bundle, held in a process-wide registry
    (:func:`register_scenario` / :func:`get_scenario` /
    :func:`available_scenarios`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.config import EnvConfig, EvalConfig, RuntimeConfig, ScenarioConfig
from repro.runtime.seeding import stream_rng
from repro.sim.cluster import ClusterSpec
from repro.workloads.archive import TRACE_SPECS, generate_archive_trace, load_trace
from repro.workloads.lublin import LUBLIN_1, LUBLIN_2, generate_lublin_trace
from repro.workloads.swf import SWFTrace

__all__ = [
    "WorkloadSpec",
    "EvalProtocol",
    "Scenario",
    "attach_memory_demands",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "resolve_scenario_config",
    "DEFAULT_SCENARIO",
]

#: RNG stream tag for synthetic memory demands (see runtime.seeding: every
#: derived stream is keyed [seed, tag, *indices] so sibling streams never
#: collide with sequence-sampling or action streams)
_MEM_STREAM = 15_485_863

#: the scenario equivalent to the historical hard-coded setup — pinned
#: bit-identical to the pre-scenario code paths by the golden tests
DEFAULT_SCENARIO = "lublin-256"


def attach_memory_demands(
    trace: SWFTrace,
    mean_per_proc: float,
    sigma: float = 0.5,
    seed: int = 0,
    cap_total: float | None = None,
) -> SWFTrace:
    """Copy ``trace`` with synthetic per-processor memory requests.

    Archive traces mostly carry the SWF "unknown" sentinel for
    ``requested_mem``, so memory-constrained scenarios synthesise demands:
    lognormal per-processor requests with mean ``mean_per_proc`` (abstract
    units), drawn from the dedicated ``(seed, mem-stream)`` RNG stream.
    ``cap_total`` clamps each job's *total* demand (``per_proc * procs``)
    so every job still fits an idle cluster of that capacity.
    """
    if mean_per_proc <= 0:
        raise ValueError(f"mean_per_proc must be positive, got {mean_per_proc}")
    rng = stream_rng(seed, _MEM_STREAM)
    mu = math.log(mean_per_proc) - 0.5 * sigma * sigma
    per_proc = rng.lognormal(mean=mu, sigma=sigma, size=len(trace))
    jobs = []
    for j, m in zip(trace.jobs, per_proc):
        c = j.copy()
        if cap_total is not None:
            m = min(m, cap_total / c.requested_procs)
            # The division can round up so that m * procs overshoots the
            # cap by an ulp, which the engine would reject; step the
            # per-proc figure down until the *total* demand fits.
            while m * c.requested_procs > cap_total:
                m = math.nextafter(m, 0.0)
        c.requested_mem = float(m)
        jobs.append(c)
    return SWFTrace(jobs=jobs, header=trace.header, name=trace.name)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one workload.

    ``trace`` is any name :func:`repro.workloads.load_trace` accepts
    (``Lublin-1``/``Lublin-2``, the archive calibrations, or a real
    ``.swf`` replay when ``swf_dir`` holds ``<trace>.swf``).  ``params``
    are generator-parameter overrides applied with ``dataclasses.replace``
    to the named :class:`~repro.workloads.lublin.LublinParams` /
    :class:`~repro.workloads.archive.ArchiveTraceSpec` — how arrival
    variants (bursty, diurnal) and resized clusters are expressed without
    code.  ``mem_mean_per_proc`` switches on the synthetic memory-demand
    model of :func:`attach_memory_demands`.
    """

    trace: str
    n_jobs: int = 10_000
    seed: int = 0
    params: tuple = ()             # sorted (key, value) generator overrides
    mem_mean_per_proc: float | None = None
    mem_sigma: float = 0.5
    swf_dir: str | None = None

    def __post_init__(self) -> None:
        if not self.trace:
            raise ValueError("workload trace name must be non-empty")
        if self.n_jobs <= 0:
            raise ValueError(f"n_jobs must be positive, got {self.n_jobs}")
        if isinstance(self.params, Mapping):  # accept dicts, store canonical
            object.__setattr__(self, "params", tuple(sorted(self.params.items())))
        else:
            object.__setattr__(self, "params", tuple(self.params))

    # ------------------------------------------------------------------
    def build(
        self,
        n_jobs: int | None = None,
        seed: int | None = None,
        mem_cap_total: float | None = None,
    ) -> SWFTrace:
        """Generate (or load) the trace this spec describes."""
        n = self.n_jobs if n_jobs is None else n_jobs
        s = self.seed if seed is None else seed
        overrides = dict(self.params)
        name = self.trace
        if overrides and name in ("Lublin-1", "Lublin-2"):
            base = LUBLIN_1 if name == "Lublin-1" else LUBLIN_2
            trace = generate_lublin_trace(
                dataclasses.replace(base, **overrides),
                n_jobs=n, seed=s, name=name,
            )
        elif overrides and name in TRACE_SPECS:
            trace = generate_archive_trace(
                dataclasses.replace(TRACE_SPECS[name], **overrides),
                n_jobs=n, seed=s,
            )
        elif overrides:
            raise ValueError(
                f"workload {name!r} accepts no generator overrides "
                f"(got {sorted(overrides)})"
            )
        else:
            # No overrides: delegate to load_trace so the default path —
            # including real-.swf replays — is byte-identical to calling
            # load_trace() directly (the golden-equivalence property).
            trace = load_trace(name, n_jobs=n, seed=s, swf_dir=self.swf_dir)
        if self.mem_mean_per_proc is not None:
            trace = attach_memory_demands(
                trace, self.mem_mean_per_proc, sigma=self.mem_sigma,
                seed=s, cap_total=mem_cap_total,
            )
        return trace

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trace": self.trace,
            "n_jobs": self.n_jobs,
            "seed": self.seed,
            "params": dict(self.params),
            "mem_mean_per_proc": self.mem_mean_per_proc,
            "mem_sigma": self.mem_sigma,
            "swf_dir": self.swf_dir,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(
            trace=data["trace"],
            n_jobs=data.get("n_jobs", 10_000),
            seed=data.get("seed", 0),
            params=data.get("params", ()),
            mem_mean_per_proc=data.get("mem_mean_per_proc"),
            mem_sigma=data.get("mem_sigma", 0.5),
            swf_dir=data.get("swf_dir"),
        )


@dataclass(frozen=True)
class EvalProtocol:
    """The paper's test-time protocol for one scenario (§V-C2 defaults)."""

    n_sequences: int = 10
    sequence_length: int = 1024
    seed: int = 42
    metric: str = "bsld"
    backfill: bool | str = False

    def __post_init__(self) -> None:
        if self.n_sequences <= 0 or self.sequence_length <= 0:
            raise ValueError("n_sequences and sequence_length must be positive")

    def eval_config(
        self,
        runtime: RuntimeConfig | None = None,
        n_sequences: int | None = None,
        sequence_length: int | None = None,
    ) -> EvalConfig:
        """Materialise the protocol as an :class:`repro.config.EvalConfig`."""
        return EvalConfig(
            n_sequences=n_sequences or self.n_sequences,
            sequence_length=sequence_length or self.sequence_length,
            seed=self.seed,
            runtime=runtime or RuntimeConfig(),
        )

    def to_dict(self) -> dict:
        return {
            "n_sequences": self.n_sequences,
            "sequence_length": self.sequence_length,
            "seed": self.seed,
            "metric": self.metric,
            "backfill": self.backfill,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvalProtocol":
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """One named workload × cluster × protocol setting."""

    name: str
    description: str
    workload: WorkloadSpec
    cluster: ClusterSpec
    protocol: EvalProtocol = field(default_factory=EvalProtocol)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")

    # ------------------------------------------------------------------
    def build_trace(
        self, n_jobs: int | None = None, seed: int | None = None
    ) -> SWFTrace:
        """The scenario's workload, memory demands clamped to its cluster."""
        return self.workload.build(
            n_jobs=n_jobs, seed=seed, mem_cap_total=self.cluster.memory
        )

    def env_config(self, base: EnvConfig | None = None) -> EnvConfig:
        """An :class:`EnvConfig` suited to this scenario.

        Memory-constrained clusters get the per-resource observation
        columns, and a protocol that evaluates with backfilling trains
        with the same backfill mode (otherwise a policy learns a
        different environment than it is scored in).  A ``base`` that
        already enables either setting is left alone; the default
        scenario changes nothing, so its observations stay bit-identical
        to the pre-scenario layout.
        """
        base = base or EnvConfig()
        updates: dict = {}
        if self.cluster.memory is not None and not base.memory_features:
            updates["memory_features"] = True
            updates["job_features"] = max(base.job_features, 9)
        if self.protocol.backfill and not base.backfill:
            updates["backfill"] = self.protocol.backfill
        return dataclasses.replace(base, **updates) if updates else base

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "workload": self.workload.to_dict(),
            "cluster": self.cluster.to_dict(),
            "protocol": self.protocol.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            workload=WorkloadSpec.from_dict(data["workload"]),
            cluster=ClusterSpec.from_dict(data["cluster"]),
            protocol=EvalProtocol.from_dict(data.get("protocol", {})),
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Add a scenario to the process-wide registry (returned unchanged)."""
    if not overwrite and scenario.name in _REGISTRY:
        raise ValueError(
            f"scenario {scenario.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: "str | Scenario") -> Scenario:
    """Look up a registered scenario (a Scenario passes through)."""
    if isinstance(name, Scenario):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {available_scenarios()}"
        ) from None


def available_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def resolve_scenario_config(config: ScenarioConfig) -> tuple[Scenario, SWFTrace]:
    """Resolve a :class:`repro.config.ScenarioConfig` into the scenario
    and its built trace, honouring the config's size/seed overrides."""
    scenario = get_scenario(config.name)
    trace = scenario.build_trace(n_jobs=config.n_jobs, seed=config.seed)
    return scenario, trace
