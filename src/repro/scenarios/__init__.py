"""Scenario subsystem: declarative workload × cluster × protocol settings.

``get_scenario("lublin-256")`` (and friends) resolve named scenarios;
``api.evaluate`` / ``api.compare`` / ``api.scenario_matrix`` accept the
names directly, and the CLI exposes the registry via
``python -m repro scenarios``.
"""

from .core import (
    DEFAULT_SCENARIO,
    EvalProtocol,
    Scenario,
    WorkloadSpec,
    attach_memory_demands,
    available_scenarios,
    get_scenario,
    register_scenario,
    resolve_scenario_config,
)
from .builtin import BUILTIN_SCENARIOS

__all__ = [
    "DEFAULT_SCENARIO",
    "EvalProtocol",
    "Scenario",
    "WorkloadSpec",
    "attach_memory_demands",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "resolve_scenario_config",
    "BUILTIN_SCENARIOS",
]
