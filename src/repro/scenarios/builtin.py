"""The built-in scenario catalogue.

Ten settings spanning the axes the paper's protocol varies — trace family,
arrival pattern, cluster size — plus the memory-constrained variant the
multi-resource cluster model enables.  ``lublin-256`` is the default and
reproduces the historical hard-coded setup bit-for-bit (golden test).

Every scenario is registered at import; :mod:`repro.scenarios` re-exports
the registry accessors.  Adding a scenario is one
:func:`~repro.scenarios.core.register_scenario` call — see the README's
"Scenarios" section.
"""

from __future__ import annotations

from repro.sim.cluster import ClusterSpec

from .core import EvalProtocol, Scenario, WorkloadSpec, register_scenario

__all__ = ["BUILTIN_SCENARIOS"]


BUILTIN_SCENARIOS: tuple[Scenario, ...] = (
    # -- the paper's synthetic baselines --------------------------------
    Scenario(
        name="lublin-256",
        description="Lublin-1 on the paper's 256-proc cluster (default; "
                    "bit-identical to the pre-scenario setup)",
        workload=WorkloadSpec(trace="Lublin-1"),
        cluster=ClusterSpec(n_procs=256),
    ),
    Scenario(
        name="lublin-256-wide",
        description="Lublin-2: shorter, wider jobs on the 256-proc cluster",
        workload=WorkloadSpec(trace="Lublin-2"),
        cluster=ClusterSpec(n_procs=256),
    ),
    # -- arrival-pattern variants ---------------------------------------
    Scenario(
        name="lublin-diurnal",
        description="Lublin-1 with a near-full diurnal arrival swing "
                    "(working-hours congestion, idle nights)",
        workload=WorkloadSpec(
            trace="Lublin-1", params={"daily_cycle_strength": 0.9}
        ),
        cluster=ClusterSpec(n_procs=256),
    ),
    Scenario(
        name="bursty-sdsc",
        description="SDSC-SP2 arrivals with tripled burst intensity and "
                    "longer burst episodes",
        workload=WorkloadSpec(
            trace="SDSC-SP2",
            params={"burst_factor": 12.0, "burst_fraction": 0.15,
                    "burst_mean_length": 60},
        ),
        cluster=ClusterSpec(n_procs=128),
    ),
    # -- cluster-size variants ------------------------------------------
    Scenario(
        name="lublin-64",
        description="Lublin-1 rescaled to a small 64-proc cluster",
        workload=WorkloadSpec(trace="Lublin-1", params={"n_procs": 64}),
        cluster=ClusterSpec(n_procs=64),
    ),
    Scenario(
        name="anl-intrepid",
        description="ANL-Intrepid calibration: 163,840 procs, very wide jobs",
        workload=WorkloadSpec(trace="ANL-Intrepid"),
        cluster=ClusterSpec(n_procs=163_840),
    ),
    # -- archive-trace replays (real .swf files slot in via swf_dir) -----
    Scenario(
        name="sdsc-sp2",
        description="SDSC-SP2 replay (calibrated generator, or the real "
                    ".swf when available)",
        workload=WorkloadSpec(trace="SDSC-SP2"),
        cluster=ClusterSpec(n_procs=128),
    ),
    Scenario(
        name="hpc2n",
        description="HPC2N replay: long jobs, one dominant user (u17)",
        workload=WorkloadSpec(trace="HPC2N"),
        cluster=ClusterSpec(n_procs=240),
    ),
    Scenario(
        name="pik-iplex",
        description="PIK-IPLEX replay: rare catastrophic congestion bursts",
        workload=WorkloadSpec(trace="PIK-IPLEX"),
        cluster=ClusterSpec(n_procs=2560),
        protocol=EvalProtocol(backfill=True),
    ),
    # -- multi-resource variant -----------------------------------------
    Scenario(
        name="lublin-256-mem",
        description="Lublin-1 with synthetic memory demands on a cluster "
                    "whose memory (192 units) binds before its 256 procs",
        workload=WorkloadSpec(
            trace="Lublin-1", mem_mean_per_proc=1.0, mem_sigma=0.75
        ),
        cluster=ClusterSpec(n_procs=256, memory=192.0),
    ),
)

for _s in BUILTIN_SCENARIOS:
    register_scenario(_s)
