"""Closed-loop load generator for the scheduler daemon.

Drives a running daemon over its real socket front end: one connection
per tenant, submissions interleaved round-robin, each request waiting
for its response before the next is sent (closed loop — the offered
load adapts to service capacity instead of overrunning it).  Measures
client-observed request latency and end-to-end requests/sec, then
drains every tenant and folds in the service-side decision-latency
percentiles, producing the ``serving`` section recorded in
``BENCH_perf.json`` by ``benchmarks/perf/run_perf.py``.
"""

from __future__ import annotations

from time import perf_counter

from repro.workloads.job import Job
from repro.workloads.sampler import SequenceSampler

from .client import ServeClient

__all__ = ["trace_jobs", "run_closed_loop"]


def trace_jobs(
    trace, n_jobs: int, seed: int = 0, max_procs: int | None = None
) -> list[Job]:
    """A submission stream sampled from a workload trace, arrival order.

    ``max_procs`` clamps each job's processor request so the stream fits
    a tenant whose cluster is smaller than the trace's original machine
    (the daemon rejects jobs that can never be allocated).
    """
    sequence = SequenceSampler(trace, n_jobs, seed=seed).sample()
    if max_procs is not None:
        for job in sequence:
            job.requested_procs = min(job.requested_procs, max_procs)
    return sorted(sequence, key=lambda j: (j.submit_time, j.job_id))


def _percentile(sorted_values: list[float], q: float):
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_closed_loop(
    host: str,
    port: int,
    jobs_by_tenant: dict[str, list[Job]],
    drain: bool = True,
) -> dict:
    """Submit every job, round-robin across tenants; return the report.

    The report is hardware-comparable within one run only (wall-clock
    throughput); the decision-latency percentiles come from the service's
    own per-decision timer, so they exclude socket and JSON overhead.
    """
    clients = {
        tenant: ServeClient(host, port) for tenant in jobs_by_tenant
    }
    try:
        streams = {tenant: iter(jobs) for tenant, jobs in jobs_by_tenant.items()}
        latencies: list[float] = []
        per_tenant = {tenant: {"requests": 0, "decisions": 0}
                      for tenant in jobs_by_tenant}
        requests = decisions = 0
        t_start = perf_counter()
        while streams:
            for tenant in list(streams):
                job = next(streams[tenant], None)
                if job is None:
                    del streams[tenant]
                    continue
                t0 = perf_counter()
                response = clients[tenant].submit(job, tenant=tenant)
                latencies.append(perf_counter() - t0)
                requests += 1
                decisions += response["decisions"]
                per_tenant[tenant]["requests"] += 1
                per_tenant[tenant]["decisions"] += response["decisions"]
        wall = perf_counter() - t_start
        report = {
            "requests": requests,
            "wall_sec": wall,
            "requests_per_sec": requests / wall if wall > 0 else None,
            "decisions": decisions,
        }
        latencies.sort()
        report["request_latency_sec"] = {
            "p50": _percentile(latencies, 0.50),
            "p99": _percentile(latencies, 0.99),
            "mean": sum(latencies) / len(latencies) if latencies else None,
        }
        if drain:
            stats = {}
            for tenant, client in clients.items():
                final = client.drain(tenant=tenant)
                decisions += final.get("decisions", 0)
                per_tenant[tenant]["decisions"] += final.get("decisions", 0)
                stats[tenant] = {
                    k: v for k, v in final.items() if k not in ("v", "ok", "stop")
                }
            report["decisions"] = decisions
            report["tenants"] = stats
            # service-side decision latency, aggregated over tenants by
            # total order statistics would need raw samples; report the
            # worst tenant's percentiles — the conservative gate input
            decision_p50 = [
                s["decision_latency_sec"]["p50"] for s in stats.values()
                if s["decision_latency_sec"]["p50"] is not None
            ]
            decision_p99 = [
                s["decision_latency_sec"]["p99"] for s in stats.values()
                if s["decision_latency_sec"]["p99"] is not None
            ]
            report["decision_latency_sec"] = {
                "p50": max(decision_p50) if decision_p50 else None,
                "p99": max(decision_p99) if decision_p99 else None,
            }
        report["per_tenant"] = per_tenant
        return report
    finally:
        for client in clients.values():
            client.close()
