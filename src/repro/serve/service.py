"""Policy inference over the online engine: one service per tenant.

:class:`SchedulerService` owns one
:class:`~repro.sim.core.OnlineSchedulingEngine` plus a decision policy
(heuristic or loaded :class:`~repro.schedulers.RLSchedulerPolicy` through
its sparse ``score_rows``/``DeployFeatureCache`` hot path) and turns
submissions into scheduling decisions.  Memory is bounded by the *live*
job set: completed jobs are harvested out of the engine, their rows are
evicted from the policy's deploy feature cache, and the finished-record
history kept for ``status`` queries is capped.

:class:`SchedulerRouter` multiplexes N independent tenants — separate
clusters, policies, clocks, and telemetry labels — behind the one wire
protocol, mapping request dicts to responses.  Both classes are
synchronous and single-threaded by design: the asyncio front end
(:mod:`repro.serve.server`) serialises requests, so no locking exists
anywhere in the decision path.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from time import perf_counter

from repro.config import ServeConfig, TenantConfig
from repro.schedulers import RLSchedulerPolicy, make_scheduler
from repro.sim import ClusterSpec, OnlineSchedulingEngine
from repro.telemetry import core as _telemetry

from .protocol import ProtocolError, job_from_wire, job_to_wire, ok_response

__all__ = ["ServiceError", "SchedulerService", "SchedulerRouter"]

#: client-visible decision latencies kept for exact percentiles (stats)
_LATENCY_WINDOW = 65_536


class ServiceError(ValueError):
    """A well-formed request the service cannot honour (bad tenant/job)."""


class SchedulerService:
    """One tenant: an online engine + a policy + bounded bookkeeping."""

    def __init__(self, tenant: TenantConfig, completed_history: int = 10_000):
        self.tenant = tenant
        self.spec = ClusterSpec(tenant.n_procs, memory=tenant.memory)
        self.engine = OnlineSchedulingEngine(self.spec, backfill=tenant.backfill)
        if tenant.policy_path is not None:
            # retarget through the checked setter: a policy trained for a
            # different cluster size is re-aimed here, not mid-decision
            self.policy = RLSchedulerPolicy.load(tenant.policy_path).retarget(
                self.spec, name=f"RL:{tenant.name}"
            )
        else:
            self.policy = make_scheduler(tenant.scheduler)
        self._completed_history = completed_history
        self._records: dict[int, dict] = {}  # live jobs (pending/running)
        self._finished: OrderedDict[int, dict] = OrderedDict()
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.n_decisions = 0
        self.n_finished = 0
        # per-tenant labelled instruments, resolved once (no-op when off)
        reg = _telemetry.current()
        suffix = f"{{tenant={tenant.name}}}"
        self._tel_decision = (
            reg.histogram(f"serve.decision_latency_sec{suffix}")
            if reg.enabled
            else None
        )
        self._tel_decisions = (
            reg.counter(f"serve.decisions{suffix}") if reg.enabled else None
        )

    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> dict:
        """Admit one wire job; pump decisions; report the resulting state."""
        job = job_from_wire(payload)
        try:
            admitted = self.engine.submit(job)
        except ValueError as exc:
            raise ServiceError(str(exc)) from None
        self._records[admitted.job_id] = {
            "job_id": admitted.job_id,
            "tenant": self.tenant.name,
            "state": "pending",
            "submit_time": admitted.submit_time,
            "requested_procs": admitted.requested_procs,
        }
        decisions = self.pump()
        return {
            "job": job_to_wire(admitted),
            "state": self._state_of(admitted.job_id),
            "decisions": decisions,
        }

    def advance(self, until: float) -> dict:
        """External time reached ``until``; run any decisions that unblocks."""
        if not isinstance(until, (int, float)) or math.isnan(until):
            raise ServiceError(f"advance needs a numeric 'until', got {until!r}")
        self.engine.advance(float(until))
        return {"decisions": self.pump(), "now": self.engine.now}

    def drain(self) -> dict:
        """Run every queued job to completion (horizon lifts to infinity)."""
        self.engine.drain()
        decisions = self.pump()
        assert self.engine.idle, "engine not quiescent after drain"
        # "decisions" is the *delta* made by this drain, consistent with
        # submit/advance; the cumulative count lives in stats()["decisions"],
        # which would otherwise clobber it
        return {**self.stats(), "decisions": decisions}

    def status(self, job_id) -> dict:
        try:
            job_id = int(job_id)
        except (TypeError, ValueError):
            raise ServiceError(f"status needs an integer job_id, got {job_id!r}") from None
        record = self._records.get(job_id) or self._finished.get(job_id)
        if record is None:
            raise ServiceError(
                f"unknown job {job_id} on tenant {self.tenant.name!r} "
                "(never submitted, or evicted from the finished history)"
            )
        return {"job": dict(record)}

    def stats(self) -> dict:
        latencies = sorted(self._latencies)
        engine = self.engine
        return {
            "tenant": self.tenant.name,
            "scheduler": self.policy.name,
            "n_procs": self.spec.n_procs,
            "submitted": engine.n_submitted,
            "started": engine.n_started,
            "finished": self.n_finished,
            "pending": len(engine.pending),
            "running": len(engine._running),
            "free_procs": engine.cluster.free_procs,
            "now": engine.now,
            "decisions": self.n_decisions,
            "decision_latency_sec": {
                "count": len(latencies),
                "p50": _percentile(latencies, 0.50),
                "p99": _percentile(latencies, 0.99),
                "mean": sum(latencies) / len(latencies) if latencies else None,
            },
        }

    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Resolve every decision reachable at the current horizon."""
        engine = self.engine
        made = 0
        while engine.next_decision():
            t0 = perf_counter()
            best = self.policy.select(engine.pending, engine.now, engine.cluster)
            started = engine.commit(best)
            elapsed = perf_counter() - t0
            self._latencies.append(elapsed)
            if self._tel_decision is not None:
                self._tel_decision.record(elapsed)
                self._tel_decisions.add()
            self.n_decisions += 1
            made += 1
            if not started:
                break  # stalled at the horizon; a later submit/advance resumes
        self._reconcile()
        return made

    def _reconcile(self) -> None:
        """Sync job records with the engine; harvest + bound completions."""
        for job in self.engine._running.values():
            record = self._records.get(job.job_id)
            if record is not None and record["state"] != "running":
                record["state"] = "running"
                record["start_time"] = job.start_time
        finished = self.engine.take_completed()
        if not finished:
            return
        self.n_finished += len(finished)
        # departed jobs leave the policy's deploy feature cache too —
        # without this a long-lived daemon grows that cache forever
        forget = getattr(self.policy, "forget_jobs", None)
        if forget is not None:
            forget([job.job_id for job in finished])
        for job in finished:
            record = self._records.pop(job.job_id, None) or {
                "job_id": job.job_id,
                "tenant": self.tenant.name,
                "submit_time": job.submit_time,
                "requested_procs": job.requested_procs,
            }
            record.update(
                state="finished",
                start_time=job.start_time,
                finish_time=job.end_time,
                wait_time=job.start_time - job.submit_time,
            )
            self._finished[job.job_id] = record
        while len(self._finished) > self._completed_history:
            self._finished.popitem(last=False)

    def _state_of(self, job_id: int) -> str:
        record = self._records.get(job_id) or self._finished.get(job_id)
        return record["state"] if record else "unknown"


def _percentile(sorted_values: list[float], q: float):
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class SchedulerRouter:
    """Dispatch wire requests across the configured tenants."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.services = {
            tenant.name: SchedulerService(
                tenant, completed_history=config.completed_history
            )
            for tenant in config.tenants
        }

    # ------------------------------------------------------------------
    def service(self, name: str | None) -> SchedulerService:
        if name is None:
            if len(self.services) == 1:
                return next(iter(self.services.values()))
            if "default" in self.services:
                return self.services["default"]
            raise ServiceError(
                "request must name a tenant; this daemon serves "
                f"{sorted(self.services)}"
            )
        service = self.services.get(name)
        if service is None:
            raise ServiceError(
                f"unknown tenant {name!r}; this daemon serves "
                f"{sorted(self.services)}"
            )
        return service

    def dispatch(self, msg: dict) -> dict:
        """One validated request in, one response dict out.

        ``ProtocolError``/``ServiceError`` raised here are client errors;
        the server maps them to ``ok: false`` responses.
        """
        op = msg["op"]
        tenant = msg.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise ProtocolError(f"tenant must be a string, got {tenant!r}")
        if op == "ping":
            return ok_response(tenants=sorted(self.services))
        if op == "submit":
            if "job" not in msg:
                raise ProtocolError("submit needs a 'job' object")
            return ok_response(**self.service(tenant).submit(msg["job"]))
        if op == "status":
            if "job_id" not in msg:
                raise ProtocolError("status needs a 'job_id'")
            return ok_response(**self.service(tenant).status(msg["job_id"]))
        if op == "advance":
            if "until" not in msg:
                raise ProtocolError("advance needs an 'until' timestamp")
            return ok_response(**self.service(tenant).advance(msg["until"]))
        if op == "stats":
            if tenant is None:
                return ok_response(
                    tenants={
                        name: service.stats()
                        for name, service in self.services.items()
                    }
                )
            return ok_response(**self.service(tenant).stats())
        if op == "drain":
            if tenant is None:
                return ok_response(
                    stop=bool(msg.get("stop", False)),
                    tenants={
                        name: service.drain()
                        for name, service in self.services.items()
                    },
                )
            return ok_response(
                stop=bool(msg.get("stop", False)),
                **self.service(tenant).drain(),
            )
        raise ProtocolError(f"unhandled op {op!r}")  # unreachable: decode vets op

    def drain_all(self) -> dict:
        """Graceful-shutdown path: every tenant runs to quiescence."""
        return {name: service.drain() for name, service in self.services.items()}
