"""Versioned JSON line protocol for the scheduler daemon.

One request per line, one response per line (NDJSON over a stream
socket).  Every message carries the protocol version so clients and
servers fail loudly across incompatible upgrades instead of
misinterpreting fields::

    -> {"v": 1, "op": "submit", "tenant": "batch",
        "job": {"job_id": 7, "run_time": 600, "requested_procs": 4}}
    <- {"v": 1, "ok": true, "job": {...}, "state": "running",
        "decisions": 1}

Operations:

``submit``
    admit one job to a tenant's cluster; the response reports the job's
    state after the decision pump ran (it may already be running).
``status``
    look up one job by ``job_id``.
``stats``
    per-tenant engine/service counters (all tenants when none is named).
``advance``
    declare that external time reached ``until`` — drives decisions for
    jobs whose start had to wait on the clock.
``drain``
    run every queued job to completion; with ``"stop": true`` the daemon
    shuts down gracefully after responding.
``ping``
    liveness/version probe.

The shared :func:`job_from_wire` / :func:`job_to_wire` codecs are the
single source of truth for the job schema — the CLI client and the load
generator both speak through them.
"""

from __future__ import annotations

import json

from repro.workloads.job import Job

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ProtocolError",
    "encode",
    "decode",
    "ok_response",
    "error_response",
    "job_from_wire",
    "job_to_wire",
]

PROTOCOL_VERSION = 1
OPS = ("submit", "status", "stats", "advance", "drain", "ping")

#: wire job schema: (field, required, converter)
_JOB_FIELDS = (
    ("job_id", True, int),
    ("run_time", True, float),
    ("requested_procs", True, int),
    ("submit_time", False, float),
    ("requested_time", False, float),
    ("requested_mem", False, float),
    ("user_id", False, int),
)


class ProtocolError(ValueError):
    """A malformed or version-incompatible wire message."""


def encode(msg: dict) -> bytes:
    """One NDJSON frame (compact separators keep the hot path small)."""
    return (json.dumps(msg, separators=(",", ":")) + "\n").encode()


def decode(line: bytes | str) -> dict:
    """Parse and validate one request line."""
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError("request must be a JSON object")
    version = msg.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    op = msg.get("op")
    if op not in OPS:
        raise ProtocolError(f"op must be one of {OPS}, got {op!r}")
    return msg


def ok_response(**fields) -> dict:
    return {"v": PROTOCOL_VERSION, "ok": True, **fields}


def error_response(message: str) -> dict:
    return {"v": PROTOCOL_VERSION, "ok": False, "error": message}


def job_from_wire(payload) -> Job:
    """Build a :class:`Job` from its wire dict (shared client/server)."""
    if not isinstance(payload, dict):
        raise ProtocolError("job must be a JSON object")
    kwargs = {}
    for field, required, conv in _JOB_FIELDS:
        if field in payload:
            try:
                kwargs[field] = conv(payload[field])
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"job field {field!r} must be numeric, "
                    f"got {payload[field]!r}"
                ) from None
        elif required:
            raise ProtocolError(f"job is missing required field {field!r}")
    unknown = set(payload) - {f for f, _, _ in _JOB_FIELDS}
    if unknown:
        raise ProtocolError(f"unknown job fields: {sorted(unknown)}")
    kwargs.setdefault("submit_time", 0.0)
    # schedulers only ever see the requested runtime; default it to the
    # actual one so minimal submissions still plan sensibly
    kwargs.setdefault("requested_time", kwargs["run_time"])
    try:
        return Job(**kwargs)
    except ValueError as exc:
        raise ProtocolError(f"invalid job: {exc}") from None


def job_to_wire(job: Job) -> dict:
    wire = {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "run_time": job.run_time,
        "requested_procs": job.requested_procs,
        "requested_time": job.requested_time,
    }
    if job.requested_mem > 0:
        wire["requested_mem"] = job.requested_mem
    if job.user_id >= 0:
        wire["user_id"] = job.user_id
    return wire
