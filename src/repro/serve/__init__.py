"""Scheduler-as-a-service: the online serving layer.

The batch entry points replay pre-sampled sequences; this package runs
the same scheduling/admission/backfill logic as a long-lived daemon over
the open-ended :class:`~repro.sim.core.OnlineSchedulingEngine`:

* :mod:`~repro.serve.protocol` — versioned JSON line protocol
  (``submit`` / ``status`` / ``stats`` / ``advance`` / ``drain``);
* :mod:`~repro.serve.service` — per-tenant policy inference
  (:class:`SchedulerService`) and the multi-tenant
  :class:`SchedulerRouter`;
* :mod:`~repro.serve.server` — the asyncio socket front end with
  graceful SIGTERM/``drain`` shutdown;
* :mod:`~repro.serve.client` — the blocking client the ``repro submit``
  CLI and the load generator share;
* :mod:`~repro.serve.loadgen` — the closed-loop load generator behind
  the ``serving`` section of ``BENCH_perf.json``.

Configuration enters through :class:`repro.config.ServeConfig` /
:class:`repro.config.TenantConfig` (CLI: ``python -m repro serve``).
"""

from .client import ServeClient, ServeError, replay_swf
from .loadgen import run_closed_loop, trace_jobs
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    job_from_wire,
    job_to_wire,
)
from .server import ServeDaemon, serve
from .service import SchedulerRouter, SchedulerService, ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "ProtocolError",
    "job_from_wire",
    "job_to_wire",
    "SchedulerService",
    "SchedulerRouter",
    "ServiceError",
    "ServeDaemon",
    "serve",
    "ServeClient",
    "ServeError",
    "replay_swf",
    "run_closed_loop",
    "trace_jobs",
]
