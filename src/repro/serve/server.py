"""Asyncio front end: the long-lived scheduler daemon.

One process, one event loop, N tenants.  Connections speak the NDJSON
protocol (:mod:`repro.serve.protocol`); requests are dispatched
synchronously inside the loop — decisions are sub-millisecond, so the
loop itself is the concurrency model and the service layer needs no
locks.  Request handling is wrapped in the
``serve.request_latency_sec`` telemetry histogram; per-decision costs
land in the per-tenant ``serve.decision_latency_sec`` histograms.

Shutdown is graceful by construction: SIGTERM/SIGINT (or a ``drain``
request with ``"stop": true``) stops accepting connections, finishes any
in-flight request, drains every tenant engine to quiescence, writes the
final telemetry snapshot (flushing the JSONL sink), and exits 0.

The daemon prints exactly one readiness line to stdout::

    repro-serve listening on 127.0.0.1:7653

so callers binding port 0 (tests, CI) can discover the ephemeral port.
Everything else goes through the ``repro.serve`` logger on stderr.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
from time import perf_counter

from repro.config import ServeConfig
from repro.telemetry import core as _telemetry
from repro.telemetry.sink import telemetry_run

from .protocol import ProtocolError, decode, encode, error_response
from .service import SchedulerRouter, ServiceError

__all__ = ["ServeDaemon", "serve"]

logger = logging.getLogger("repro.serve")


class ServeDaemon:
    """Lifecycle owner: bind, serve, drain, flush, exit."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.router: SchedulerRouter | None = None
        self.address: tuple[str, int] | None = None
        self._stop: asyncio.Event | None = None
        self._stop_reason: str | None = None

    # ------------------------------------------------------------------
    def request_stop(self, reason: str) -> None:
        if self._stop is not None and not self._stop.is_set():
            self._stop_reason = reason
            self._stop.set()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        reg = _telemetry.current()
        tel_latency = (
            reg.histogram("serve.request_latency_sec") if reg.enabled else None
        )
        tel_requests = reg.counter("serve.requests") if reg.enabled else None
        stop_after = False
        try:
            while not stop_after:
                line = await reader.readline()
                if not line:
                    break  # client hung up
                t0 = perf_counter()
                try:
                    msg = decode(line)
                    response = self.router.dispatch(msg)
                    if msg["op"] == "drain" and msg.get("stop"):
                        stop_after = True
                except (ProtocolError, ServiceError) as exc:
                    response = error_response(str(exc))
                except Exception:  # a bad request must not kill the daemon
                    logger.exception("internal error handling request")
                    response = error_response("internal server error")
                if tel_latency is not None:
                    tel_latency.record(perf_counter() - t0)
                    tel_requests.add()
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client died mid-request; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
        if stop_after:
            self.request_stop("drain request")

    # ------------------------------------------------------------------
    async def run_async(self) -> int:
        with telemetry_run(self.config.telemetry,
                           meta={"entry": "serve"}):
            # build services inside the telemetry session so per-tenant
            # instruments bind to the live registry
            self.router = SchedulerRouter(self.config)
            self._stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(
                        sig, self.request_stop, signal.Signals(sig).name
                    )
            server = await asyncio.start_server(
                self._handle, self.config.host, self.config.port
            )
            host, port = server.sockets[0].getsockname()[:2]
            self.address = (host, port)
            tenants = ", ".join(sorted(self.router.services))
            logger.info("serving tenants [%s] on %s:%s", tenants, host, port)
            print(f"repro-serve listening on {host}:{port}", flush=True)
            try:
                await self._stop.wait()
            finally:
                server.close()
                await server.wait_closed()
            logger.info("shutting down (%s): draining %d tenant(s)",
                        self._stop_reason, len(self.router.services))
            summary = self.router.drain_all()
            for name, stats in summary.items():
                logger.info(
                    "tenant %s drained: %d submitted, %d finished, "
                    "%d decisions", name, stats["submitted"],
                    stats["finished"], stats["decisions"],
                )
        # telemetry_run wrote the final snapshot and closed the sink
        return 0


def serve(config: ServeConfig) -> int:
    """Blocking entry point (the ``repro serve`` CLI)."""
    daemon = ServeDaemon(config)
    return asyncio.run(daemon.run_async())
