"""Blocking socket client for the scheduler daemon.

Shared by the ``repro submit`` CLI and the load generator
(:mod:`repro.serve.loadgen`), so every consumer speaks the wire protocol
through one implementation.  One request per call, one response per
line; server-reported failures raise :class:`ServeError`.
"""

from __future__ import annotations

import json
import socket

from repro.workloads.job import Job
from repro.workloads.swf import read_swf

from .protocol import PROTOCOL_VERSION, encode, job_to_wire

__all__ = ["ServeError", "ServeClient", "replay_swf"]


class ServeError(RuntimeError):
    """The daemon rejected a request (or the connection broke)."""


class ServeClient:
    """One connection to a running daemon; safe to reuse across requests."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7653,
                 timeout: float = 30.0):
        self.address = (host, port)
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServeError(
                f"cannot reach the scheduler daemon at {host}:{port}: {exc}"
            ) from None
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> dict:
        message = {"v": PROTOCOL_VERSION, "op": op}
        message.update((k, v) for k, v in fields.items() if v is not None)
        try:
            self._sock.sendall(encode(message))
            line = self._reader.readline()
        except OSError as exc:
            raise ServeError(f"connection to {self.address} broke: {exc}") from None
        if not line:
            raise ServeError("daemon closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    # -- op wrappers ----------------------------------------------------
    def submit(self, job: Job | dict, tenant: str | None = None) -> dict:
        payload = job_to_wire(job) if isinstance(job, Job) else dict(job)
        return self.request("submit", tenant=tenant, job=payload)

    def status(self, job_id: int, tenant: str | None = None) -> dict:
        return self.request("status", tenant=tenant, job_id=job_id)

    def stats(self, tenant: str | None = None) -> dict:
        return self.request("stats", tenant=tenant)

    def advance(self, until: float, tenant: str | None = None) -> dict:
        return self.request("advance", tenant=tenant, until=until)

    def drain(self, tenant: str | None = None, stop: bool = False) -> dict:
        return self.request("drain", tenant=tenant, stop=stop or None)

    def ping(self) -> dict:
        return self.request("ping")

    # ------------------------------------------------------------------
    def close(self) -> None:
        for closer in (self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_swf(
    client: ServeClient,
    path: str,
    tenant: str | None = None,
    limit: int | None = None,
    drain: bool = True,
) -> dict:
    """Stream an SWF trace file into the daemon, job by job.

    Submission order follows the trace's (submit_time, job_id) order, so
    the daemon sees the same arrival process the batch engine would
    replay.  Returns a summary: jobs submitted, decisions triggered, and
    (when ``drain``) the tenant's final stats.
    """
    trace = read_swf(path)
    jobs = trace.jobs[:limit] if limit is not None else trace.jobs
    if not jobs:
        raise ServeError(f"no usable jobs in {path}")
    submitted = decisions = 0
    for job in jobs:
        response = client.submit(job, tenant=tenant)
        submitted += 1
        decisions += response["decisions"]
    summary = {"submitted": submitted, "decisions": decisions}
    if drain:
        final = client.drain(tenant=tenant)
        per_tenant = final.get("tenants")
        if tenant is None and isinstance(per_tenant, dict):
            # daemon-wide drain: the response is keyed per tenant
            decisions += sum(t.get("decisions", 0) for t in per_tenant.values())
            stats = (next(iter(per_tenant.values()))
                     if len(per_tenant) == 1 else per_tenant)
        else:
            decisions += final.get("decisions", 0)
            stats = {
                k: v for k, v in final.items() if k not in ("v", "ok", "stop")
            }
        summary["decisions"] = decisions
        summary["stats"] = stats
    return summary
