"""ShardedVecSchedGym: N workers × M environments behind one vec-env API.

The multi-core successor to :class:`repro.sim.vec_env.VecSchedGym`: the
environments are partitioned into per-worker shards that live in worker
state (in-process for :class:`SerialBackend`, one child process each for
:class:`ProcessPoolBackend`).  Workers run the expensive part of a rollout
step — event simulation plus observation building — while the parent keeps
the single policy forward and all trajectory bookkeeping, so training
updates stay centralized and deterministic (the learner-loop shape of
vectorized-training systems such as gym-sparksched's VecDagSchedEnv).

Determinism contract (pinned by the runtime golden tests): for the same
sequences and actions, observations, rewards, done flags and auto-reset
assignment are bit-identical to a single ``VecSchedGym`` — regardless of
backend or worker count.  The two load-bearing details:

* each global environment index maps to a fixed ``(worker, local)`` slot,
  and step results are assembled in global index order;
* the auto-reset backlog lives in the *parent* and is handed to finishing
  environments in global index order — exactly the ``VecSchedGym`` rule
  ("queued sequences go to the lowest-index finishing env first").

The per-step protocol is two scatters: ``step`` to every worker with
active environments, then (only when episodes finished and the backlog is
non-empty) ``reset`` to the affected workers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

import numpy as np

from repro.config import EnvConfig, RuntimeConfig
from repro.sim.cluster import ClusterSpec
from repro.sim.env import SchedGym
from repro.sim.vec_env import VecStepResult
from repro.workloads.job import Job

from .backend import ExecutionBackend, make_backend

__all__ = ["ShardedVecSchedGym"]

#: reward spec: a metric name (resolved per worker, always picklable) or a
#: ``f(jobs, n_procs) -> float`` callable (must pickle for process backends)
RewardSpec = "str | Callable[[Sequence[Job], int], float]"


def _resolve_reward(spec):
    if callable(spec):
        return spec
    from repro.rl.reward import make_reward

    return make_reward(spec)


# ----------------------------------------------------------------------
# worker-side task functions (top-level: picklable by reference)
# ----------------------------------------------------------------------
def _shard_init(state, n_local, n_procs, reward_spec, config):
    reward_fn = _resolve_reward(reward_spec)
    state["envs"] = [SchedGym(n_procs, reward_fn, config) for _ in range(n_local)]


def _shard_reset(state, pairs):
    """Reset selected local envs: ``[(local, jobs)] -> [(local, obs, mask)]``."""
    out = []
    for local, jobs in pairs:
        obs, mask = state["envs"][local].reset(jobs)
        out.append((local, obs, mask))
    return out


def _shard_step(state, items):
    """Step selected local envs: ``[(local, action)]`` in,
    ``[(local, obs, reward, done, mask, now)]`` out (terminal ``completed``
    lists stay worker-side; only the scalar reward crosses the pipe)."""
    out = []
    for local, action in items:
        r = state["envs"][local].step(action)
        out.append(
            (local, r.observation, r.reward, r.done, r.action_mask,
             r.info.get("now"))
        )
    return out


# ----------------------------------------------------------------------
class ShardedVecSchedGym:
    """N workers × M lock-step environments; drop-in for ``VecSchedGym``."""

    def __init__(
        self,
        n_envs: int,
        n_procs: int | ClusterSpec,
        reward,
        config: EnvConfig | None = None,
        runtime: RuntimeConfig | None = None,
        backend: ExecutionBackend | None = None,
    ):
        if n_envs <= 0:
            raise ValueError("n_envs must be positive")
        self.config = config or EnvConfig()
        self._n_envs = int(n_envs)
        self._owns_backend = backend is None
        self.backend = backend or make_backend(runtime or RuntimeConfig())
        self.backend.start()

        # Contiguous balanced partition: worker w owns global envs
        # [offset[w], offset[w] + size[w]); workers beyond n_envs hold none.
        sizes = np.zeros(self.backend.n_workers, dtype=int)
        base, extra = divmod(self._n_envs, self.backend.n_workers)
        sizes[:] = base
        sizes[:extra] += 1
        self._shard_sizes = sizes
        self._shard_offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self._worker_of = np.repeat(np.arange(len(sizes)), sizes)
        self._local_of = np.concatenate(
            [np.arange(s) for s in sizes if s > 0]
        ) if self._n_envs else np.zeros(0, dtype=int)
        self._shards = [w for w in range(len(sizes)) if sizes[w] > 0]

        self.backend.scatter(
            _shard_init,
            [(int(sizes[w]), n_procs, reward, self.config) for w in self._shards],
            workers=self._shards,
        )

        self._active = np.zeros(self._n_envs, dtype=bool)
        self._queue: deque[Sequence[Job]] = deque()
        m, f = self.config.observation_shape
        self._obs = np.zeros((self._n_envs, m, f), dtype=np.float32)
        self._masks = np.zeros((self._n_envs, m), dtype=bool)

    # -- VecSchedGym-compatible surface ---------------------------------
    @property
    def n_envs(self) -> int:
        return self._n_envs

    @property
    def n_workers(self) -> int:
        return self.backend.n_workers

    @property
    def active(self) -> np.ndarray:
        return self._active.copy()

    @property
    def all_done(self) -> bool:
        return not self._active.any()

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        """Release the backend (worker processes) if this env owns it."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ShardedVecSchedGym":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- episode control ------------------------------------------------
    def reset(
        self, sequences: Sequence[Sequence[Job]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Start one episode per sequence; returns stacked (obs, masks)."""
        if not sequences:
            raise ValueError("reset() needs at least one job sequence")
        if len(sequences) > self._n_envs:
            raise ValueError(
                f"{len(sequences)} sequences for {self._n_envs} envs; queue the "
                "surplus with queue_sequences()"
            )
        self._queue.clear()
        self._obs[:] = 0.0
        self._masks[:] = False
        self._active[:] = False
        self._dispatch_resets(list(enumerate(sequences)))
        return self._obs.copy(), self._masks.copy()

    def queue_sequences(self, sequences: Sequence[Sequence[Job]]) -> None:
        """Add sequences to the auto-reset backlog (FIFO)."""
        self._queue.extend(sequences)

    def _dispatch_resets(self, assignments: list[tuple[int, Sequence[Job]]]) -> None:
        """Reset the given (global env, jobs) pairs through their shards."""
        per_worker: dict[int, list] = {}
        for g, jobs in assignments:
            w = int(self._worker_of[g])
            per_worker.setdefault(w, []).append((int(self._local_of[g]), jobs))
        workers = sorted(per_worker)
        replies = self.backend.scatter(
            _shard_reset, [(per_worker[w],) for w in workers], workers=workers
        )
        for w, rows in zip(workers, replies):
            offset = int(self._shard_offsets[w])
            for local, obs, mask in rows:
                g = offset + local
                self._obs[g] = obs
                self._masks[g] = mask
                self._active[g] = True

    def step(self, actions: np.ndarray) -> VecStepResult:
        """Advance every active environment by one action.

        Same contract as :meth:`VecSchedGym.step`: ``actions`` has one
        entry per environment (-1 for inactive by convention); finished
        environments auto-reset from the backlog in global index order or
        deactivate with zeroed rows.
        """
        actions = np.asarray(actions)
        if actions.shape != (self._n_envs,):
            raise ValueError(
                f"expected {self._n_envs} actions, got shape {actions.shape}"
            )
        if not self._active.any():
            raise RuntimeError("all environments are done; call reset()")

        per_worker: dict[int, list] = {}
        for g in np.flatnonzero(self._active):
            w = int(self._worker_of[g])
            per_worker.setdefault(w, []).append((int(self._local_of[g]), int(actions[g])))
        workers = sorted(per_worker)
        replies = self.backend.scatter(
            _shard_step, [(per_worker[w],) for w in workers], workers=workers
        )

        rewards = np.zeros(self._n_envs, dtype=np.float64)
        dones = np.zeros(self._n_envs, dtype=bool)
        infos: list[dict] = [{} for _ in range(self._n_envs)]
        finished: list[int] = []
        for w, rows in zip(workers, replies):
            offset = int(self._shard_offsets[w])
            for local, obs, reward, done, mask, now in rows:
                g = offset + local
                if now is not None:
                    infos[g]["now"] = now
                if not done:
                    self._obs[g] = obs
                    self._masks[g] = mask
                    continue
                rewards[g] = reward
                dones[g] = True
                finished.append(g)

        # Backlog hand-off in global index order — the VecSchedGym rule.
        resets: list[tuple[int, Sequence[Job]]] = []
        for g in sorted(finished):
            if self._queue:
                resets.append((g, self._queue.popleft()))
                infos[g]["auto_reset"] = True
            else:
                self._obs[g] = 0.0
                self._masks[g] = False
                self._active[g] = False
        if resets:
            self._dispatch_resets(resets)

        return VecStepResult(
            observations=self._obs.copy(),
            rewards=rewards,
            dones=dones,
            action_masks=self._masks.copy(),
            infos=infos,
        )
