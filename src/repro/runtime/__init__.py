"""Unified execution runtime: where independent simulations run.

Every layer of the reproduction that fans out independent simulations —
epoch rollout collection, the paper's 10-sequence evaluation protocol,
trajectory-filter probes, perf benchmarks — dispatches through one
:class:`ExecutionBackend`:

* :class:`SerialBackend` runs everything in-process (the default, and the
  reference semantics);
* :class:`ProcessPoolBackend` runs the same task functions on persistent
  ``multiprocessing`` workers with chunked dispatch and one-shot state
  broadcast (policy weights, schedulers, environment shards).

Both backends execute tasks against per-worker *state* dicts that persist
across calls, so stateful subsystems (the env shards of
:class:`ShardedVecSchedGym`) and stateless fan-out (``api.evaluate``) share
one dispatch layer.  Backends are interchangeable by contract: the same
tasks in the same order produce the same ordered results, which is what
keeps process-pool rollouts bit-identical to serial ones.
"""

from .actor import ActorRuntime, EpisodeSlice
from .backend import ExecutionBackend, WorkerError, make_backend
from .grad import GradientReducer, shard_bounds
from .process_pool import ProcessPoolBackend
from .seeding import derive_streams, stream_rng, task_seed
from .serial import SerialBackend
from .sharded_env import ShardedVecSchedGym
from .shm import ArrayCodec, SharedArrayPool

__all__ = [
    "ExecutionBackend",
    "WorkerError",
    "make_backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SharedArrayPool",
    "ArrayCodec",
    "ShardedVecSchedGym",
    "ActorRuntime",
    "EpisodeSlice",
    "GradientReducer",
    "shard_bounds",
    "stream_rng",
    "derive_streams",
    "task_seed",
]
