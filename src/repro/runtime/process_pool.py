"""Process-pool backend: persistent multiprocessing workers over pipes.

Workers are long-lived ``multiprocessing.Process`` children, one duplex
pipe each.  Each worker runs a command loop against its private ``state``
dict, so expensive setup (env shards, schedulers, policy weights) is paid
once per run via ``broadcast`` and every subsequent dispatch ships only
the small per-call payload (actions in, observations out).

``map`` is chunked and load-balanced: chunks are handed to whichever
worker returns first (:func:`multiprocessing.connection.wait`), and the
chunk index travels with the result so the caller always sees results in
task order — worker count and scheduling jitter are unobservable.

Posted tasks (``post``/``next_result``) return their results through one
shared ``multiprocessing.Queue`` instead of the per-worker pipes.  The
queue's feeder thread makes the worker-side put non-blocking, which
breaks the deadlock a pipe-only design invites: with pipes, a parent
blocked in ``send`` (pushing weights) to a worker that is itself blocked
in ``send`` (returning a large episode) would wedge both sides forever.
Workers encode queue payloads eagerly so an unencodable result fails
*synchronously* in the worker — shipped back as an error — rather than
asynchronously wedging the queue's feeder thread.

Every message — pipe or queue, either direction — is encoded by an
:class:`repro.runtime.shm.ArrayCodec` and moved with ``send_bytes``/
``recv_bytes``.  Under ``transport="pipe"`` the codec is plain pickle
(the bit-identical reference).  Under ``transport="shm"`` large ndarray
payloads spill out-of-band into a :class:`~repro.runtime.shm
.SharedArrayPool` shared with the workers, so the pipes carry only small
skeletons and span descriptors; small or unpicklable payloads fall back
losslessly to the inline path.  Results are bit-identical either way.
The parent owns the pool: it is created at start, destroyed at close,
and leases owned by a worker that died mid-task are reclaimed when the
death is detected.

Task functions and their arguments must be picklable; define worker
functions at module top level.  Exceptions raised in a worker come back
pickled and re-raise in the parent as :class:`WorkerError`.

Telemetry piggybacks on this protocol: when the parent's telemetry is
enabled at spawn time, every worker activates its own registry and every
reply — pipe or queue — carries the worker's snapshot *delta* as a third
element.  The parent absorbs deltas under worker-labelled metric names
as replies drain, so per-worker telemetry (IPC queue wait, task and
encode time, plus whatever the task functions record) aggregates without
any extra round trips.  Both sides count the bytes they actually write
(``runtime.ipc.bytes_inline``) and time their encodes
(``runtime.ipc.encode``); the codec adds ``runtime.ipc.bytes_shm`` and
the pool-occupancy gauge.  When telemetry is disabled the extra element
is ``None`` and the worker loop does no timing at all.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import time
from multiprocessing.connection import Connection, wait
from typing import Sequence

from repro.telemetry import core as _telemetry

from .backend import ExecutionBackend, TaskFn, WorkerError
from .shm import ArrayCodec, SharedArrayPool

__all__ = ["ProcessPoolBackend"]

#: wire sentinel: decoded message is None -> worker exits its loop
_SHUTDOWN = None

#: transports accepted by the backend (mirrors RuntimeConfig.TRANSPORTS)
_TRANSPORTS = ("pipe", "shm")


def _worker_main(
    conn: Connection,
    result_queue,
    worker_id: int,
    telemetry_enabled: bool = False,
    pool: SharedArrayPool | None = None,
) -> None:
    """Command loop: ``(fn, args, via_queue, shared_wire)`` in, results out.

    ``via_queue=False`` (scatter/map) answers on the pipe with
    ``("ok", result, tel) | ("err", exc, tel)``; ``via_queue=True``
    (posted tasks) puts a pre-encoded ``(worker_id, status, payload,
    tel)`` blob on the shared result queue instead.  ``shared_wire`` is
    an optional codec-encoded tuple of arguments common to several
    workers (scatter ``shared=``), prepended to ``args`` after decode.
    ``tel`` is the worker's telemetry snapshot delta (or ``None`` when
    disabled/empty).
    """
    codec = ArrayCodec(pool)
    state: dict = {}
    if pool is not None:
        # tasks (and crash-reclaim tests) may lease spans themselves
        state["_shm_pool"] = pool
    reg = None
    if telemetry_enabled:
        reg = _telemetry.Telemetry(enabled=True)
        _telemetry.set_active(reg)
    perf = time.perf_counter

    def encode(payload, via_queue: bool) -> bytes:
        """Encode a reply; an unencodable *result* fails the task in
        place (synchronously, keeping pipe/queue protocols in sync)."""
        try:
            if reg is not None:
                t0 = perf()
                wire, _lease = codec.dumps(payload)
                # encode time/bytes for *this* reply ride the next one
                reg.add_span_time("runtime.ipc.encode", perf() - t0)
                reg.counter("runtime.ipc.bytes_inline").add(len(wire))
            else:
                wire, _lease = codec.dumps(payload)
            return wire
        except Exception as exc:
            err = RuntimeError(f"unencodable result: {exc}")
            fallback = (
                (worker_id, "err", err, None) if via_queue else ("err", err, None)
            )
            wire, _lease = codec.dumps(fallback)
            return wire

    while True:
        try:
            if reg is not None:
                t0 = perf()
                msg = codec.loads(conn.recv_bytes())
                reg.histogram("runtime.ipc.queue_wait_sec").record(perf() - t0)
            else:
                msg = codec.loads(conn.recv_bytes())
        except (EOFError, KeyboardInterrupt):
            break
        if msg is _SHUTDOWN:
            break
        fn, args, via_queue, shared_wire = msg
        try:
            if shared_wire is not None:
                args = tuple(codec.loads(shared_wire)) + tuple(args)
            if reg is not None:
                t0 = perf()
                result = fn(state, *args)
                reg.add_span_time("runtime.worker.task", perf() - t0)
            else:
                result = fn(state, *args)
            reply = ("ok", result)
        except KeyboardInterrupt:
            break
        except BaseException as exc:  # ship the failure, keep the loop alive
            try:
                pickle.dumps(exc)
                reply = ("err", exc)
            except Exception:  # unpicklable exception: a plain stand-in
                reply = ("err", RuntimeError(f"{type(exc).__name__}: {exc}"))
        tel = None
        if reg is not None and reg.has_data():
            tel = reg.drain()
        if not via_queue:
            conn.send_bytes(encode(reply + (tel,), via_queue=False))
            continue
        result_queue.put(encode((worker_id,) + reply + (tel,), via_queue=True))
    if pool is not None:
        pool.close()


def _map_chunk(state: dict, fn: TaskFn, tasks: list) -> list:
    """Run one chunk of map tasks against this worker's state."""
    return [fn(state, task) for task in tasks]


class ProcessPoolBackend(ExecutionBackend):
    """Persistent ``multiprocessing`` workers behind the backend contract."""

    crosses_process_boundary = True

    #: seconds to wait for a worker to exit cleanly before terminating it
    JOIN_TIMEOUT = 5.0

    def __init__(self, n_workers: int = 1, transport: str = "pipe"):
        super().__init__(n_workers)
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"transport must be one of {_TRANSPORTS}, got {transport!r}"
            )
        self.transport = transport
        self._procs: list[mp.Process] = []
        self._conns: list[Connection] = []
        self._result_queue = None
        self._posted_counts: list[int] = []
        self._pool: SharedArrayPool | None = None
        self._codec = ArrayCodec(None)

    # -- lifecycle ------------------------------------------------------
    def _start_impl(self) -> None:
        ctx = mp.get_context()
        self._result_queue = ctx.Queue()
        self._posted_counts = [0] * self.n_workers
        if self.transport == "shm":
            self._pool = SharedArrayPool()
        self._codec = ArrayCodec(self._pool)
        # Workers inherit the parent's telemetry enablement at spawn time;
        # enabling telemetry after the pool starts leaves workers dark.
        telemetry_enabled = _telemetry.enabled()
        for worker_id in range(self.n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self._result_queue,
                    worker_id,
                    telemetry_enabled,
                    self._pool,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _close_impl(self) -> None:
        # Posted tasks may still be running; drain their results (bounded)
        # so no worker is wedged mid-put when the shutdown sentinel lands.
        deadline = time.monotonic() + self.JOIN_TIMEOUT
        while sum(self._posted_counts):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                blob = self._result_queue.get(timeout=min(remaining, 1.0))
            except queue_mod.Empty:
                for w, proc in enumerate(self._procs):
                    if self._posted_counts[w] and not proc.is_alive():
                        self._posted_counts[w] = 0
                continue
            worker, _status, _payload, _tel = self._codec.loads(blob)
            self._posted_counts[worker] -= 1
        for conn in self._conns:
            try:
                conn.send_bytes(self._codec.dumps(_SHUTDOWN)[0])
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=self.JOIN_TIMEOUT)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.JOIN_TIMEOUT)
        for conn in self._conns:
            conn.close()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue.join_thread()
        self._procs, self._conns = [], []
        self._result_queue = None
        self._posted_counts = []
        if self._pool is not None:
            self._pool.destroy()
            self._pool = None
        self._codec = ArrayCodec(None)

    # -- wire helpers ---------------------------------------------------
    def _encode(self, msg, receivers: int = 1):
        """Codec-encode one parent-side message, timing it when telemetry
        is on.  Returns ``(wire, lease)``."""
        reg = _telemetry.current()
        if not reg.enabled:
            return self._codec.dumps(msg, receivers)
        t0 = time.perf_counter()
        wire, lease = self._codec.dumps(msg, receivers)
        reg.add_span_time("runtime.ipc.encode", time.perf_counter() - t0)
        return wire, lease

    def _send_wire(self, worker: int, wire: bytes) -> None:
        reg = _telemetry.current()
        if reg.enabled:
            reg.counter("runtime.ipc.bytes_inline").add(len(wire))
        self._conns[worker].send_bytes(wire)

    def _send_msg(
        self, worker: int, fn: TaskFn, args: tuple, via_queue: bool, shared_wire=None
    ) -> None:
        """Encode + write one message.  Encoding failures raise before
        anything is written (the worker saw nothing); a write failure
        refunds the message's own pool lease — the worker will never
        decode it."""
        wire, lease = self._encode((fn, tuple(args), via_queue, shared_wire))
        try:
            self._send_wire(worker, wire)
        except BaseException:
            self._codec.discard(lease)
            raise

    # -- dispatch -------------------------------------------------------
    @staticmethod
    def _absorb_telemetry(worker_id: int, tel) -> None:
        if tel is not None:
            _telemetry.current().absorb(tel, worker=worker_id)

    def _reclaim_worker(self, worker_id: int) -> None:
        """Free pool spans leased by a worker that died mid-task."""
        if self._pool is not None:
            proc = self._procs[worker_id]
            if proc.pid is not None:
                self._pool.release_owner(proc.pid)

    def _recv(self, worker_id: int):
        conn = self._conns[worker_id]
        try:
            status, payload, tel = self._codec.loads(conn.recv_bytes())
        except EOFError:
            self._reclaim_worker(worker_id)
            raise WorkerError(
                worker_id, RuntimeError("worker died mid-task (pipe closed)")
            ) from None
        self._absorb_telemetry(worker_id, tel)
        if status == "err":
            raise WorkerError(worker_id, payload) from payload
        return payload

    def _scatter_impl(
        self,
        fn: TaskFn,
        per_worker_args: Sequence[tuple],
        workers: list[int],
        shared: tuple,
    ) -> list:
        # Phase 1: post everything so workers run concurrently;
        # phase 2: collect in the caller's worker order.  Every *posted*
        # call is drained even on failure — in the send loop too — so the
        # pipes stay in sync and the backend remains usable after a task
        # error (a dead worker still surfaces as WorkerError).
        shared_wire, shared_lease = None, None
        if shared:
            try:
                shared_wire, shared_lease = self._encode(shared, len(workers))
            except Exception as exc:
                raise WorkerError(workers[0], exc) from exc
        posted, first_err = [], None
        for w, args in zip(workers, per_worker_args):
            try:
                self._send_msg(w, fn, args, False, shared_wire)
            except Exception as exc:
                # Broken pipe, but also encoding failures: dumps() runs
                # before writing, so nothing reached the worker — stop
                # posting and fall through to drain what already did.
                first_err = WorkerError(w, exc)
                break
            posted.append(w)
        # refund shared-payload leases for workers that never got the
        # message (each delivered copy is consumed by the worker's decode)
        if shared_lease is not None and len(posted) < len(workers):
            self._codec.discard(shared_lease, len(workers) - len(posted))
        results = []
        for w in posted:
            try:
                results.append(self._recv(w))
            except WorkerError as err:
                results.append(None)
                first_err = first_err or err
        if first_err is not None:
            raise first_err
        return results

    def _map_impl(self, fn: TaskFn, tasks: list, chunksize: int) -> list:
        chunks = [
            (start, tasks[start : start + chunksize])
            for start in range(0, len(tasks), chunksize)
        ]
        results: list = [None] * len(tasks)
        pending = iter(chunks)
        inflight: dict[Connection, tuple[int, int]] = {}  # conn -> (worker, start)

        first_err = None

        def feed(worker_id: int) -> bool:
            nonlocal first_err
            if first_err is not None:
                return False
            entry = next(pending, None)
            if entry is None:
                return False
            start, chunk = entry
            try:
                self._send_msg(worker_id, _map_chunk, (fn, chunk), False)
            except Exception as exc:
                # Includes encoding failures: dumps() runs before
                # writing, so the worker saw nothing — record the error
                # and let the in-flight chunks drain normally.
                first_err = WorkerError(worker_id, exc)
                return False
            inflight[self._conns[worker_id]] = (worker_id, start)
            return True

        for w in range(self.n_workers):
            if not feed(w):
                break
        while inflight:
            for conn in wait(list(inflight)):
                worker_id, start = inflight.pop(conn)
                try:
                    chunk_result = self._recv(worker_id)
                except WorkerError as err:
                    first_err = first_err or err
                    continue  # stop feeding, drain the rest
                results[start : start + len(chunk_result)] = chunk_result
                if first_err is None:
                    feed(worker_id)
        if first_err is not None:
            raise first_err
        return results

    # -- asynchronous dispatch ------------------------------------------
    def _post_impl(self, worker: int, fn: TaskFn, args: tuple) -> None:
        try:
            self._send_msg(worker, fn, args, True)
        except Exception as exc:
            # Broken pipe or encoding failure: dumps() runs before
            # writing, so the worker saw nothing — the task never counts
            # as pending.
            raise WorkerError(worker, exc) from exc
        self._posted_counts[worker] += 1

    def _post_all_impl(self, fn: TaskFn, args: tuple) -> None:
        # One encode, n_workers writes of the same bytes: the snapshot in
        # a weight re-broadcast is serialized (and pool-spilled) once.
        try:
            wire, lease = self._encode(
                (fn, tuple(args), True, None), receivers=self.n_workers
            )
        except Exception as exc:
            raise WorkerError(0, exc) from exc
        sent = 0
        try:
            for worker in range(self.n_workers):
                self._send_wire(worker, wire)
                self._posted_counts[worker] += 1
                sent += 1
        except Exception as exc:
            self._codec.discard(lease, self.n_workers - sent)
            raise WorkerError(sent, exc) from exc

    def _next_result_impl(self) -> tuple:
        while True:
            try:
                blob = self._result_queue.get(timeout=1.0)
            except queue_mod.Empty:
                # No result yet.  Either a task is still running (keep
                # waiting) or a worker died mid-task — surface that as a
                # WorkerError and write off everything posted to it.
                for w, proc in enumerate(self._procs):
                    if self._posted_counts[w] and not proc.is_alive():
                        self._posted_counts[w] = 0
                        self._reclaim_worker(w)
                        raise WorkerError(
                            w, RuntimeError("worker died with posted task(s) pending")
                        ) from None
                continue
            worker, status, payload, tel = self._codec.loads(blob)
            self._posted_counts[worker] -= 1
            self._absorb_telemetry(worker, tel)
            if status == "err":
                raise WorkerError(worker, payload) from payload
            return worker, payload

    def _n_pending_impl(self) -> int:
        return sum(self._posted_counts)
