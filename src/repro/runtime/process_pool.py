"""Process-pool backend: persistent multiprocessing workers over pipes.

Workers are long-lived ``multiprocessing.Process`` children, one duplex
pipe each.  Each worker runs a command loop against its private ``state``
dict, so expensive setup (env shards, schedulers, policy weights) is paid
once per run via ``broadcast`` and every subsequent dispatch ships only
the small per-call payload (actions in, observations out).

``map`` is chunked and load-balanced: chunks are handed to whichever
worker returns first (:func:`multiprocessing.connection.wait`), and the
chunk index travels with the result so the caller always sees results in
task order — worker count and scheduling jitter are unobservable.

Posted tasks (``post``/``next_result``) return their results through one
shared ``multiprocessing.Queue`` instead of the per-worker pipes.  The
queue's feeder thread makes the worker-side put non-blocking, which
breaks the deadlock a pipe-only design invites: with pipes, a parent
blocked in ``send`` (pushing weights) to a worker that is itself blocked
in ``send`` (returning a large episode) would wedge both sides forever.
Workers pre-pickle queue payloads so an unpicklable result fails
*synchronously* in the worker — shipped back as an error — rather than
asynchronously wedging the queue's feeder thread.

Task functions and their arguments must be picklable; define worker
functions at module top level.  Exceptions raised in a worker come back
pickled and re-raise in the parent as :class:`WorkerError`.

Telemetry piggybacks on this protocol: when the parent's telemetry is
enabled at spawn time, every worker activates its own registry and every
reply — pipe or queue — carries the worker's snapshot *delta* as a third
element.  The parent absorbs deltas under worker-labelled metric names
as replies drain, so per-worker telemetry (IPC queue wait, task and
encode time, plus whatever the task functions record) aggregates without
any extra round trips.  When telemetry is disabled the extra element is
``None`` and the worker loop does no timing at all.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import time
from multiprocessing.connection import Connection, wait
from typing import Sequence

from repro.telemetry import core as _telemetry

from .backend import ExecutionBackend, TaskFn, WorkerError

__all__ = ["ProcessPoolBackend"]

_SHUTDOWN = None  # pipe sentinel


def _worker_main(
    conn: Connection, result_queue, worker_id: int, telemetry_enabled: bool = False
) -> None:
    """Command loop: ``(fn, args, via_queue)`` in, results out.

    ``via_queue=False`` (scatter/map) answers on the pipe with
    ``("ok", result, tel) | ("err", exc, tel)``; ``via_queue=True``
    (posted tasks) puts a pre-pickled ``(worker_id, status, payload,
    tel)`` blob on the shared result queue instead.  ``tel`` is the
    worker's telemetry snapshot delta (or ``None`` when disabled/empty).
    """
    state: dict = {}
    reg = None
    if telemetry_enabled:
        reg = _telemetry.Telemetry(enabled=True)
        _telemetry.set_active(reg)
    perf = time.perf_counter
    while True:
        try:
            if reg is not None:
                t0 = perf()
                msg = conn.recv()
                reg.histogram("runtime.ipc.queue_wait_sec").record(perf() - t0)
            else:
                msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if msg is _SHUTDOWN:
            break
        fn, args, via_queue = msg
        try:
            if reg is not None:
                t0 = perf()
                result = fn(state, *args)
                reg.add_span_time("runtime.worker.task", perf() - t0)
            else:
                result = fn(state, *args)
            reply = ("ok", result)
        except KeyboardInterrupt:
            break
        except BaseException as exc:  # ship the failure, keep the loop alive
            try:
                pickle.dumps(exc)
                reply = ("err", exc)
            except Exception:  # unpicklable exception: a plain stand-in
                reply = ("err", RuntimeError(f"{type(exc).__name__}: {exc}"))
        tel = None
        if reg is not None and reg.has_data():
            tel = reg.drain()
        if not via_queue:
            conn.send(reply + (tel,))
            continue
        try:
            if reg is not None:
                t0 = perf()
                blob = pickle.dumps((worker_id,) + reply + (tel,))
                # encode time for *this* blob rides the next reply
                reg.add_span_time("runtime.ipc.encode", perf() - t0)
            else:
                blob = pickle.dumps((worker_id,) + reply + (tel,))
        except Exception as exc:  # unpicklable *result*: fail the task
            blob = pickle.dumps(
                (worker_id, "err", RuntimeError(f"unpicklable result: {exc}"), None)
            )
        result_queue.put(blob)


def _map_chunk(state: dict, fn: TaskFn, tasks: list) -> list:
    """Run one chunk of map tasks against this worker's state."""
    return [fn(state, task) for task in tasks]


class ProcessPoolBackend(ExecutionBackend):
    """Persistent ``multiprocessing`` workers behind the backend contract."""

    crosses_process_boundary = True

    #: seconds to wait for a worker to exit cleanly before terminating it
    JOIN_TIMEOUT = 5.0

    def __init__(self, n_workers: int = 1):
        super().__init__(n_workers)
        self._procs: list[mp.Process] = []
        self._conns: list[Connection] = []
        self._result_queue = None
        self._posted_counts: list[int] = []

    # -- lifecycle ------------------------------------------------------
    def _start_impl(self) -> None:
        ctx = mp.get_context()
        self._result_queue = ctx.Queue()
        self._posted_counts = [0] * self.n_workers
        # Workers inherit the parent's telemetry enablement at spawn time;
        # enabling telemetry after the pool starts leaves workers dark.
        telemetry_enabled = _telemetry.enabled()
        for worker_id in range(self.n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, self._result_queue, worker_id, telemetry_enabled),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _close_impl(self) -> None:
        # Posted tasks may still be running; drain their results (bounded)
        # so no worker is wedged mid-put when the shutdown sentinel lands.
        deadline = time.monotonic() + self.JOIN_TIMEOUT
        while sum(self._posted_counts):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                blob = self._result_queue.get(timeout=min(remaining, 1.0))
            except queue_mod.Empty:
                for w, proc in enumerate(self._procs):
                    if self._posted_counts[w] and not proc.is_alive():
                        self._posted_counts[w] = 0
                continue
            worker, _status, _payload, _tel = pickle.loads(blob)
            self._posted_counts[worker] -= 1
        for conn in self._conns:
            try:
                conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=self.JOIN_TIMEOUT)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.JOIN_TIMEOUT)
        for conn in self._conns:
            conn.close()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue.join_thread()
        self._procs, self._conns = [], []
        self._result_queue = None
        self._posted_counts = []

    # -- dispatch -------------------------------------------------------
    @staticmethod
    def _absorb_telemetry(worker_id: int, tel) -> None:
        if tel is not None:
            _telemetry.current().absorb(tel, worker=worker_id)

    def _recv(self, worker_id: int):
        conn = self._conns[worker_id]
        try:
            status, payload, tel = conn.recv()
        except EOFError:
            raise WorkerError(
                worker_id, RuntimeError("worker died mid-task (pipe closed)")
            ) from None
        self._absorb_telemetry(worker_id, tel)
        if status == "err":
            raise WorkerError(worker_id, payload) from payload
        return payload

    def _scatter_impl(
        self, fn: TaskFn, per_worker_args: Sequence[tuple], workers: list[int]
    ) -> list:
        # Phase 1: post everything so workers run concurrently;
        # phase 2: collect in the caller's worker order.  Every *posted*
        # call is drained even on failure — in the send loop too — so the
        # pipes stay in sync and the backend remains usable after a task
        # error (a dead worker still surfaces as WorkerError).
        posted, first_err = [], None
        for w, args in zip(workers, per_worker_args):
            try:
                self._conns[w].send((fn, args, False))
            except Exception as exc:
                # Broken pipe, but also pickling failures: send() pickles
                # before writing, so nothing reached the worker — stop
                # posting and fall through to drain what already did.
                first_err = WorkerError(w, exc)
                break
            posted.append(w)
        results = []
        for w in posted:
            try:
                results.append(self._recv(w))
            except WorkerError as err:
                results.append(None)
                first_err = first_err or err
        if first_err is not None:
            raise first_err
        return results

    def _map_impl(self, fn: TaskFn, tasks: list, chunksize: int) -> list:
        chunks = [
            (start, tasks[start : start + chunksize])
            for start in range(0, len(tasks), chunksize)
        ]
        results: list = [None] * len(tasks)
        pending = iter(chunks)
        inflight: dict[Connection, tuple[int, int]] = {}  # conn -> (worker, start)

        first_err = None

        def feed(worker_id: int) -> bool:
            nonlocal first_err
            if first_err is not None:
                return False
            entry = next(pending, None)
            if entry is None:
                return False
            start, chunk = entry
            try:
                self._conns[worker_id].send((_map_chunk, (fn, chunk), False))
            except Exception as exc:
                # Includes pickling failures: send() pickles before
                # writing, so the worker saw nothing — record the error
                # and let the in-flight chunks drain normally.
                first_err = WorkerError(worker_id, exc)
                return False
            inflight[self._conns[worker_id]] = (worker_id, start)
            return True

        for w in range(self.n_workers):
            if not feed(w):
                break
        while inflight:
            for conn in wait(list(inflight)):
                worker_id, start = inflight.pop(conn)
                try:
                    chunk_result = self._recv(worker_id)
                except WorkerError as err:
                    first_err = first_err or err
                    continue  # stop feeding, drain the rest
                results[start : start + len(chunk_result)] = chunk_result
                if first_err is None:
                    feed(worker_id)
        if first_err is not None:
            raise first_err
        return results

    # -- asynchronous dispatch ------------------------------------------
    def _post_impl(self, worker: int, fn: TaskFn, args: tuple) -> None:
        try:
            self._conns[worker].send((fn, args, True))
        except Exception as exc:
            # Broken pipe or pickling failure: send() pickles before
            # writing, so the worker saw nothing — the task never counts
            # as pending.
            raise WorkerError(worker, exc) from exc
        self._posted_counts[worker] += 1

    def _next_result_impl(self) -> tuple:
        while True:
            try:
                blob = self._result_queue.get(timeout=1.0)
            except queue_mod.Empty:
                # No result yet.  Either a task is still running (keep
                # waiting) or a worker died mid-task — surface that as a
                # WorkerError and write off everything posted to it.
                for w, proc in enumerate(self._procs):
                    if self._posted_counts[w] and not proc.is_alive():
                        self._posted_counts[w] = 0
                        raise WorkerError(
                            w, RuntimeError("worker died with posted task(s) pending")
                        ) from None
                continue
            worker, status, payload, tel = pickle.loads(blob)
            self._posted_counts[worker] -= 1
            self._absorb_telemetry(worker, tel)
            if status == "err":
                raise WorkerError(worker, payload) from payload
            return worker, payload

    def _n_pending_impl(self) -> int:
        return sum(self._posted_counts)
