"""Per-task RNG stream derivation — the repo-wide seeding convention.

Reproducibility across backends hinges on one rule: **a task's randomness
depends only on its key path, never on which worker runs it or in what
order**.  Streams are derived by seeding :func:`numpy.random.default_rng`
with the full integer key path ``[root, stream_tag, *indices]`` (NumPy
hashes the sequence through SeedSequence, so sibling streams are
decorrelated).  The trainer keys trajectories as
``(seed, ACT_STREAM, epoch, trajectory)``; evaluation keys probes as
``(seed, tag, sequence)``; any new fan-out should follow suit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stream_rng", "derive_streams", "task_seed"]


def stream_rng(*keys: int) -> np.random.Generator:
    """The dedicated generator for one task's key path."""
    if not keys:
        raise ValueError("need at least one key")
    return np.random.default_rng(list(keys))


def derive_streams(n: int, *prefix: int) -> list[np.random.Generator]:
    """``n`` sibling generators keyed ``(*prefix, 0..n-1)`` — one per task."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return [stream_rng(*prefix, i) for i in range(n)]


def task_seed(*keys: int) -> int:
    """A single derived integer seed (for APIs that take a seed, not a
    generator), stable across processes and platforms."""
    if not keys:
        raise ValueError("need at least one key")
    return int(np.random.SeedSequence(list(keys)).generate_state(1)[0])
