"""Data-parallel gradient reduction over the execution backend.

The third leg of the runtime: PR 2 sharded *environments* across workers,
this module shards *gradient computation*.  A :class:`GradientReducer`
holds module replicas on every worker (installed once via ``broadcast``),
and per minibatch:

1. the parent splits the batch rows into one contiguous shard per worker;
2. each worker loads the current weights into its replica, evaluates a
   caller-supplied **sum-reduced** loss on its shard, backpropagates, and
   returns the parameter gradients plus summed diagnostics;
3. the parent adds the shard gradients in worker order and divides by the
   total row count — exactly the gradient of the mean loss, computed
   data-parallel.

Loss functions must be picklable (top-level functions, optionally wrapped
in :func:`functools.partial` for hyper-parameters) with signature
``fn(module, shard_dict) -> (loss_sum_tensor, aux_sums_dict)`` where every
value in ``aux_sums`` is a per-shard *sum* so the parent can reduce it the
same way.

Determinism: the shard partition is a pure function of (batch size,
worker count), and reduction order is worker order — so for a fixed
worker count the serial and process backends produce bit-identical
gradients (pinned by the runtime tests).  Different worker counts change
the floating-point summation tree and agree only to round-off, like any
data-parallel reduction.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .backend import ExecutionBackend, make_backend

__all__ = ["GradientReducer", "shard_bounds"]

#: loss-program signature: (module, shard) -> (loss_sum Tensor, aux sums)
LossFn = Callable[..., tuple]


def shard_bounds(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-even row ranges; at most ``n_rows`` shards.

    The first ``n_rows % n_shards`` shards get one extra row, so the
    partition depends only on the two integers — the property that makes
    a fixed worker count reproducible across backends.
    """
    if n_rows <= 0:
        raise ValueError(f"n_rows must be positive, got {n_rows}")
    n_shards = min(n_shards, n_rows)
    base, extra = divmod(n_rows, n_shards)
    bounds, start = [], 0
    for s in range(n_shards):
        stop = start + base + (1 if s < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _install_replicas(state: dict, modules: dict) -> list[str]:
    """Worker task: keep the pickled module replicas in worker state."""
    state["grad_modules"] = modules
    return sorted(modules)


def _shard_grads(
    state: dict,
    name: str,
    loss_fn: LossFn,
    weights: list[np.ndarray],
    shard: dict,
) -> tuple[list[np.ndarray], dict, int]:
    """Worker task: one shard's gradient of the sum-reduced loss."""
    module = state["grad_modules"][name]
    params = module.parameters()
    for p, w in zip(params, weights):
        p.data = w
    module.zero_grad()
    loss_sum, aux = loss_fn(module, shard)
    loss_sum.backward()
    grads = [
        p.grad if p.grad is not None else np.zeros_like(p.data) for p in params
    ]
    n_rows = len(next(iter(shard.values())))
    return grads, aux, n_rows


class GradientReducer:
    """Shards minibatch gradients across backend workers, reduces in-parent.

    ``install`` ships the module replicas once; ``grad_sums`` runs one
    sharded backward pass and returns raw sums, leaving the divide, the
    clip and the optimizer step to the caller (they stay in the parent —
    workers never update weights, mirroring how ``ShardedVecSchedGym``
    keeps the policy forward in the parent).
    """

    def __init__(self, runtime=None, backend: ExecutionBackend | None = None):
        self._backend = backend or make_backend(runtime)
        self._installed = False

    @property
    def n_workers(self) -> int:
        return self._backend.n_workers

    def install(self, modules: dict) -> None:
        """Broadcast replicas of the named modules to every worker."""
        self._backend.broadcast(_install_replicas, modules)
        self._installed = True

    def grad_sums(
        self,
        name: str,
        module,
        loss_fn: LossFn,
        batch: dict[str, np.ndarray],
    ) -> tuple[list[np.ndarray], dict, int]:
        """One data-parallel backward pass over ``batch``.

        Returns ``(grad_sums, aux_sums, n_rows)``: per-parameter gradient
        sums of the sum-reduced loss (divide by ``n_rows`` for the mean
        loss's gradient), the loss function's reduced diagnostics, and
        the batch size.  Every array in ``batch`` is split along axis 0.
        """
        if not self._installed:
            raise RuntimeError("call install() before grad_sums()")
        sizes = {k: len(v) for k, v in batch.items()}
        n_rows = next(iter(sizes.values()))
        if len(set(sizes.values())) != 1:
            raise ValueError(f"batch arrays disagree on length: {sizes}")
        bounds = shard_bounds(n_rows, self.n_workers)
        weights = [p.data for p in module.parameters()]
        shards = [
            {k: v[lo:hi] for k, v in batch.items()} for lo, hi in bounds
        ]
        # (name, loss_fn, weights) are identical per worker: the shared
        # channel serializes the weight ship once per step, not per shard
        results = self._backend.scatter(
            _shard_grads,
            [(shard,) for shard in shards],
            workers=range(len(shards)),
            shared=(name, loss_fn, weights),
        )
        grads, aux, total = None, None, 0
        for shard_grads, shard_aux, shard_n in results:
            total += shard_n
            if grads is None:
                grads = [np.array(g, dtype=np.float64) for g in shard_grads]
                aux = dict(shard_aux)
            else:
                for g, sg in zip(grads, shard_grads):
                    g += sg
                for k, v in shard_aux.items():
                    aux[k] += v
        return grads, aux, total

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "GradientReducer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
