"""Zero-copy shared-memory array plane for the process runtime.

Two pieces:

:class:`SharedArrayPool`
    A ring of fixed-size slots carved out of one
    ``multiprocessing.shared_memory`` data segment, with a second control
    segment holding per-slot refcounts, span lengths, and owner pids.  A
    message's out-of-band buffers are coalesced into one *span* of
    consecutive slots; the span is leased with a refcount (one per
    receiver) and freed when the last receiver decodes it.  Owner pids
    make leases reclaimable when a worker dies mid-lease
    (:meth:`release_owner`), and the creating process registers an
    ``atexit`` hook so segments are unlinked even on abnormal exit.

:class:`ArrayCodec`
    The wire codec every :class:`~repro.runtime.ProcessPoolBackend`
    message goes through.  Without a pool it is plain pickle — the
    bit-identical ``transport="pipe"`` reference.  With a pool it pickles
    with protocol 5 and a ``buffer_callback`` that spills large ndarray
    buffers out-of-band: pipes then carry only the small pickle skeleton
    plus one ``(slot, nbytes, sizes)`` descriptor.  Payloads that are
    small, non-contiguous, or face an exhausted pool fall back
    *losslessly* to carrying the buffers in-band — same bytes, same
    decoded values — so shm can never deadlock or change results.

Decoded buffers are **copied** out of the span into fresh ``bytearray``s
(NumPy reconstructs arrays as writable views over them) and the lease is
released immediately — array lifetimes never pin pool slots.

Telemetry: the codec counts ``runtime.ipc.bytes_shm`` and sets the
``runtime.ipc.pool_occupancy`` gauge at spill time; the backend counts
``runtime.ipc.bytes_inline`` (actual bytes written to a pipe or queue)
at send time, so ``bytes_inline(shm) / bytes_inline(pipe)`` is the
hardware-independent reduction ratio ``run_perf.py`` records.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.telemetry import core as _telemetry

__all__ = ["SharedArrayPool", "ArrayCodec"]

# control-table rows (int64 each, one column per slot)
_REF = 0  # 0 = free, >0 = lease refcount at span start, -1 = continuation
_SPAN = 1  # span length in slots, recorded at the span start
_OWNER = 2  # pid that allocated the span (crash reclaim)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    CPython's resource tracker registers segments on *attach* too
    (gh-82300), which would unlink the pool when the first worker exits;
    unregister defensively so only the creating process cleans up.
    """
    seg = shared_memory.SharedMemory(name=name)
    try:  # pragma: no cover - tracker layout differs across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass
    return seg


class SharedArrayPool:
    """Refcounted slot-span allocator over shared-memory segments."""

    N_SLOTS = 512
    SLOT_BYTES = 16 * 1024  # 512 x 16KiB = 8MiB data plane

    def __init__(self, n_slots: int = N_SLOTS, slot_bytes: int = SLOT_BYTES):
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        self.n_slots = int(n_slots)
        self.slot_bytes = int(slot_bytes)
        tag = secrets.token_hex(4)
        self._ctl = shared_memory.SharedMemory(
            create=True, size=3 * 8 * self.n_slots, name=f"repro-ctl-{tag}"
        )
        self._data = shared_memory.SharedMemory(
            create=True, size=self.n_slots * self.slot_bytes, name=f"repro-dat-{tag}"
        )
        self._lock = get_context().Lock()
        self._owner = True
        self._closed = False
        self._n_puts = 0  # local diagnostic: spans allocated by this process
        self._table = np.ndarray((3, self.n_slots), dtype=np.int64, buffer=self._ctl.buf)
        self._table[:] = 0
        atexit.register(self._atexit_cleanup)

    # -- pickling (spawn-context Process args) --------------------------
    def __getstate__(self):
        return {
            "n_slots": self.n_slots,
            "slot_bytes": self.slot_bytes,
            "ctl": self._ctl.name,
            "data": self._data.name,
            "lock": self._lock,
        }

    def __setstate__(self, state):
        self.n_slots = state["n_slots"]
        self.slot_bytes = state["slot_bytes"]
        self._ctl = _attach(state["ctl"])
        self._data = _attach(state["data"])
        self._lock = state["lock"]
        self._owner = False
        self._closed = False
        self._n_puts = 0
        self._table = np.ndarray((3, self.n_slots), dtype=np.int64, buffer=self._ctl.buf)

    # -- allocation -----------------------------------------------------
    def _find_run(self, refs: np.ndarray, n: int) -> int | None:
        free = refs == 0
        if n == 1:
            idx = np.flatnonzero(free)
            return int(idx[0]) if idx.size else None
        cs = np.cumsum(free)
        window = cs[n - 1 :] - np.concatenate(([0], cs[:-n]))
        idx = np.flatnonzero(window == n)
        return int(idx[0]) if idx.size else None

    def put(self, buffers, refcount: int = 1) -> int | None:
        """Copy ``buffers`` into one consecutive span; lease it ``refcount``
        times.  Returns the start slot, or ``None`` when no span fits
        (the caller falls back to in-band transport)."""
        if refcount < 1:
            raise ValueError(f"refcount must be >= 1, got {refcount}")
        views = [memoryview(b).cast("B") for b in buffers]
        total = sum(v.nbytes for v in views)
        n = max(1, -(-total // self.slot_bytes))
        if n > self.n_slots:
            return None
        refs = self._table[_REF]
        with self._lock:
            start = self._find_run(refs, n)
            if start is None:
                return None
            refs[start] = refcount
            if n > 1:
                refs[start + 1 : start + n] = -1
            self._table[_SPAN][start] = n
            self._table[_OWNER][start] = os.getpid()
        data = memoryview(self._data.buf)
        off = start * self.slot_bytes
        for v in views:
            data[off : off + v.nbytes] = v
            off += v.nbytes
        data.release()
        self._n_puts += 1
        return start

    def read(self, start: int, nbytes: int) -> memoryview:
        """A view over a leased span's bytes; ``.release()`` it promptly
        (held views block :meth:`close`)."""
        off = start * self.slot_bytes
        return memoryview(self._data.buf)[off : off + nbytes]

    def release(self, start: int, count: int = 1) -> None:
        """Drop ``count`` leases on the span at ``start``; frees it when
        the refcount reaches zero.  Releasing a free slot is a no-op (a
        drained-then-reclaimed race must not raise)."""
        with self._lock:
            refs = self._table[_REF]
            if refs[start] <= 0:
                return
            refs[start] = max(0, int(refs[start]) - count)
            if refs[start] == 0:
                self._free_span_locked(start)

    def _free_span_locked(self, start: int) -> None:
        n = int(self._table[_SPAN][start])
        self._table[_REF][start : start + max(n, 1)] = 0
        self._table[_SPAN][start] = 0
        self._table[_OWNER][start] = 0

    def release_owner(self, pid: int) -> int:
        """Free every span allocated by ``pid`` regardless of refcount —
        crash reclaim when a worker dies mid-lease.  Returns the number
        of spans freed."""
        freed = 0
        with self._lock:
            for start in np.flatnonzero(self._table[_OWNER] == pid):
                if self._table[_REF][start] > 0:
                    self._free_span_locked(int(start))
                    freed += 1
        return freed

    # -- introspection --------------------------------------------------
    @property
    def occupancy(self) -> float:
        """Fraction of slots currently leased (continuations included)."""
        return float(np.count_nonzero(self._table[_REF] != 0)) / self.n_slots

    @property
    def n_leases(self) -> int:
        return int(np.count_nonzero(self._table[_REF] > 0))

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Unmap this process's view of the segments (workers at exit)."""
        if self._closed:
            return
        self._closed = True
        self._table = None
        for seg in (self._ctl, self._data):
            try:
                seg.close()
            except BufferError:  # a read() view is still alive somewhere
                pass

    def destroy(self) -> None:
        """Owner teardown: unlink the segments and drop the atexit hook."""
        if self._owner:
            atexit.unregister(self._atexit_cleanup)
            for seg in (self._ctl, self._data):
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
        self.close()

    def _atexit_cleanup(self) -> None:
        # mp children exit via os._exit and never run this; only the
        # creating process unlinks, so abnormal parent exits (uncaught
        # exceptions, sys.exit) still remove the segments from /dev/shm.
        self.destroy()


# wire kinds: 1 leading byte
_PLAIN = b"P"  # plain pickle, no out-of-band buffers
_INBAND = b"B"  # protocol-5 skeleton + buffers appended to the wire
_POOLED = b"S"  # protocol-5 skeleton + one pool-span descriptor


class ArrayCodec:
    """Message (de)serializer; ``pool=None`` is the plain-pickle pipe path."""

    #: per-buffer minimum for out-of-band treatment; tiny arrays pickle
    #: in-band where the skeleton bytes dominate anyway
    MIN_BUFFER_BYTES = 1024
    #: per-message minimum before a pool span is worth a slot lease
    MIN_POOL_BYTES = 4096

    def __init__(
        self,
        pool: SharedArrayPool | None = None,
        min_buffer_bytes: int | None = None,
        min_pool_bytes: int | None = None,
    ):
        self.pool = pool
        self.min_buffer_bytes = (
            self.MIN_BUFFER_BYTES if min_buffer_bytes is None else min_buffer_bytes
        )
        self.min_pool_bytes = (
            self.MIN_POOL_BYTES if min_pool_bytes is None else min_pool_bytes
        )

    def dumps(self, obj, receivers: int = 1) -> tuple[bytes, tuple[int, int] | None]:
        """Encode ``obj`` for ``receivers`` decoders.

        Returns ``(wire, lease)`` where ``lease`` is ``(start_slot,
        refcount)`` when a pool span was taken (each successful
        :meth:`loads` consumes one refcount) and ``None`` otherwise.  If
        the wire is never delivered to some receivers, refund their
        refcounts with :meth:`discard` — the span would otherwise stay
        leased until the pool is destroyed.
        """
        if self.pool is None:
            return _PLAIN + pickle.dumps(obj, protocol=5), None
        bufs: list[memoryview] = []
        min_bytes = self.min_buffer_bytes

        def spill(pb: pickle.PickleBuffer):
            try:
                raw = pb.raw()
            except Exception:  # non-contiguous: keep in-band
                return True
            if raw.nbytes < min_bytes:
                return True
            bufs.append(raw)
            return False

        blob = pickle.dumps(obj, protocol=5, buffer_callback=spill)
        if not bufs:
            return _PLAIN + blob, None
        sizes = [b.nbytes for b in bufs]
        total = sum(sizes)
        start = None
        if total >= self.min_pool_bytes:
            start = self.pool.put(bufs, refcount=receivers)
        if start is None:  # small payload or pool exhausted: in-band
            header = pickle.dumps(sizes, protocol=5)
            wire = b"".join(
                [_INBAND, len(header).to_bytes(4, "little"), header, blob, *bufs]
            )
            return wire, None
        reg = _telemetry.current()
        if reg.enabled:
            reg.counter("runtime.ipc.bytes_shm").add(total)
            reg.gauge("runtime.ipc.pool_occupancy").set(self.pool.occupancy)
        header = pickle.dumps((start, total, sizes), protocol=5)
        wire = b"".join([_POOLED, len(header).to_bytes(4, "little"), header, blob])
        return wire, (start, receivers)

    def loads(self, wire):
        """Decode one wire message, consuming its pool lease (if any)."""
        mv = memoryview(wire)
        kind = mv[:1].tobytes()
        if kind == _PLAIN:
            return pickle.loads(mv[1:])
        hlen = int.from_bytes(mv[1:5], "little")
        header = pickle.loads(mv[5 : 5 + hlen])
        blob_start = 5 + hlen
        if kind == _INBAND:
            sizes = header
            total = sum(sizes)
            buffers = []
            off = len(mv) - total
            blob = mv[blob_start:off]
            for size in sizes:
                buffers.append(bytearray(mv[off : off + size]))
                off += size
            return pickle.loads(blob, buffers=buffers)
        if kind != _POOLED:
            raise ValueError(f"unknown wire kind {kind!r}")
        if self.pool is None:
            raise RuntimeError("pooled wire message but no pool attached")
        start, total, sizes = header
        view = self.pool.read(start, total)
        try:
            buffers = []
            off = 0
            for size in sizes:
                buffers.append(bytearray(view[off : off + size]))
                off += size
        finally:
            view.release()
        self.pool.release(start)
        return pickle.loads(mv[blob_start:], buffers=buffers)

    def discard(self, lease: tuple[int, int] | None, count: int | None = None) -> None:
        """Refund leases for receivers that will never decode the wire."""
        if lease is None or self.pool is None:
            return
        start, refcount = lease
        self.pool.release(start, refcount if count is None else count)
